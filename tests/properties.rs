//! Cross-crate property-based tests: invariants of the NB-SMT datapath that
//! must hold for *every* operand combination, checked with proptest.

use proptest::prelude::*;

use nbsmt_repro::core::fmul::{FlexMultiplier, FlexMultiplier4};
use nbsmt_repro::core::pe::{SmtPe2, SmtPe4, ThreadInput, ThreadOutcome};
use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::quant::reduce::{
    reconstruct_signed, reconstruct_unsigned, reduce_signed, reduce_unsigned,
};

proptest! {
    /// Both flexible-multiplier decompositions are exact for every operand
    /// pair in single (8b-8b) mode.
    #[test]
    fn fmul_decompositions_are_exact(x in any::<u8>(), w in any::<i8>()) {
        prop_assert_eq!(FlexMultiplier::new().mul_single(x, w), x as i32 * w as i32);
        prop_assert_eq!(FlexMultiplier4::new().mul_single(x, w), x as i32 * w as i32);
    }

    /// Precision reduction is lossless exactly when the value fits a nibble
    /// or is a multiple of 16, and the reconstruction error is bounded by 8
    /// (half the rounding step) otherwise.
    #[test]
    fn reduction_error_bounds(x in any::<u8>(), w in any::<i8>()) {
        let rx = reduce_unsigned(x);
        let err_x = (x as i32 - reconstruct_unsigned(rx) as i32).abs();
        if x < 16 || x.is_multiple_of(16) {
            prop_assert_eq!(err_x, 0);
        }
        prop_assert!(err_x <= 15, "x={} err={}", x, err_x);

        let rw = reduce_signed(w);
        let err_w = (w as i32 - reconstruct_signed(rw) as i32).abs();
        if (-8..=7).contains(&w) || w % 16 == 0 {
            prop_assert_eq!(err_w, 0);
        }
        prop_assert!(err_w <= 16, "w={} err={}", w, err_w);
    }

    /// For any pair of thread inputs, the 2-threaded PE under S+A:
    /// * is exact whenever at most one thread needs the MAC,
    /// * otherwise each thread's error is bounded by 8·|w| (the activation
    ///   rounding error times the weight magnitude),
    /// * and a thread with a zero product never contributes anything.
    #[test]
    fn pe2_error_is_bounded(
        x0 in any::<u8>(), w0 in any::<i8>(),
        x1 in any::<u8>(), w1 in any::<i8>(),
    ) {
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let t = [ThreadInput::new(x0, w0), ThreadInput::new(x1, w1)];
        let r = pe.cycle(t);
        let active = t.iter().filter(|i| i.needs_mac()).count();
        for (i, input) in t.iter().enumerate() {
            if !input.needs_mac() {
                prop_assert_eq!(r.products[i], 0);
                prop_assert_eq!(r.outcomes[i], ThreadOutcome::Idle);
                continue;
            }
            let exact = input.exact_product();
            let err = (r.products[i] - exact).abs();
            if active <= 1 {
                prop_assert_eq!(err, 0, "single active thread must be exact");
            } else {
                // Activation rounding error is at most 8, except near the top
                // of the range where clamping to 15 nibbles raises it to 15.
                prop_assert!(err <= 15 * (input.w as i64).abs(),
                    "thread {} error {} too large for inputs {:?}", i, err, input);
            }
        }
    }

    /// The 4-threaded PE never produces an error larger than statically
    /// reducing both operands of every thread to rounded nibbles (the A4W4
    /// whole-model worst case of Fig. 7).
    #[test]
    fn pe4_error_is_bounded_by_static_a4w4(
        x0 in any::<u8>(), w0 in any::<i8>(),
        x1 in any::<u8>(), w1 in any::<i8>(),
        x2 in any::<u8>(), w2 in any::<i8>(),
        x3 in any::<u8>(), w3 in any::<i8>(),
    ) {
        let pe = SmtPe4::new(SharingPolicy::S_A);
        let t = [
            ThreadInput::new(x0, w0),
            ThreadInput::new(x1, w1),
            ThreadInput::new(x2, w2),
            ThreadInput::new(x3, w3),
        ];
        let r = pe.cycle(t);
        for (i, input) in t.iter().enumerate() {
            if !input.needs_mac() {
                prop_assert_eq!(r.products[i], 0);
                continue;
            }
            // Worst case: both operands rounded to the nearest multiple of 16
            // (error at most 8 each, 15/16 at the clamped extremes); cross
            // terms bound the product error.
            let bound = 16 * ((input.w as i64).abs() + input.x as i64) + 256;
            let err = (r.products[i] - input.exact_product()).abs();
            prop_assert!(err <= bound, "thread {} error {} exceeds bound {}", i, err, bound);
        }
    }

    /// The PE's busy/active statistics are always internally consistent.
    #[test]
    fn pe_statistics_are_consistent(
        x0 in any::<u8>(), w0 in any::<i8>(),
        x1 in any::<u8>(), w1 in any::<i8>(),
    ) {
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let t = [ThreadInput::new(x0, w0), ThreadInput::new(x1, w1)];
        let r = pe.cycle(t);
        let active = t.iter().filter(|i| i.needs_mac()).count() as u32;
        prop_assert_eq!(r.stats.active_threads, active);
        prop_assert_eq!(r.stats.busy, active > 0);
        prop_assert!(r.stats.reduced_threads <= active);
    }
}
