//! Smoke test for the umbrella crate's `prelude`: every commonly used type
//! must resolve through `nbsmt_repro::prelude` and behave. This is the
//! canary for workspace-manifest regressions — if a crate is renamed, a
//! member drops out of the root `Cargo.toml`, or a re-export path breaks,
//! this file stops compiling before anything subtler fails.

use nbsmt_repro::prelude::*;

#[test]
fn prelude_types_construct_and_run_one_pe_cycle() {
    // Config types resolve and construct.
    let config = SySmtConfig {
        grid: SystolicConfig::new(16, 16),
        threads: ThreadCount::Two,
        policy: SharingPolicy::S_A,
        reorder: true,
    };
    assert_eq!(config.threads.count(), 2);

    // A 2-threaded PE executes one cycle through the prelude re-exports.
    // One thread is idle, so the other must run at full precision.
    let pe = SmtPe2::new(SharingPolicy::S_A);
    let result = pe.cycle([ThreadInput::new(0, 23), ThreadInput::new(178, -14)]);
    assert_eq!(result.total(), 178 * -14);

    // The array constructed from the config reports it back.
    let array = SySmtArray::new(config);
    assert_eq!(array.config().threads, ThreadCount::Two);
}

#[test]
fn prelude_covers_the_cross_crate_surface() {
    // One symbol per re-exported crate, exercised (not just named) so the
    // whole DAG is linked into this test binary.
    let t = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
    assert_eq!(t.numel(), 4);

    let scheme = QuantScheme::activation_a8();
    assert_eq!(scheme.bits.bits(), 8);

    let emu = NbSmtMatmul::new(NbSmtMatmulConfig::two_threads());
    assert_eq!(emu.config().threads, ThreadCount::Two);

    let breakdown = UtilizationBreakdown::default();
    assert_eq!(breakdown.total(), 0);

    // The execution layer resolves through the prelude and honours its
    // determinism contract on a tiny GEMM.
    let ctx = ExecContext::new(ExecConfig {
        threads: 2,
        backend: GemmBackendKind::Parallel,
        ..ExecConfig::default()
    });
    assert_eq!(ctx.threads(), 2);
    let results = ctx.map_tiles(5, |t| t + 1);
    assert_eq!(results, vec![1, 2, 3, 4, 5]);

    let pe4 = SmtPe4::new(SharingPolicy::S);
    let quad = pe4.cycle([
        ThreadInput::new(0, 0),
        ThreadInput::new(0, 0),
        ThreadInput::new(0, 0),
        ThreadInput::new(3, 2),
    ]);
    assert_eq!(quad.total(), 6);
}

#[test]
fn prelude_covers_the_serving_layer() {
    // Serving config types resolve through the prelude.
    assert_eq!(SmtConfig::sysmt_2t().label(), "2t");
    assert_eq!(SmtConfig::sysmt_4t().speedup(), 4);
    // Config validation resolves through the prelude: bad values are typed
    // errors, valid ones pass.
    let bad = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 0,
            max_wait_ns: 100,
        },
        queue_capacity: 0,
    };
    assert_eq!(bad.validate(), Err(ConfigError::ZeroBatch));
    let scheduler = SchedulerConfig::default();
    assert_eq!(scheduler.validate(), Ok(()));
    assert!(matches!(
        SubmitError::QueueFull { capacity: 4 },
        SubmitError::QueueFull { capacity: 4 }
    ));
    // The service model is pure integer arithmetic; the registry constructs
    // empty. (Session compilation is exercised by the serve crate's own
    // tests and the bench determinism suite — training a model here would
    // slow every smoke run.)
    let registry = ModelRegistry::new();
    assert!(registry.model_ids().is_empty());
    let model = ServiceModel {
        ns_per_mac_x1024: 1024,
        batch_overhead_ns: 5,
        size: SizeModel::Unit,
    };
    assert_eq!(model.batch_overhead_ns, 5);
    assert_eq!(SizeModel::Unit.size_x1024(7), 1024);
    let pareto = SizeModel::BoundedPareto {
        seed: 1,
        alpha_x1024: 1536,
        min_x1024: 1024,
        max_x1024: 8192,
    };
    assert!((1024..=8192).contains(&pareto.size_x1024(3)));
    let stream = TrafficModel::Poisson {
        rate_mrps: 1_000_000,
    }
    .generate(9, 4);
    assert_eq!(stream.count(), 4);
    assert!(matches!(
        ArrivalProcess::Open {
            arrivals_ns: vec![0, 1]
        },
        ArrivalProcess::Open { .. }
    ));

    // The sharded serving layer resolves through the prelude too: router
    // and adaptive policies are pure config/arithmetic, so they run here.
    assert_eq!(RoutePolicy::parse("rr"), Some(RoutePolicy::RoundRobin));
    assert_eq!(RoutePolicy::Hashed.label(), "hash");
    let pool = PoolConfig {
        replicas: 0,
        route: RoutePolicy::LeastOutstanding,
        scheduler,
        adaptive: AdaptivePolicy::default(),
    };
    assert_eq!(pool.validate(), Err(ConfigError::ZeroReplicas));
    assert_eq!(PoolConfig::default().validate(), Ok(()));
    // The exec-layer config validates through the same trait.
    let exec = ExecConfig {
        tile_k: 0,
        ..ExecConfig::default()
    };
    assert_eq!(exec.validate(), Err(ExecConfigError::ZeroTileK));
    assert_eq!(AdaptivePolicy::pinned().decide(0, 3, usize::MAX - 1, 0), 0);
    assert_eq!(AdaptivePolicy::default().decide(0, 3, 64, 0), 1);
}
