//! Execution-layer equivalence properties: every GEMM backend and every
//! host thread count must produce bit-identical results — integer outputs,
//! f32 outputs, NB-SMT outputs *including* `PeStats`, and systolic
//! simulation outputs alike. This is the determinism contract of
//! `tensor::exec` checked end to end over random shapes and sparsities.

use proptest::prelude::*;

use nbsmt_repro::core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::core::ThreadCount;
use nbsmt_repro::quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_repro::quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_repro::quant::scheme::QuantScheme;
use nbsmt_repro::systolic::array::{OutputStationaryArray, SystolicConfig};
use nbsmt_repro::tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_repro::tensor::ops;
use nbsmt_repro::tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_repro::tensor::tensor::Matrix;

/// The host thread counts the contract is checked at (per the issue: the
/// degenerate 1-thread mode, one common count, and an oversubscribed one).
const HOST_THREADS: [usize; 3] = [1, 2, 8];

/// Every backend × thread-count combination, with deliberately small tiles
/// so that even tiny matrices split across several tiles and workers.
fn all_contexts() -> Vec<ExecContext> {
    let mut ctxs = Vec::new();
    for backend in [
        GemmBackendKind::Naive,
        GemmBackendKind::Blocked,
        GemmBackendKind::Parallel,
        GemmBackendKind::Simd,
        GemmBackendKind::Packed,
    ] {
        for threads in HOST_THREADS {
            ctxs.push(ExecContext::new(ExecConfig {
                threads,
                tile_rows: 3,
                tile_k: 5,
                backend,
            }));
        }
    }
    ctxs
}

fn synth_f32(seed: u64, rows: usize, cols: usize, sparsity: f64) -> Matrix<f32> {
    let mut synth = TensorSynthesizer::new(seed);
    let t = synth.tensor(&SynthesisConfig::activation(1.0, sparsity), &[rows, cols]);
    Matrix::from_vec(t.into_vec(), rows, cols).expect("dimensions match")
}

fn synth_layer(
    seed: u64,
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
) -> (QuantMatrix, QuantWeightMatrix) {
    let x = quantize_activations(
        &synth_f32(seed, m, k, sparsity),
        &QuantScheme::activation_a8(),
        None,
    );
    let w = quantize_weights(
        &synth_f32(seed ^ 0xabcd, k, n, 0.0),
        &QuantScheme::weight_w8(),
    );
    (x, w)
}

proptest! {
    /// `matmul_i32` is identical for Naive, Blocked, and Parallel at 1/2/8
    /// host threads, for random shapes and sparsities.
    #[test]
    fn i32_gemm_is_backend_and_thread_invariant(
        m in 1usize..20, k in 1usize..40, n in 1usize..16,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..90,
    ) {
        let to_i32 = |mat: Matrix<f32>| {
            let (r, c) = (mat.rows(), mat.cols());
            Matrix::from_vec(
                mat.into_vec().iter().map(|&v| (v * 127.0) as i32).collect(),
                r, c,
            ).expect("dimensions match")
        };
        let a = to_i32(synth_f32(seed, m, k, sparsity_pct as f64 / 100.0));
        let b = to_i32(synth_f32(seed ^ 0x55, k, n, 0.0));
        let reference = ops::matmul_i32(&a, &b).expect("dimensions match");
        for ctx in all_contexts() {
            let out = ops::matmul_i32_with(&ctx, &a, &b).expect("dimensions match");
            prop_assert_eq!(&out, &reference, "ctx {:?}", ctx.config());
        }
    }

    /// f32 GEMM is *bit*-identical across backends and thread counts (same
    /// per-element accumulation order and zero-skip rule everywhere). The
    /// `Simd` backend is the one exception: its f32 kernel is the declared
    /// `fast-f32` tier (vectorized accumulation order), checked separately
    /// below against the declared tolerance.
    #[test]
    fn f32_gemm_is_bit_exact_across_contexts(
        m in 1usize..16, k in 1usize..32, n in 1usize..12,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..90,
    ) {
        let a: nbsmt_repro::tensor::Tensor<f32> =
            synth_f32(seed, m, k, sparsity_pct as f64 / 100.0).into();
        let b: nbsmt_repro::tensor::Tensor<f32> = synth_f32(seed ^ 0x77, k, n, 0.0).into();
        let reference = ops::matmul(&a, &b).expect("dimensions match");
        let ref_bits: Vec<u32> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
        for ctx in all_contexts() {
            if ctx.config().backend == GemmBackendKind::Simd {
                continue;
            }
            let out = ops::matmul_with(&ctx, &a, &b).expect("dimensions match");
            let bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&bits, &ref_bits, "ctx {:?}", ctx.config());
        }
    }

    /// The `Simd` f32 kernel's declared fast-f32 tier: every element agrees
    /// with the scalar reference to within `1e-5 × Σ|aₚ·bₚ|` (tolerance
    /// relative to the ℓ1 magnitude of the reduction, so it stays meaningful
    /// under cancellation). This is the contract stated in `tensor::exec`.
    #[test]
    fn simd_f32_stays_within_declared_tolerance(
        m in 1usize..16, k in 1usize..64, n in 1usize..40,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..90,
    ) {
        let a = synth_f32(seed, m, k, sparsity_pct as f64 / 100.0);
        let b = synth_f32(seed ^ 0x77, k, n, 0.0);
        let at: nbsmt_repro::tensor::Tensor<f32> = a.clone().into();
        let bt: nbsmt_repro::tensor::Tensor<f32> = b.clone().into();
        let reference = ops::matmul(&at, &bt).expect("dimensions match");
        for threads in HOST_THREADS {
            let ctx = ExecContext::new(ExecConfig {
                threads,
                tile_rows: 3,
                tile_k: 5,
                backend: GemmBackendKind::Simd,
            });
            let out = ops::matmul_with(&ctx, &at, &bt).expect("dimensions match");
            for i in 0..m {
                for j in 0..n {
                    let scale: f32 = (0..k)
                        .map(|p| (a.at(i, p) * b.at(p, j)).abs())
                        .sum();
                    let tol = 1e-5_f32 * scale.max(1.0);
                    let got = out.as_slice()[i * n + j];
                    let want = reference.as_slice()[i * n + j];
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "element ({}, {}): {} vs {} (tol {})",
                        i, j, got, want, tol
                    );
                }
            }
        }
    }

    /// The algorithmic fast NB-SMT path (the default `execute_with`)
    /// reproduces the event-walking oracle (`execute_event_with`) exactly —
    /// output matrix *and* `PeStats` — over random shapes, sparsities,
    /// sharing policies, 2T/4T, and reordering, and is invariant to the GEMM
    /// backend computing its base product.
    #[test]
    fn fast_nbsmt_path_matches_event_oracle(
        m in 1usize..14, k in 2usize..40, n in 1usize..12,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..90,
        four_threads in any::<bool>(), reorder in any::<bool>(),
        policy_idx in 0usize..9,
    ) {
        const POLICIES: [SharingPolicy; 9] = [
            SharingPolicy::NAIVE,
            SharingPolicy::S,
            SharingPolicy::A,
            SharingPolicy::W,
            SharingPolicy::A_W,
            SharingPolicy::S_A,
            SharingPolicy::S_W,
            SharingPolicy::S_AW,
            SharingPolicy::S_A_W,
        ];
        let (x, w) = synth_layer(seed, m, k, n, sparsity_pct as f64 / 100.0);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: if four_threads { ThreadCount::Four } else { ThreadCount::Two },
            policy: POLICIES[policy_idx],
            reorder,
        });
        let oracle = emu
            .execute_event_with(&ExecContext::sequential(), &x, &w)
            .expect("dimensions match");
        for backend in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
            GemmBackendKind::Simd,
            GemmBackendKind::Packed,
        ] {
            let ctx = ExecContext::new(ExecConfig {
                threads: 1,
                tile_rows: 4,
                tile_k: 16,
                backend,
            });
            let fast = emu.execute_with(&ctx, &x, &w).expect("dimensions match");
            prop_assert_eq!(&fast, &oracle, "backend {:?}", backend);
        }
    }

    /// The NB-SMT emulation — output matrix *and* PeStats — is invariant to
    /// the host thread count for 2T and 4T, with and without reordering.
    #[test]
    fn nbsmt_output_and_stats_are_thread_invariant(
        m in 1usize..16, k in 2usize..32, n in 1usize..10,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..80,
        four_threads in any::<bool>(), reorder in any::<bool>(),
    ) {
        let (x, w) = synth_layer(seed, m, k, n, sparsity_pct as f64 / 100.0);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: if four_threads { ThreadCount::Four } else { ThreadCount::Two },
            policy: SharingPolicy::S_A,
            reorder,
        });
        let reference = emu.execute(&x, &w).expect("dimensions match");
        for threads in HOST_THREADS {
            let ctx = ExecContext::new(ExecConfig {
                threads,
                tile_rows: 2,
                ..ExecConfig::default()
            });
            let out = emu.execute_with(&ctx, &x, &w).expect("dimensions match");
            prop_assert_eq!(&out, &reference, "host threads {}", threads);
        }
    }

    /// The cycle-level systolic simulation — outputs and SimStats — is
    /// invariant to the host thread count simulating its tiles.
    #[test]
    fn systolic_simulation_is_thread_invariant(
        m in 1usize..12, k in 1usize..20, n in 1usize..10,
        seed in 0u64..1_000_000, sparsity_pct in 0usize..80,
    ) {
        let (x, w) = synth_layer(seed, m, k, n, sparsity_pct as f64 / 100.0);
        let array = OutputStationaryArray::new(SystolicConfig::new(4, 4));
        let reference = array.matmul(x.values(), w.values()).expect("dimensions match");
        for threads in HOST_THREADS {
            let ctx = ExecContext::with_threads(threads);
            let out = array
                .matmul_with(&ctx, x.values(), w.values())
                .expect("dimensions match");
            prop_assert_eq!(&out, &reference, "host threads {}", threads);
        }
    }
}
