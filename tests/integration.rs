//! Cross-crate integration tests: exercise the whole pipeline — synthetic
//! workloads → quantization → systolic array / NB-SMT emulation → metrics and
//! hardware model — through the umbrella crate's public API.

use nbsmt_repro::core::matmul::{reference_output, NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_repro::core::metrics::layer_error;
use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::core::sysmt::{SySmtArray, SySmtConfig};
use nbsmt_repro::core::ThreadCount;
use nbsmt_repro::hw::energy::{compare_energy, LayerEnergyInput};
use nbsmt_repro::hw::table2::DesignPoint;
use nbsmt_repro::nn::quantized::{QuantizedModel, ReferenceEngine};
use nbsmt_repro::quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_repro::quant::scheme::QuantScheme;
use nbsmt_repro::sparsity::stats::layer_utilization;
use nbsmt_repro::systolic::array::{OutputStationaryArray, SystolicConfig};
use nbsmt_repro::tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_repro::tensor::tensor::Matrix;
use nbsmt_repro::workloads::calib::{synthesize_model, SynthesisOptions};
use nbsmt_repro::workloads::synthnet::{generate_dataset, quick_synthnet};
use nbsmt_repro::workloads::zoo::{googlenet, resnet18, table1_models};

/// Quantizes a random layer for the pipeline tests.
fn random_quant_layer(
    seed: u64,
    m: usize,
    k: usize,
    n: usize,
) -> (
    nbsmt_repro::quant::qtensor::QuantMatrix,
    nbsmt_repro::quant::qtensor::QuantWeightMatrix,
) {
    let mut synth = TensorSynthesizer::new(seed);
    let x = synth.tensor(&SynthesisConfig::activation(0.3, 0.4), &[m, k]);
    let w = synth.tensor(&SynthesisConfig::weight(0.1, 0.0), &[k, n]);
    let qx = quantize_activations(
        &Matrix::from_vec(x.into_vec(), m, k).unwrap(),
        &QuantScheme::activation_a8(),
        Some((0.0, 1.0)),
    );
    let qw = quantize_weights(
        &Matrix::from_vec(w.into_vec(), k, n).unwrap(),
        &QuantScheme::weight_w8(),
    );
    (qx, qw)
}

#[test]
fn systolic_array_and_quantized_matmul_agree() {
    // The cycle-level systolic array, the fast estimator, and the integer
    // reference matmul must all agree on the numbers.
    let (qx, qw) = random_quant_layer(1, 24, 48, 16);
    let array = OutputStationaryArray::new(SystolicConfig::new(8, 8));
    let sim = array.matmul(qx.values(), qw.values()).unwrap();
    let reference = reference_output(&qx, &qw).unwrap();
    for i in 0..qx.rows() {
        for j in 0..qw.cols() {
            let dequant = *sim.output.at(i, j) as f32 * qx.scale() * qw.scale(j);
            assert!((dequant - reference.at(i, j)).abs() < 1e-3);
        }
    }
    let est = array.estimate(qx.values(), qw.values()).unwrap();
    assert_eq!(est.pe_busy_cycles, sim.stats.pe_busy_cycles);
}

#[test]
fn sysmt_layer_execution_reproduces_headline_claims() {
    // 2T SySMT: ~2x cycle speedup with small error; 4T: larger speedup and
    // larger (but bounded) error.
    let (qx, qw) = random_quant_layer(2, 64, 256, 32);
    let two = SySmtArray::new(SySmtConfig {
        grid: SystolicConfig::new(16, 16),
        threads: ThreadCount::Two,
        policy: SharingPolicy::S_A,
        reorder: true,
    });
    let four = SySmtArray::new(SySmtConfig {
        threads: ThreadCount::Four,
        ..*two.config()
    });
    let r2 = two.execute_layer(&qx, &qw).unwrap();
    let r4 = four.execute_layer(&qx, &qw).unwrap();
    assert!(r2.speedup() > 1.7, "2T speedup {}", r2.speedup());
    assert!(r4.speedup() > r2.speedup(), "4T must be faster than 2T");
    assert!(
        r2.error.relative_mse < 0.02,
        "2T error {}",
        r2.error.relative_mse
    );
    assert!(
        r4.error.relative_mse >= r2.error.relative_mse,
        "4T error should not be smaller than 2T error"
    );
    assert!(r2.utilization_gain() > 1.0);
}

#[test]
fn policy_ordering_holds_on_calibrated_zoo_layers() {
    // On GoogLeNet-proxy layers, S+A produces no more error than S alone,
    // which produces no more error than the naive always-reduce policy.
    let model = googlenet();
    let layers = synthesize_model(
        &model,
        &SynthesisOptions {
            max_rows: 48,
            max_cols: 24,
            ..SynthesisOptions::default()
        },
    );
    let mut totals = [0.0f64; 3];
    for layer in layers.iter().step_by(8) {
        let reference = reference_output(&layer.activations, &layer.weights).unwrap();
        for (slot, policy) in [SharingPolicy::NAIVE, SharingPolicy::S, SharingPolicy::S_A]
            .iter()
            .enumerate()
        {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Two,
                policy: *policy,
                reorder: false,
            });
            let out = emu.execute(&layer.activations, &layer.weights).unwrap();
            totals[slot] += layer_error(&out.output, &reference).mse;
        }
    }
    assert!(
        totals[1] <= totals[0],
        "S ({}) vs naive ({})",
        totals[1],
        totals[0]
    );
    assert!(
        totals[2] <= totals[1],
        "S+A ({}) vs S ({})",
        totals[2],
        totals[1]
    );
}

#[test]
fn end_to_end_quantized_model_under_nbsmt_keeps_accuracy() {
    // Train SynthNet quickly, calibrate, and check that 2T NB-SMT execution
    // stays close to the 8-bit baseline end to end.
    let trained = quick_synthnet(31).expect("training succeeds");
    let calib = generate_dataset(&trained.task, 4, 123);
    let (calib_images, _) = calib.batch(0, calib.len());
    let quantized = QuantizedModel::calibrate(&trained.model, &[calib_images]).unwrap();
    let (images, labels) = trained.test.batch(0, trained.test.len());
    let baseline = quantized
        .accuracy_with(&images, &labels, &mut ReferenceEngine)
        .unwrap();

    struct TwoThreadEngine;
    impl nbsmt_repro::nn::quantized::GemmEngine for TwoThreadEngine {
        fn gemm(
            &mut self,
            ctx: &nbsmt_repro::tensor::exec::ExecContext,
            layer_index: usize,
            x: &nbsmt_repro::quant::qtensor::QuantMatrix,
            w: &nbsmt_repro::quant::qtensor::QuantWeightMatrix,
        ) -> Result<Matrix<f32>, nbsmt_repro::nn::NnError> {
            let threads = if layer_index == 0 {
                ThreadCount::One
            } else {
                ThreadCount::Two
            };
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: true,
            });
            Ok(emu
                .execute_with(ctx, x, w)
                .map_err(nbsmt_repro::nn::NnError::from)?
                .output)
        }
    }
    let nbsmt = quantized
        .accuracy_with(&images, &labels, &mut TwoThreadEngine)
        .unwrap();
    assert!(
        baseline - nbsmt <= 0.12,
        "2T NB-SMT accuracy {nbsmt} dropped too far from baseline {baseline}"
    );
}

#[test]
fn zoo_models_feed_energy_model_with_sane_savings() {
    // The smallest zoo model end to end through utilization and Eq. 6.
    let model = resnet18();
    let layers = synthesize_model(
        &model,
        &SynthesisOptions {
            max_rows: 32,
            max_cols: 16,
            ..SynthesisOptions::default()
        },
    );
    let mut baseline = Vec::new();
    let mut sysmt2 = Vec::new();
    for layer in layers.iter().step_by(3) {
        let base_util = layer_utilization(&layer.activations, &layer.weights, 4).busy_fraction();
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: true,
        });
        let util2 = emu
            .execute(&layer.activations, &layer.weights)
            .unwrap()
            .stats
            .utilization();
        baseline.push(LayerEnergyInput {
            mac_ops: layer.mac_ops,
            utilization: base_util,
            threads: 1,
        });
        sysmt2.push(LayerEnergyInput {
            mac_ops: layer.mac_ops,
            utilization: util2,
            threads: 2,
        });
        // NB-SMT utilization never exceeds 1 and never falls below baseline.
        assert!(util2 <= 1.0 + 1e-9);
        assert!(util2 + 1e-9 >= base_util);
    }
    let cmp = compare_energy(DesignPoint::Sysmt2T, &baseline, &sysmt2);
    assert!(
        cmp.saving() > 0.1 && cmp.saving() < 0.6,
        "saving {}",
        cmp.saving()
    );
}

#[test]
fn table1_models_have_increasing_compute_with_depth_class() {
    // Sanity over the whole zoo: ResNet-50 is the largest, AlexNet the
    // smallest conv workload, as in Table I.
    let models = table1_models();
    let macs: Vec<(String, u64)> = models
        .iter()
        .map(|m| (m.name.clone(), m.conv_mac_ops()))
        .collect();
    let alexnet = macs.iter().find(|(n, _)| n == "AlexNet").unwrap().1;
    let resnet50 = macs.iter().find(|(n, _)| n == "ResNet-50").unwrap().1;
    assert!(resnet50 > 5 * alexnet);
    for (_, m) in &macs {
        assert!(*m > 100_000_000, "every model is at least 0.1 GMAC");
    }
}
