//! The committed chaos-regression corpus: every schedule in
//! [`chaos_corpus`] is one incident class, replayed here as a permanent
//! regression test with exact accounting.
//!
//! The properties under test extend `queue_stress.rs`'s permit invariants
//! across replica death:
//!
//! * **Permits reconcile exactly**: submitted = completed + cancelled +
//!   rejected, for every schedule — a crash may move or shed a request,
//!   never lose or duplicate it.
//! * **No deadlock**: every response handle resolves (`wait` returns), even
//!   when the replica holding the request died, closed admissions, or shed
//!   its whole queue with no survivor.
//! * **Bit-identical replay**: the lockstep pool agrees with itself across
//!   runs and with [`simulate_pool_faulted`] on batch compositions, modes,
//!   transitions, handoff decisions, fault counters, latency quantiles, and
//!   logits.
//! * **Countermeasures help**: a retrying/hedging [`FaultClient`] completes
//!   at least as many requests as a fail-fast baseline under the same
//!   schedule.

use std::sync::Arc;

use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::faults::{chaos_corpus, FaultClient, FaultPlan, HedgePolicy, RetryPolicy};
use nbsmt_serve::pool::{PoolSnapshot, ReplicaPool};
use nbsmt_serve::queue::Cancelled;
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::session::Session;
use nbsmt_serve::sim::{simulate_pool_faulted, ArrivalProcess, PoolSimOutcome, ServiceModel};
use nbsmt_tensor::exec::{ExecConfig, ExecContext};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::quick_synthnet;

const REQUESTS: usize = 32;

fn ladder_fixture() -> (Vec<Arc<Session>>, Vec<Tensor<f32>>) {
    let trained = quick_synthnet(29).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, 600)
        .unwrap();
    let ladder = registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .unwrap();
    let (inputs, _) = trained.sample_requests(REQUESTS, 601);
    (ladder, inputs)
}

fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 2,
        route: RoutePolicy::RoundRobin,
        scheduler: SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 500_000,
            },
            queue_capacity: 64,
        },
        adaptive: AdaptivePolicy::default(),
    }
}

/// Outcome of one request's response handle after the pool drained.
enum Fate {
    Completed(Vec<f32>),
    Cancelled,
    Rejected,
}

/// Runs the burst through a lockstep pool under `plan`, resolving every
/// handle — the test's no-deadlock assertion is that this returns at all.
fn run_lockstep(
    ladder: &[Arc<Session>],
    inputs: &[Tensor<f32>],
    plan: &FaultPlan,
) -> (PoolSnapshot, Vec<(u64, Fate)>) {
    let mut pool = ReplicaPool::start_lockstep(
        ladder.to_vec(),
        pool_config(),
        ExecConfig::default(),
        true,
        ServiceModel::default(),
        plan,
    )
    .unwrap();
    let client = pool.client();
    let mut handles = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        match client.submit(i as u64, input.clone()) {
            Ok(handle) => handles.push((i as u64, Some(handle))),
            Err(_) => handles.push((i as u64, None)),
        }
    }
    pool.resume();
    let fates: Vec<(u64, Fate)> = handles
        .into_iter()
        .map(|(key, handle)| {
            let fate = match handle {
                None => Fate::Rejected,
                Some(handle) => match handle.wait() {
                    Ok(result) => Fate::Completed(result.expect("no execution error").logits),
                    Err(Cancelled) => Fate::Cancelled,
                },
            };
            (key, fate)
        })
        .collect();
    (pool.shutdown(), fates)
}

/// The same burst through the discrete-event simulator under `plan`.
fn run_sim(ladder: &[Arc<Session>], inputs: &[Tensor<f32>], plan: &FaultPlan) -> PoolSimOutcome {
    simulate_pool_faulted(
        ladder,
        &ExecContext::new(ExecConfig::default()),
        inputs,
        &ArrivalProcess::Open {
            arrivals_ns: vec![0; inputs.len()],
        },
        pool_config(),
        ServiceModel::default(),
        Some(plan),
    )
    .unwrap()
}

fn count(fates: &[(u64, Fate)]) -> (u64, u64, u64) {
    let mut completed = 0;
    let mut cancelled = 0;
    let mut rejected = 0;
    for (_, fate) in fates {
        match fate {
            Fate::Completed(_) => completed += 1,
            Fate::Cancelled => cancelled += 1,
            Fate::Rejected => rejected += 1,
        }
    }
    (completed, cancelled, rejected)
}

/// The accounting invariant every schedule must satisfy: a fault may move
/// or shed a request, never lose or duplicate it.
fn assert_permits_reconcile(name: &str, snapshot: &PoolSnapshot, fates: &[(u64, Fate)]) {
    let (completed, cancelled, rejected) = count(fates);
    assert_eq!(
        completed + cancelled + rejected,
        fates.len() as u64,
        "{name}: every submission resolves exactly once"
    );
    assert_eq!(
        snapshot.total.completed, completed,
        "{name}: pool counters agree with the clients' view"
    );
    assert_eq!(
        snapshot.total.rejected, rejected,
        "{name}: rejection counters agree"
    );
    assert_eq!(
        snapshot.total.handoff_shed, cancelled,
        "{name}: every cancellation is a recorded handoff shed"
    );
    let shed_records = snapshot
        .handoffs
        .iter()
        .filter(|h| h.to_replica.is_none())
        .count() as u64;
    assert_eq!(
        shed_records, cancelled,
        "{name}: handoff records agree with cancellations"
    );
}

/// Every corpus schedule replays bit-identically — against a second lockstep
/// run and against the virtual-clock simulator — and reconciles its permits.
#[test]
fn corpus_replays_bit_identically_and_matches_the_simulator() {
    let (ladder, inputs) = ladder_fixture();
    for (name, plan) in chaos_corpus() {
        let (snap_a, fates_a) = run_lockstep(&ladder, &inputs, &plan);
        let (snap_b, _) = run_lockstep(&ladder, &inputs, &plan);
        assert_permits_reconcile(name, &snap_a, &fates_a);

        // Lockstep self-agreement: the wall clock is the only divergence.
        assert_eq!(snap_a.batch_log, snap_b.batch_log, "{name}: batch log");
        assert_eq!(
            snap_a.transitions, snap_b.transitions,
            "{name}: transitions"
        );
        assert_eq!(snap_a.handoffs, snap_b.handoffs, "{name}: handoffs");

        // Simulator agreement: compositions, modes, handoffs, counters, and
        // the *virtual* latency quantiles all match bit for bit.
        let sim = run_sim(&ladder, &inputs, &plan);
        let sim_log: Vec<(usize, usize, Vec<u64>, usize)> = sim
            .batches
            .iter()
            .map(|b| {
                (
                    b.replica,
                    b.mode,
                    b.request_ids.clone(),
                    b.queue_depth_after,
                )
            })
            .collect();
        let pool_log: Vec<(usize, usize, Vec<u64>, usize)> = snap_a
            .batch_log
            .iter()
            .map(|b| (b.replica, b.mode, b.keys.clone(), b.queue_depth_after))
            .collect();
        assert_eq!(pool_log, sim_log, "{name}: batch schedule");
        assert_eq!(snap_a.transitions, sim.transitions, "{name}: transitions");
        assert_eq!(snap_a.handoffs, sim.handoffs, "{name}: handoff decisions");
        for (pool_m, sim_m) in snap_a.per_replica.iter().zip(&sim.per_replica) {
            assert_eq!(pool_m.completed, sim_m.completed, "{name}: completed");
            assert_eq!(pool_m.crashes, sim_m.crashes, "{name}: crashes");
            assert_eq!(pool_m.handoffs, sim_m.handoffs, "{name}: handoffs");
            assert_eq!(pool_m.handoff_shed, sim_m.handoff_shed, "{name}: shed");
            assert_eq!(pool_m.stalls, sim_m.stalls, "{name}: stalls");
            assert_eq!(pool_m.p50_ns, sim_m.p50_ns, "{name}: virtual p50");
            assert_eq!(pool_m.p95_ns, sim_m.p95_ns, "{name}: virtual p95");
            assert_eq!(pool_m.p99_ns, sim_m.p99_ns, "{name}: virtual p99");
        }

        // Logits are computed for real in both drivers — compare per key.
        let sim_logits: std::collections::HashMap<u64, &Vec<f32>> = sim
            .responses
            .iter()
            .map(|(id, inf)| (*id, &inf.logits))
            .collect();
        for (key, fate) in &fates_a {
            if let Fate::Completed(logits) = fate {
                assert_eq!(
                    Some(&logits),
                    sim_logits.get(key).as_ref().copied(),
                    "{name}: logits for request {key}"
                );
            }
        }
    }
}

/// Incident: a replica dies while its queue still holds most of a burst.
/// The drain/handoff path must re-route every orphan to the survivor, which
/// then completes them — nothing sheds, nothing hangs.
#[test]
fn crash_during_drain_hands_every_orphan_to_the_survivor() {
    let (ladder, inputs) = ladder_fixture();
    let plan = &chaos_corpus()[0];
    assert_eq!(plan.0, "crash-during-drain");
    let (snapshot, fates) = run_lockstep(&ladder, &inputs, &plan.1);
    assert_permits_reconcile(plan.0, &snapshot, &fates);
    assert_eq!(snapshot.total.crashes, 1);
    assert!(
        snapshot.total.handoffs > 0,
        "the crashed replica's queue must hand off"
    );
    assert_eq!(snapshot.total.handoff_shed, 0, "the survivor has room");
    // Every handed-off request completed on the survivor.
    for handoff in &snapshot.handoffs {
        assert_eq!(handoff.from_replica, 1);
        assert_eq!(handoff.to_replica, Some(0));
        let fate = &fates[handoff.key as usize].1;
        assert!(
            matches!(fate, Fate::Completed(_)),
            "handed-off request {} must complete",
            handoff.key
        );
    }
    assert_eq!(snapshot.total.completed, REQUESTS as u64);
}

/// Incident: cascading failure — the second crash finds no survivor, so its
/// whole queue sheds. Every shed must surface as a typed cancellation on the
/// client's handle, never a hang.
#[test]
fn double_crash_cascade_sheds_the_second_queue_as_cancellations() {
    let (ladder, inputs) = ladder_fixture();
    let corpus = chaos_corpus();
    let (name, plan) = corpus
        .iter()
        .find(|(n, _)| *n == "double-crash-cascade")
        .unwrap();
    let (snapshot, fates) = run_lockstep(&ladder, &inputs, plan);
    assert_permits_reconcile(name, &snapshot, &fates);
    assert_eq!(snapshot.total.crashes, 2, "both replicas must die");
    let (_, cancelled, _) = count(&fates);
    assert!(
        cancelled > 0,
        "the second crash has no survivor: its queue must shed"
    );
    // The first crash still handed off (replica 0 was alive then).
    assert!(snapshot
        .handoffs
        .iter()
        .any(|h| h.from_replica == 1 && h.to_replica == Some(0)));
    // The second crash shed everything (replica 1 was already dead).
    assert!(snapshot
        .handoffs
        .iter()
        .filter(|h| h.from_replica == 0)
        .all(|h| h.to_replica.is_none()));
}

/// Incident: the only survivor has closed admissions when a crash tries to
/// hand off — the handoff must respect the close and shed rather than sneak
/// past admission control.
#[test]
fn closed_survivor_sheds_rather_than_bypassing_admission_control() {
    let (ladder, inputs) = ladder_fixture();
    let corpus = chaos_corpus();
    let (name, plan) = corpus
        .iter()
        .find(|(n, _)| *n == "closed-survivor-sheds")
        .unwrap();
    let (snapshot, fates) = run_lockstep(&ladder, &inputs, plan);
    assert_permits_reconcile(name, &snapshot, &fates);
    assert!(
        snapshot.handoffs.iter().all(|h| h.to_replica.is_none()),
        "no orphan may land on a closed queue"
    );
    assert!(snapshot.total.handoff_shed > 0);
    // The closed replica still drained its own queue.
    assert!(snapshot.per_replica[1].completed > 0);
}

/// Incidents: a stall right as queue pressure drives escalation, and a
/// fleet-wide straggle window. Neither loses a request; the stall is
/// counted; the straggle inflates the virtual tail latency.
#[test]
fn stall_and_straggle_schedules_keep_every_request() {
    let (ladder, inputs) = ladder_fixture();
    let corpus = chaos_corpus();
    let quiet = run_sim(&ladder, &inputs, &FaultPlan::none());
    for name in ["stall-at-escalation", "all-replicas-straggle"] {
        let (_, plan) = corpus.iter().find(|(n, _)| *n == name).unwrap();
        let (snapshot, fates) = run_lockstep(&ladder, &inputs, plan);
        assert_permits_reconcile(name, &snapshot, &fates);
        assert_eq!(
            snapshot.total.completed, REQUESTS as u64,
            "{name}: nothing crashes, nothing sheds"
        );
        assert_eq!(snapshot.total.crashes, 0, "{name}");
        if name == "stall-at-escalation" {
            assert_eq!(snapshot.total.stalls, 1, "{name}");
        } else {
            // 4× service over the whole run must move the virtual p95.
            assert!(
                snapshot.total.p95_ns > quiet.metrics.p95_ns,
                "{name}: straggle must inflate the virtual tail \
                 ({} vs quiet {})",
                snapshot.total.p95_ns,
                quiet.metrics.p95_ns
            );
        }
    }
}

/// Incident: a replica dies with hedged duplicates in flight, on a *live*
/// (wall-clock) pool. The retrying/hedging client must complete at least as
/// many requests as a fail-fast baseline under the same schedule — the
/// availability bench's headline inequality, asserted here at test scale.
#[test]
fn live_pool_countermeasures_recover_at_least_the_baseline() {
    let (ladder, inputs) = ladder_fixture();
    let corpus = chaos_corpus();
    let (_, plan) = corpus
        .iter()
        .find(|(n, _)| *n == "crash-with-hedge-in-flight")
        .unwrap();
    let run = |retry: RetryPolicy, hedge: Option<HedgePolicy>| -> (u64, u64) {
        let pool = ReplicaPool::start_with_faults(
            ladder.clone(),
            pool_config(),
            ExecConfig::default(),
            plan,
            ServiceModel::default(),
        )
        .unwrap();
        let mut client = FaultClient::new(pool.client(), retry, hedge);
        let mut completed = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            if client.call(i as u64, input).is_some() {
                completed += 1;
            }
        }
        let stats = client.stats();
        assert_eq!(stats.completed, completed);
        assert_eq!(stats.completed + stats.failed, inputs.len() as u64);
        drop(pool.shutdown());
        (completed, stats.hedges)
    };
    let (baseline, _) = run(
        RetryPolicy {
            max_retries: 0,
            backoff_base_ns: 1,
        },
        None,
    );
    let (countered, hedges) = run(
        RetryPolicy {
            max_retries: 6,
            backoff_base_ns: 100_000,
        },
        // Hedge aggressively so the crash window overlaps in-flight hedges.
        Some(HedgePolicy { delay_ns: 50_000 }),
    );
    assert!(
        countered >= baseline,
        "countermeasures must not lose ground: {countered} < {baseline}"
    );
    assert!(hedges > 0, "the aggressive hedge delay must fire");
    assert_eq!(
        countered,
        inputs.len() as u64,
        "a surviving replica plus retries completes the whole burst"
    );
}
