//! Concurrency stress tests for the admission-control queue: many producers
//! hammering [`BoundedQueue`] while response handles are dropped mid-flight.
//!
//! The properties under test are the serving layer's accounting invariants —
//! the ones every metrics snapshot and shed-rate claim depend on:
//!
//! * **No lost permits**: every submission either lands in the queue (and is
//!   eventually popped) or comes back with a typed [`SubmitError`]; accepted
//!   = consumed, attempts = accepted + `QueueFull` + `Closed`.
//! * **No deadlock**: dropping a [`ResponseHandle`] before the response
//!   arrives, or dropping a [`ResponseSlot`] before completing it, never
//!   wedges the other side.
//! * **Bound respected**: the queue never holds more than its capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nbsmt_serve::config::SubmitError;
use nbsmt_serve::queue::{response_channel, BoundedQueue, Cancelled, ResponseSlot};

struct StressCounters {
    accepted: AtomicU64,
    queue_full: AtomicU64,
    closed: AtomicU64,
}

#[test]
fn producers_dropping_handles_mid_flight_lose_no_permits() {
    const PRODUCERS: usize = 8;
    const ATTEMPTS_PER_PRODUCER: u64 = 400;
    const CAPACITY: usize = 8;

    let queue: Arc<BoundedQueue<(u64, ResponseSlot<u64>)>> = Arc::new(BoundedQueue::new(CAPACITY));
    let counters = Arc::new(StressCounters {
        accepted: AtomicU64::new(0),
        queue_full: AtomicU64::new(0),
        closed: AtomicU64::new(0),
    });

    // Consumer: pops until close-and-drained, completes most slots and
    // deliberately *drops* every 7th (scheduler dying mid-request) — the
    // waiting handle must observe `Cancelled`, not hang.
    let consumer_queue = Arc::clone(&queue);
    let consumer = std::thread::spawn(move || {
        let mut consumed = 0u64;
        let mut dropped_slots = 0u64;
        while let Some((value, slot)) = consumer_queue.pop_blocking() {
            consumed += 1;
            if consumed.is_multiple_of(7) {
                dropped_slots += 1;
                drop(slot);
            } else {
                slot.complete(value);
            }
            if consumed.is_multiple_of(16) {
                // Periodically stall so the producers actually fill the
                // queue and exercise the QueueFull path.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        (consumed, dropped_slots)
    });

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let mut completed = 0u64;
                let mut cancelled = 0u64;
                for i in 0..ATTEMPTS_PER_PRODUCER {
                    let value = (p as u64) << 32 | i;
                    let (slot, handle) = response_channel();
                    match queue.try_push((value, slot)) {
                        Ok(()) => {
                            counters.accepted.fetch_add(1, Ordering::Relaxed);
                            if i % 3 == 0 {
                                // Client walks away mid-flight: the handle
                                // is dropped while the request is queued or
                                // executing. The slot side must not wedge.
                                drop(handle);
                            } else {
                                match handle.wait() {
                                    Ok(echoed) => {
                                        assert_eq!(echoed, value, "responses must not cross");
                                        completed += 1;
                                    }
                                    Err(Cancelled) => cancelled += 1,
                                }
                            }
                        }
                        Err(SubmitError::QueueFull { capacity }) => {
                            assert_eq!(capacity, CAPACITY);
                            counters.queue_full.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(SubmitError::Closed) => {
                            counters.closed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    assert!(queue.len() <= CAPACITY, "bound must hold");
                }
                (completed, cancelled)
            })
        })
        .collect();

    let mut waited_completed = 0u64;
    let mut waited_cancelled = 0u64;
    for producer in producers {
        let (completed, cancelled) = producer.join().expect("producer exits cleanly");
        waited_completed += completed;
        waited_cancelled += cancelled;
    }
    // Producers are done: close the queue; the consumer drains what is left
    // and exits — if a permit were ever lost this join would deadlock (the
    // driver's test timeout is the backstop).
    queue.close();
    let (consumed, dropped_slots) = consumer.join().expect("consumer exits cleanly");

    let accepted = counters.accepted.load(Ordering::Relaxed);
    let queue_full = counters.queue_full.load(Ordering::Relaxed);
    let closed = counters.closed.load(Ordering::Relaxed);

    // Every attempt is accounted for by exactly one typed outcome…
    assert_eq!(
        accepted + queue_full + closed,
        (PRODUCERS as u64) * ATTEMPTS_PER_PRODUCER,
        "attempts must reconcile with typed outcomes"
    );
    // …no submissions raced shutdown (close happens after all joins)…
    assert_eq!(closed, 0);
    // …every accepted submission was consumed exactly once…
    assert_eq!(consumed, accepted, "no permit may be lost or duplicated");
    assert!(queue.is_empty(), "closed queue must drain to empty");
    // …and every waited-on handle resolved: completions for completed
    // slots, cancellations only from deliberately dropped slots.
    assert!(waited_cancelled <= dropped_slots);
    assert!(
        waited_completed + waited_cancelled <= accepted,
        "waited outcomes cannot exceed accepted submissions"
    );
    assert!(waited_completed > 0, "the happy path must actually run");
    assert!(
        queue_full > 0,
        "a capacity-8 queue under 8 producers must shed"
    );
    assert!(dropped_slots > 0, "the slot-drop path must actually run");
}

#[test]
fn close_racing_producers_reconciles_typed_errors() {
    const PRODUCERS: usize = 6;
    const ATTEMPTS_PER_PRODUCER: u64 = 300;

    let queue: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(16));
    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    // Consumer keeps draining so producers see both a full and a non-full
    // queue; it stops once the queue is closed and drained.
    let consumer_queue = Arc::clone(&queue);
    let consumer = std::thread::spawn(move || {
        let mut consumed = 0u64;
        while consumer_queue.pop_blocking().is_some() {
            consumed += 1;
        }
        consumed
    });

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = Arc::clone(&queue);
            let accepted = Arc::clone(&accepted);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                for i in 0..ATTEMPTS_PER_PRODUCER {
                    match queue.try_push((p as u64) << 32 | i) {
                        Ok(()) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(SubmitError::QueueFull { .. }) | Err(SubmitError::Closed) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if queue.is_closed() {
                        break;
                    }
                }
            })
        })
        .collect();

    // Close while producers are (very likely) still pushing: submissions
    // racing the close must come back `Closed`, never vanish.
    queue.close();
    for producer in producers {
        producer.join().expect("producer exits cleanly");
    }
    let consumed = consumer.join().expect("consumer exits cleanly");

    assert_eq!(
        consumed,
        accepted.load(Ordering::Relaxed),
        "everything accepted before the close must still be consumed"
    );
    assert!(queue.is_empty());
    assert_eq!(
        queue.try_push(0),
        Err(SubmitError::Closed),
        "a closed queue stays closed"
    );
}
