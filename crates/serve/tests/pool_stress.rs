//! Sustained stress test for the threaded [`ReplicaPool`]: ≥100k requests
//! drawn from a seeded MMPP stream, pushed through real worker threads at
//! full throttle (no pacing — the harshest contention profile the router
//! and per-replica queues can see).
//!
//! The properties under test:
//!
//! * **Zero permit leaks**: every submission either completes (its handle
//!   resolves with a result and the pool counts it) or comes back as a
//!   typed [`SubmitError`]; attempts = completed + `QueueFull` + `Closed`,
//!   and the pool's own `total.completed` / `total.rejected` counters
//!   reconcile exactly with what the client threads observed.
//! * **Constant memory via log caps**: a free-running pool records no
//!   per-batch composition log, and the snapshot's retained logs respect
//!   [`BATCH_LOG_CAP`] / [`TRANSITION_LOG_CAP`] / [`CONTROL_LOG_CAP`] no
//!   matter how many requests flowed — the dropped-* counters, not
//!   unbounded vectors, close the accounting.
//!
//! The big run is `#[ignore]`d (it executes 100k real inferences); CI runs
//! it explicitly in the `pool-stress` job:
//!
//! ```text
//! cargo test -p nbsmt-serve --release --test pool_stress -- --ignored
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use nbsmt_serve::{
    AdaptivePolicy, BatchPolicy, ModelRegistry, PoolConfig, ReplicaPool, RoutePolicy,
    SchedulerConfig, Session, SmtConfig, SubmitError, TrafficModel, BATCH_LOG_CAP, CONTROL_LOG_CAP,
    TRANSITION_LOG_CAP,
};
use nbsmt_tensor::exec::ExecConfig;
use nbsmt_tensor::Tensor;
use nbsmt_workloads::synthnet::quick_synthnet;

struct StressCounters {
    /// Every `submit` call made, including retries of a full queue.
    submit_calls: AtomicU64,
    /// Every `QueueFull` error received (one per failed `submit` call).
    queue_full: AtomicU64,
    /// Requests abandoned after exhausting the retry budget.
    shed: AtomicU64,
    closed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
}

fn ladder_fixture(seed: u64) -> (Vec<Arc<Session>>, Vec<Tensor<f32>>) {
    let trained = quick_synthnet(seed).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, 600)
        .expect("registration succeeds");
    let ladder = registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");
    let (inputs, _) = trained.sample_requests(64, seed.wrapping_add(1));
    (ladder, inputs)
}

/// Drives `total_requests` MMPP-keyed submissions through a fresh pool with
/// `producers` client threads and returns the pool snapshot plus the
/// client-side accounting. Handles are waited on a dedicated drain thread so
/// the harness itself holds only a bounded window of in-flight responses.
fn run_stress(
    total_requests: u64,
    producers: u64,
    replicas: usize,
    seed: u64,
) -> (nbsmt_serve::PoolSnapshot, u64, StressCounters) {
    let (ladder, inputs) = ladder_fixture(seed);
    let pool = ReplicaPool::start(
        ladder,
        PoolConfig {
            replicas,
            route: RoutePolicy::Hashed,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 8,
                    max_wait_ns: 200_000,
                },
                queue_capacity: 32,
            },
            adaptive: AdaptivePolicy::default(),
        },
        ExecConfig::default(),
    )
    .expect("pool starts");

    let counters = Arc::new(StressCounters {
        submit_calls: AtomicU64::new(0),
        queue_full: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        closed: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        cancelled: AtomicU64::new(0),
    });
    let (handle_tx, handle_rx) =
        mpsc::channel::<nbsmt_serve::queue::ResponseHandle<nbsmt_serve::RequestResult>>();

    // Drain thread: waits every accepted handle to completion so producers
    // never accumulate an unbounded backlog of response slots.
    let drain = {
        let counters = Arc::clone(&counters);
        thread::spawn(move || {
            for handle in handle_rx {
                match handle.wait() {
                    Ok(result) => {
                        result.expect("inference succeeds");
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    let per_producer = total_requests / producers;
    let attempts = per_producer * producers;
    let workers: Vec<_> = (0..producers)
        .map(|p| {
            let client = pool.client();
            let counters = Arc::clone(&counters);
            let inputs = inputs.clone();
            let handle_tx = handle_tx.clone();
            // Each producer replays its own seeded MMPP key stream — bursty
            // key locality is exactly what hashed routing turns into deep,
            // imbalanced queues.
            let arrivals = TrafficModel::Mmpp {
                calm_mrps: 500_000,
                burst_mrps: 2_500_000,
                mean_calm_ns: 3_000_000,
                mean_burst_ns: 1_000_000,
            }
            .generate(seed.wrapping_add(100).wrapping_add(p), per_producer);
            thread::spawn(move || {
                // Bounded backpressure: retry a full queue with a yield so
                // the producers stress the pool at its own sustained
                // throughput instead of shedding the whole stream, but cap
                // the retries so a wedged pool fails the test instead of
                // hanging it.
                const MAX_RETRIES: u64 = 200_000;
                for arrival in arrivals {
                    let key = arrival.key.wrapping_mul(producers).wrapping_add(p);
                    let input = &inputs[(key % inputs.len() as u64) as usize];
                    let mut tries = 0;
                    loop {
                        counters.submit_calls.fetch_add(1, Ordering::Relaxed);
                        match client.submit(key, input.clone()) {
                            Ok(handle) => {
                                handle_tx.send(handle).expect("drain thread alive");
                                break;
                            }
                            Err(SubmitError::QueueFull { .. }) => {
                                counters.queue_full.fetch_add(1, Ordering::Relaxed);
                                tries += 1;
                                if tries >= MAX_RETRIES {
                                    counters.shed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                thread::yield_now();
                            }
                            Err(SubmitError::Closed) => {
                                counters.closed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    drop(handle_tx);

    for worker in workers {
        worker.join().expect("producer thread exits cleanly");
    }
    drain.join().expect("drain thread exits cleanly");
    let snapshot = pool.shutdown();
    let counters = Arc::try_unwrap(counters)
        .map_err(|_| "all clones joined")
        .expect("counters unshared after join");
    (snapshot, attempts, counters)
}

fn assert_invariants(
    snapshot: &nbsmt_serve::PoolSnapshot,
    attempts: u64,
    counters: &StressCounters,
    replicas: usize,
) {
    let submit_calls = counters.submit_calls.load(Ordering::Relaxed);
    let completed = counters.completed.load(Ordering::Relaxed);
    let queue_full = counters.queue_full.load(Ordering::Relaxed);
    let shed = counters.shed.load(Ordering::Relaxed);
    let closed = counters.closed.load(Ordering::Relaxed);
    let cancelled = counters.cancelled.load(Ordering::Relaxed);

    // Zero permit leaks: every submit call is accounted for exactly once at
    // the queue boundary, and every logical request either completed or was
    // shed after its retry budget — on both sides of the queue.
    assert_eq!(cancelled, 0, "no accepted request may be dropped");
    assert_eq!(closed, 0, "admissions stay open until shutdown");
    assert_eq!(submit_calls, completed + queue_full + closed);
    assert_eq!(attempts, completed + shed + closed);
    assert_eq!(snapshot.total.completed, completed);
    assert_eq!(snapshot.total.rejected, queue_full);
    let per_replica_completed: u64 = snapshot.per_replica.iter().map(|m| m.completed).sum();
    assert_eq!(per_replica_completed, snapshot.total.completed);

    // Constant memory: retained logs are capped regardless of volume; the
    // free-running pool records no batch composition log at all.
    assert!(snapshot.batch_log.is_empty());
    assert!(snapshot.batch_log.len() <= BATCH_LOG_CAP);
    assert!(snapshot.transitions.len() <= TRANSITION_LOG_CAP * replicas);
    assert!(snapshot.control_events.len() <= CONTROL_LOG_CAP);
    assert!(snapshot.handoffs.is_empty(), "no faults were injected");
}

/// Quick smoke variant that always runs in CI's default test pass: same
/// invariants, 4k requests.
#[test]
fn pool_survives_mmpp_burst_smoke() {
    const REPLICAS: usize = 2;
    let (snapshot, attempts, counters) = run_stress(4_000, 2, REPLICAS, 71);
    assert_eq!(attempts, 4_000);
    assert_invariants(&snapshot, attempts, &counters, REPLICAS);
}

/// The sustained run: 100k MMPP requests through 4 replicas. `#[ignore]`d
/// because it executes real inferences for every accepted request — CI's
/// `pool-stress` job runs it in release mode.
#[test]
#[ignore = "sustained 100k-request stress run; exercised by the pool-stress CI job"]
fn pool_sustains_100k_mmpp_requests_without_leaks() {
    const REPLICAS: usize = 4;
    let (snapshot, attempts, counters) = run_stress(100_000, 4, REPLICAS, 2024);
    assert_eq!(attempts, 100_000);
    assert_invariants(&snapshot, attempts, &counters, REPLICAS);
    // A sustained full-throttle run must actually exercise the pool: work
    // completes on every replica and admission control sheds under burst.
    assert!(snapshot.per_replica.iter().all(|m| m.completed > 0));
    assert!(
        counters.completed.load(Ordering::Relaxed) >= 90_000,
        "with bounded backpressure, at least 90% of the offered load completes"
    );
    assert!(
        counters.queue_full.load(Ordering::Relaxed) > 0,
        "full-throttle producers must hit admission control at least once"
    );
}
