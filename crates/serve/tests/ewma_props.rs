//! Property tests for the pool controller's [`RateEstimator`] — the integer
//! EWMA forecaster behind predictive mode switching and autoscaling.
//!
//! The properties: convergence to the true per-window arrival count,
//! monotone step response (no over/undershoot oscillation on a load step),
//! bit-stability (identical inputs ⇒ `==` states, and a `Copy` snapshot
//! replayed forward matches the original), and O(1) idle-gap fast-forward.

use nbsmt_serve::{RateEstimator, SplitMix64};

const WINDOW: u64 = 1_000_000;

/// Feeds `per_window` evenly spaced arrivals into each of `windows`
/// consecutive windows starting at window index `start_win`.
fn feed_uniform(est: &mut RateEstimator, start_win: u64, windows: u64, per_window: u64) {
    for w in 0..windows {
        for i in 0..per_window {
            est.observe_arrival((start_win + w) * WINDOW + i * (WINDOW / per_window));
        }
    }
}

/// Reads the rate the estimator would forecast at time `t` without
/// disturbing the original: the estimator is `Copy`, so a probe arrival
/// (which rolls every window boundary up to `t`) runs on a throwaway clone.
fn probed_rate(est: &RateEstimator, t: u64) -> u64 {
    let mut probe = *est;
    probe.observe_arrival(t);
    probe.rate_x1024()
}

#[test]
fn converges_to_the_stationary_arrival_count() {
    let mut est = RateEstimator::new(512, WINDOW);
    feed_uniform(&mut est, 0, 64, 8);
    let rate = probed_rate(&est, 64 * WINDOW);
    // Fixed-point: 8 arrivals/window → 8 × 1024. Integer floor may park the
    // EWMA a hair under the target; it must never overshoot.
    assert!(rate <= 8 * 1024, "no overshoot: {rate}");
    assert!(
        rate >= 8 * 1024 - 16,
        "converged within noise floor: {rate}"
    );
}

#[test]
fn alpha_one_tracks_the_last_window_exactly() {
    let mut est = RateEstimator::new(1024, WINDOW);
    feed_uniform(&mut est, 0, 1, 5);
    // α = 1024/1024 forgets all history: one rolled window of 5 arrivals
    // forecasts exactly 5 × 1024.
    assert_eq!(probed_rate(&est, WINDOW), 5 * 1024);
    feed_uniform(&mut est, 1, 1, 11);
    assert_eq!(probed_rate(&est, 2 * WINDOW), 11 * 1024);
}

#[test]
fn step_response_is_monotone_in_both_directions() {
    let mut est = RateEstimator::new(256, WINDOW);
    feed_uniform(&mut est, 0, 32, 2);
    let settled_low = probed_rate(&est, 32 * WINDOW);

    // Step up 2 → 16 arrivals/window: the forecast climbs every window,
    // never past the new level.
    let mut prev = settled_low;
    for w in 0..32 {
        feed_uniform(&mut est, 32 + w, 1, 16);
        let rate = probed_rate(&est, (33 + w) * WINDOW);
        assert!(rate >= prev, "window {w}: {rate} < {prev}");
        assert!(rate <= 16 * 1024, "window {w}: overshoot {rate}");
        prev = rate;
    }
    assert!(prev > 15 * 1024, "settled near the new level: {prev}");

    // Step back down 16 → 2: symmetric monotone decay.
    for w in 0..32 {
        feed_uniform(&mut est, 64 + w, 1, 2);
        let rate = probed_rate(&est, (65 + w) * WINDOW);
        assert!(rate <= prev, "window {w}: {rate} > {prev}");
        prev = rate;
    }
    assert!(prev < 3 * 1024, "settled near the low level: {prev}");
}

#[test]
fn identical_streams_produce_bit_identical_states() {
    let mut rng = SplitMix64::new(2024);
    let mut t = 0u64;
    let stream: Vec<u64> = (0..4096)
        .map(|_| {
            t += rng.next_u64() % (WINDOW / 2);
            t
        })
        .collect();

    let mut a = RateEstimator::new(512, WINDOW);
    let mut b = RateEstimator::new(512, WINDOW);
    let mut snapshot = None;
    for (i, &arrival) in stream.iter().enumerate() {
        a.observe_arrival(arrival);
        b.observe_arrival(arrival);
        assert_eq!(a, b, "divergence at arrival {i}");
        if i == 2048 {
            // A Copy snapshot replayed over the tail must land on the same
            // bits as the estimator that never stopped.
            snapshot = Some(a);
        }
    }
    let mut replay = snapshot.expect("snapshot taken");
    for &arrival in &stream[2049..] {
        replay.observe_arrival(arrival);
    }
    assert_eq!(replay, a);
}

#[test]
fn clamped_constructor_parameters_are_canonical() {
    // α clamps into 1..=1024 and the window floor is 1 ns: out-of-range
    // requests build bit-identical estimators to the clamped values.
    assert_eq!(RateEstimator::new(0, WINDOW), RateEstimator::new(1, WINDOW));
    assert_eq!(
        RateEstimator::new(4096, WINDOW),
        RateEstimator::new(1024, WINDOW)
    );
    assert_eq!(RateEstimator::new(512, 0), RateEstimator::new(512, 1));
}

#[test]
fn idle_gap_decays_to_zero_and_fast_forwards_in_constant_time() {
    let mut est = RateEstimator::new(512, WINDOW);
    feed_uniform(&mut est, 0, 16, 8);
    assert!(probed_rate(&est, 16 * WINDOW) > 0);

    // A long idle gap decays the forecast to zero, one halving per empty
    // window (α = ½), so 64 empty windows are plenty.
    est.observe_arrival(80 * WINDOW);
    assert_eq!(est.rate_x1024(), 0);

    // Once the rate hits zero the estimator fast-forwards idle spans in
    // O(1): an astronomically distant arrival must return immediately (a
    // per-window loop over ~9×10^12 windows would hang the test) and land
    // on a window boundary at or before the arrival.
    let far = u64::MAX / 2;
    est.observe_arrival(far);
    assert_eq!(est.rate_x1024(), 0);
    assert!(est.window_start_ns() <= far);
    assert!(far - est.window_start_ns() < WINDOW);
    assert_eq!((est.window_start_ns() - 80 * WINDOW) % WINDOW, 0);
}
