//! # nbsmt-serve
//!
//! The inference-serving layer of the NB-SMT / SySMT reproduction: it turns
//! calibrated quantized models into long-lived, immutable [`Session`]s and
//! absorbs concurrent request streams through a dynamic micro-batching
//! scheduler with admission control — the piece that moves the repository
//! from offline experiment reruns toward the ROADMAP's "serves heavy
//! traffic" north star.
//!
//! The pipeline is `submit → bounded queue → batcher → session → response`:
//!
//! * [`registry::ModelRegistry`] calibrates registered models once and
//!   compiles cached, `Arc`-shared [`Session`]s per NB-SMT design point
//!   ([`config::SmtConfig`]: dense baseline or 1T/2T/4T SySMT with a sharing
//!   policy). Requests pick their configuration by picking their session.
//! * [`queue::BoundedQueue`] is the admission-control point: `submit` never
//!   blocks and rejects with a typed [`config::SubmitError`] under overload.
//! * The scheduler (threaded [`server::Server`], or the deterministic
//!   virtual-clock [`sim::simulate`]) coalesces queued requests under a
//!   `max_batch`/`max_wait` [`config::BatchPolicy`], executes the batch on an
//!   `ExecContext`, and completes per-request
//!   [`queue::ResponseHandle`]s.
//! * [`metrics::ServeMetrics`] records throughput, a fixed-bucket latency
//!   histogram (p50/p95/p99), the batch-size distribution, queue depth, and
//!   — for pools — per-mode batch counts and mode transitions.
//! * [`pool::ReplicaPool`] shards the whole pipeline: a deterministic router
//!   ([`config::RoutePolicy`]) spreads submissions over N replica workers,
//!   and each replica's [`config::AdaptiveState`] walks a ladder of
//!   [`config::SmtConfig`] design points (dense → 2T → 4T) under queue-depth
//!   or p95 pressure, shedding *accuracy* instead of *requests* under
//!   overload. [`sim::simulate_pool`] is its virtual-clock mirror.
//! * [`faults`] injects seeded, deterministic failure schedules
//!   ([`faults::FaultPlan`]: crashes, stalls, straggler windows, queue
//!   closes) identically into the threaded pool and the simulator, and
//!   pairs them with client-side countermeasures ([`faults::FaultClient`]:
//!   retry with exponential backoff, straggler hedging) — every incident is
//!   a seed, and every seed is a regression test.
//!
//! **Determinism contract.** Model outputs go through the execution layer of
//! `nbsmt-tensor`, so logits are bit-identical for every host thread count
//! and GEMM backend. The simulator additionally takes *time* from an integer
//! [`sim::ServiceModel`] instead of the wall clock, making batch
//! compositions, virtual latencies, and metrics bit-reproducible for a
//! seeded arrival trace — `repro serve` and the scheduler tests run on this
//! mode, the threaded server serves real traffic with the same policy code.
//!
//! ```
//! use nbsmt_serve::prelude::*;
//! use nbsmt_tensor::exec::ExecContext;
//! use nbsmt_workloads::synthnet::quick_synthnet;
//!
//! let trained = quick_synthnet(5).expect("training succeeds");
//! let mut registry = ModelRegistry::new();
//! registry.register_synthnet("synthnet", &trained, 99).unwrap();
//! let session = registry.compile("synthnet", SmtConfig::sysmt_2t()).unwrap();
//!
//! let (inputs, _) = trained.sample_requests(4, 100);
//! let out = session
//!     .infer_batch(&ExecContext::sequential(), &inputs)
//!     .unwrap();
//! assert_eq!(out.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod faults;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod registry;
pub mod server;
pub mod session;
pub mod sim;
pub mod trace;
pub mod traffic;

pub use config::{
    AdaptivePolicy, AdaptiveState, BatchPolicy, ConfigError, ModeTransition, PoolConfig,
    RoutePolicy, SchedulerConfig, ServeError, SmtConfig, SubmitError, BATCH_LOG_CAP,
    CONTROL_LOG_CAP, P2C_SALT, REJECTION_LOG_CAP, RESPONSE_LOG_CAP, TRANSITION_LOG_CAP,
};
pub use control::{
    AutoscaleConfig, ControlConfig, ControlEvent, ControlEventKind, PoolController,
    PredictiveConfig, RateEstimator, StealConfig,
};
pub use faults::{
    FaultClient, FaultClientStats, FaultConfig, FaultEvent, FaultKind, FaultPlan, HandoffRecord,
    HedgePolicy, ReplicaFaults, RetryPolicy,
};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServeMetrics};
pub use pool::{PoolBatchLog, PoolClient, PoolSnapshot, ReplicaPool};
pub use registry::ModelRegistry;
pub use server::{Client, RequestResult, Server};
pub use session::{Inference, Session};
pub use sim::{
    ArrivalProcess, BatchRecord, PoolBatchRecord, PoolSimOutcome, ServiceModel, SimOutcome,
};
pub use trace::{
    layer_intervals, Clock, LayerKernel, TraceEvent, TraceRecorder, TraceSnapshot, TraceStage,
    DEFAULT_TRACE_CAPACITY,
};
pub use traffic::{GeneratedArrival, GeneratedArrivals, SizeModel, SplitMix64, TrafficModel};

/// Convenience re-exports for serving code.
pub mod prelude {
    pub use crate::config::{
        AdaptivePolicy, BatchPolicy, ConfigError, PoolConfig, RoutePolicy, SchedulerConfig,
        ServeError, SmtConfig, SubmitError,
    };
    pub use crate::control::{
        AutoscaleConfig, ControlConfig, ControlEvent, ControlEventKind, PoolController,
        PredictiveConfig, RateEstimator, StealConfig,
    };
    pub use crate::faults::{
        chaos_corpus, FaultClient, FaultConfig, FaultPlan, HedgePolicy, RetryPolicy,
    };
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::pool::{PoolClient, PoolSnapshot, ReplicaPool};
    pub use crate::registry::ModelRegistry;
    pub use crate::server::Server;
    pub use crate::session::{Inference, Session};
    pub use crate::sim::{
        simulate, simulate_pool, simulate_pool_controlled, simulate_pool_controlled_stats,
        simulate_pool_faulted, simulate_pool_stats, simulate_pool_traced, ArrivalProcess,
        PoolSimOutcome, ServiceModel, SimOutcome,
    };
    pub use crate::trace::{Clock, TraceRecorder, TraceSnapshot, TraceStage};
    pub use crate::traffic::{GeneratedArrival, SizeModel, TrafficModel};
}
