//! Seeded, deterministic traffic models for million-request load generation.
//!
//! The simulator's original arrival models — a pre-materialized open-loop
//! trace and the closed loop — stop scaling at the ROADMAP's "millions of
//! users" regime: a 10^7-arrival `Vec<u64>` is 80 MB before the first batch
//! launches. This module provides the lazy alternative: a [`TrafficModel`]
//! is a small integer-parameter description of an arrival process, and
//! [`GeneratedArrivals`] streams its `(time, key)` pairs one at a time in
//! O(1) memory (O(active sessions) for [`TrafficModel::Sessions`]).
//!
//! Determinism is the whole point, so nothing here touches the platform's
//! `libm`: exponential and power draws go through pure-Rust `ln`/`exp`
//! implementations built from IEEE-754 arithmetic only ([`det_ln`],
//! [`det_exp`]), and the stream RNG is splitmix64 — the same finalizer the
//! router's [`crate::config::route_hash`] uses. The same seed therefore
//! yields the same stream on every machine, backend, and thread count.
//!
//! Rates are integer milli-requests-per-second (`mrps`; 1000 mrps = 1
//! request/s) so every model is `Copy + Eq` and round-trips bit-exactly
//! through the bench layer's JSON specs.
//!
//! [`SizeModel`] adds heavy-tailed request *sizes*: a bounded-Pareto
//! multiplier (x1024 fixed point) that is a pure function of `(seed, key)` —
//! structurally independent of the arrival stream, so reseeding arrivals
//! never perturbs sizes and vice versa, and the threaded pool can recompute
//! the identical size from a submitted key in lockstep with the simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Splitmix64: the stream RNG behind every generator in this module. Small,
/// seedable, and identical on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Deterministic natural log for finite `x > 0`, built from IEEE-754
/// `+ - * /` only (no `libm`): mantissa/exponent split by bit twiddling,
/// then the atanh series `ln(m) = 2z(1 + z²/3 + z⁴/5 + …)` with
/// `z = (m-1)/(m+1)`, which converges past f64 precision in 16 terms for
/// `m ∈ [1/√2, √2)`.
pub fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut term = 1.0;
    let mut sum = 0.0;
    for k in 0..16u32 {
        sum += term / (2 * k + 1) as f64;
        term *= z2;
    }
    2.0 * z * sum + e as f64 * std::f64::consts::LN_2
}

/// Deterministic `exp(x)` companion to [`det_ln`]: argument reduction
/// `x = k·ln2 + r` with `|r| ≤ ln2/2`, a 20-term Taylor series for
/// `exp(r)`, and an exact power-of-two scale by exponent-bit construction.
pub fn det_exp(x: f64) -> f64 {
    if x > 700.0 {
        return f64::MAX;
    }
    if x < -700.0 {
        return 0.0;
    }
    let k = (x / std::f64::consts::LN_2).round();
    let r = x - k * std::f64::consts::LN_2;
    let mut term = 1.0;
    let mut sum = 1.0;
    for i in 1..=20u32 {
        term *= r / i as f64;
        sum += term;
    }
    sum * f64::from_bits(((k as i64 + 1023) as u64) << 52)
}

/// Deterministic `x^y` for `x > 0` via `exp(y·ln(x))`.
pub fn det_pow(x: f64, y: f64) -> f64 {
    det_exp(y * det_ln(x))
}

/// One exponential draw with the given mean, via inverse CDF on a
/// [`SplitMix64`] uniform. `1 - u ∈ (0, 1]` so the log argument is never 0.
fn exp_draw(rng: &mut SplitMix64, mean: f64) -> f64 {
    -det_ln(1.0 - rng.next_f64()) * mean
}

/// Nanoseconds of mean inter-arrival gap for an integer
/// milli-requests-per-second rate (1000 mrps = 1 rps = 1e9 ns gap).
fn mean_gap_ns(rate_mrps: u64) -> f64 {
    1e12 / rate_mrps.max(1) as f64
}

/// A seeded, deterministic arrival-process family. All parameters are
/// integers (`Copy + Eq`) so a model embeds directly in
/// [`crate::sim::ArrivalProcess`] and round-trips bit-exactly through JSON
/// run specs. Rates are milli-requests per second of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficModel {
    /// Homogeneous Poisson arrivals at `rate_mrps`.
    Poisson {
        /// Arrival rate [milli-requests/s].
        rate_mrps: u64,
    },
    /// Markov-modulated Poisson: a two-state (calm/burst) continuous-time
    /// Markov chain with exponential sojourns; arrivals are Poisson at the
    /// current state's rate. The classic bursty-traffic model — bursts are
    /// what push replicas up the dense→2T→4T ladder.
    Mmpp {
        /// Arrival rate in the calm state [milli-requests/s].
        calm_mrps: u64,
        /// Arrival rate in the burst state [milli-requests/s].
        burst_mrps: u64,
        /// Mean calm-state sojourn [ns].
        mean_calm_ns: u64,
        /// Mean burst-state sojourn [ns].
        mean_burst_ns: u64,
    },
    /// A diurnal rate envelope: non-homogeneous Poisson whose rate sweeps a
    /// piecewise-linear triangle wave from `trough_mrps` (phase 0) up to
    /// `peak_mrps` (phase ½) and back, with period `period_ns` — one
    /// "day" of virtual time. Generated by thinning at the peak rate.
    Diurnal {
        /// Rate at the envelope's trough [milli-requests/s].
        trough_mrps: u64,
        /// Rate at the envelope's peak [milli-requests/s].
        peak_mrps: u64,
        /// Envelope period [ns].
        period_ns: u64,
    },
    /// Per-user session streams: users arrive Poisson at `user_mrps`, and
    /// each issues `requests_per_user` requests spaced `think_ns` apart.
    /// The emitted key is the **user id**, so hashed routing keeps a
    /// session on one replica (affinity) while other policies see the same
    /// interleaved stream.
    Sessions {
        /// User (session) arrival rate [milli-users/s].
        user_mrps: u64,
        /// Requests each user issues, ≥ 1.
        requests_per_user: u64,
        /// Gap between a user's consecutive requests [ns].
        think_ns: u64,
    },
}

impl TrafficModel {
    /// Rejects zero rates/periods/request counts that would stall the
    /// generator forever, as a human-readable message (the sim layer wraps
    /// it in [`crate::config::ServeError::BadRequest`]).
    pub fn check(&self) -> Result<(), String> {
        match *self {
            TrafficModel::Poisson { rate_mrps: 0 } => Err("poisson rate must be positive".into()),
            TrafficModel::Mmpp {
                calm_mrps,
                burst_mrps,
                mean_calm_ns,
                mean_burst_ns,
            } if calm_mrps == 0 || burst_mrps == 0 || mean_calm_ns == 0 || mean_burst_ns == 0 => {
                Err("mmpp rates and sojourns must be positive".into())
            }
            TrafficModel::Diurnal {
                trough_mrps,
                peak_mrps,
                period_ns,
            } if trough_mrps == 0 || peak_mrps < trough_mrps || period_ns == 0 => {
                Err("diurnal needs 0 < trough <= peak and a positive period".into())
            }
            TrafficModel::Sessions {
                user_mrps,
                requests_per_user,
                ..
            } if user_mrps == 0 || requests_per_user == 0 => {
                Err("sessions need a positive user rate and >= 1 request/user".into())
            }
            _ => Ok(()),
        }
    }

    /// A lazy stream of the first `n` arrivals under this model with the
    /// given seed. O(1) memory (O(active sessions) for
    /// [`TrafficModel::Sessions`]) — 10^7 arrivals never materialize.
    pub fn generate(self, seed: u64, n: u64) -> GeneratedArrivals {
        let mut rng = SplitMix64::new(seed);
        let (state_end, next_user_t) = match self {
            TrafficModel::Mmpp { mean_calm_ns, .. } => {
                (exp_draw(&mut rng, mean_calm_ns as f64), 0.0)
            }
            TrafficModel::Sessions { user_mrps, .. } => {
                (0.0, exp_draw(&mut rng, mean_gap_ns(user_mrps)))
            }
            _ => (0.0, 0.0),
        };
        GeneratedArrivals {
            model: self,
            rng,
            remaining: n,
            next_key: 0,
            t: 0.0,
            state: 0,
            state_end,
            occupancy: [0.0; 2],
            sessions: BinaryHeap::new(),
            next_user_t,
        }
    }
}

/// One generated arrival: a virtual timestamp and the routing key the
/// request should carry (the user id for [`TrafficModel::Sessions`], the
/// request index otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratedArrival {
    /// Arrival time [virtual ns], non-decreasing across the stream.
    pub time_ns: u64,
    /// Router key: feeds [`crate::config::route_hash`] under hashed routing.
    pub key: u64,
}

/// The lazy iterator over a [`TrafficModel`]'s arrival stream. Yields
/// exactly the `n` arrivals requested from [`TrafficModel::generate`], in
/// non-decreasing time order, deterministically per seed.
#[derive(Debug, Clone)]
pub struct GeneratedArrivals {
    model: TrafficModel,
    rng: SplitMix64,
    remaining: u64,
    next_key: u64,
    /// Virtual now, accumulated in f64 (emitted timestamps truncate).
    t: f64,
    /// MMPP state: 0 = calm, 1 = burst.
    state: usize,
    state_end: f64,
    occupancy: [f64; 2],
    /// Active sessions: `Reverse((next_request_ns, user, remaining))`.
    sessions: BinaryHeap<Reverse<(u64, u64, u64)>>,
    next_user_t: f64,
}

impl GeneratedArrivals {
    /// Virtual nanoseconds spent in each MMPP state (calm, burst) up to the
    /// last emitted arrival — the basis of the stationary-distribution
    /// property test. Zero for non-MMPP models.
    pub fn state_occupancy_ns(&self) -> [u64; 2] {
        [self.occupancy[0] as u64, self.occupancy[1] as u64]
    }

    fn next_poisson(&mut self, rate_mrps: u64) -> GeneratedArrival {
        self.t += exp_draw(&mut self.rng, mean_gap_ns(rate_mrps));
        let key = self.next_key;
        self.next_key += 1;
        GeneratedArrival {
            time_ns: self.t as u64,
            key,
        }
    }

    fn next_mmpp(
        &mut self,
        calm_mrps: u64,
        burst_mrps: u64,
        mean_calm_ns: u64,
        mean_burst_ns: u64,
    ) -> GeneratedArrival {
        loop {
            let rate = if self.state == 0 {
                calm_mrps
            } else {
                burst_mrps
            };
            let gap = exp_draw(&mut self.rng, mean_gap_ns(rate));
            if self.t + gap <= self.state_end {
                self.occupancy[self.state] += gap;
                self.t += gap;
                let key = self.next_key;
                self.next_key += 1;
                return GeneratedArrival {
                    time_ns: self.t as u64,
                    key,
                };
            }
            // Crossed the sojourn boundary: advance to it, flip state, draw
            // the next sojourn, and redraw the gap — exponential arrivals
            // are memoryless, so restarting at the boundary is exact.
            self.occupancy[self.state] += self.state_end - self.t;
            self.t = self.state_end;
            self.state ^= 1;
            let mean = if self.state == 0 {
                mean_calm_ns
            } else {
                mean_burst_ns
            };
            self.state_end = self.t + exp_draw(&mut self.rng, mean as f64);
        }
    }

    fn next_diurnal(
        &mut self,
        trough_mrps: u64,
        peak_mrps: u64,
        period_ns: u64,
    ) -> GeneratedArrival {
        let peak = peak_mrps as f64;
        let trough = trough_mrps as f64;
        let period = period_ns as f64;
        loop {
            // Thinning: candidate arrivals at the peak rate, accepted with
            // probability rate(t)/peak under the triangle envelope.
            self.t += exp_draw(&mut self.rng, mean_gap_ns(peak_mrps));
            let phase = (self.t % period) / period;
            let weight = 1.0 - (2.0 * phase - 1.0).abs();
            let rate = trough + (peak - trough) * weight;
            if self.rng.next_f64() * peak <= rate {
                let key = self.next_key;
                self.next_key += 1;
                return GeneratedArrival {
                    time_ns: self.t as u64,
                    key,
                };
            }
        }
    }

    fn next_session(
        &mut self,
        user_mrps: u64,
        requests_per_user: u64,
        think_ns: u64,
    ) -> GeneratedArrival {
        loop {
            // Spawn users lazily: only when the next user would arrive
            // before (or at) every queued session request, so the heap
            // holds active sessions, never the whole population.
            let head = self.sessions.peek().map(|Reverse((t, _, _))| *t);
            let user_due = self.next_user_t as u64;
            if head.is_none_or(|t| user_due <= t) {
                let user = self.next_key;
                self.next_key += 1;
                self.sessions
                    .push(Reverse((user_due, user, requests_per_user)));
                self.next_user_t += exp_draw(&mut self.rng, mean_gap_ns(user_mrps));
                continue;
            }
            let Reverse((time_ns, user, left)) = self.sessions.pop().expect("head checked");
            if left > 1 {
                self.sessions
                    .push(Reverse((time_ns.saturating_add(think_ns), user, left - 1)));
            }
            return GeneratedArrival { time_ns, key: user };
        }
    }
}

impl Iterator for GeneratedArrivals {
    type Item = GeneratedArrival;

    fn next(&mut self) -> Option<GeneratedArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(match self.model {
            TrafficModel::Poisson { rate_mrps } => self.next_poisson(rate_mrps),
            TrafficModel::Mmpp {
                calm_mrps,
                burst_mrps,
                mean_calm_ns,
                mean_burst_ns,
            } => self.next_mmpp(calm_mrps, burst_mrps, mean_calm_ns, mean_burst_ns),
            TrafficModel::Diurnal {
                trough_mrps,
                peak_mrps,
                period_ns,
            } => self.next_diurnal(trough_mrps, peak_mrps, period_ns),
            TrafficModel::Sessions {
                user_mrps,
                requests_per_user,
                think_ns,
            } => self.next_session(user_mrps, requests_per_user, think_ns),
        })
    }
}

/// Heavy-tailed request sizes as an x1024 fixed-point work multiplier. The
/// size is a **pure function of `(seed, key)`** — no stream state — which
/// buys two properties at once: the size stream is structurally independent
/// of the arrival stream (reseeding one never perturbs the other), and the
/// threaded pool recomputes the exact same size from a submitted key, so
/// heterogeneous sizes stay inside the lockstep determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeModel {
    /// Every request is one unit of work (the historical behaviour;
    /// [`crate::sim::ServiceModel`] arithmetic is bit-identical to the
    /// pre-size model).
    Unit,
    /// Bounded Pareto on `[min_x1024, max_x1024]` with shape
    /// `alpha_x1024/1024`, via inverse CDF on a splitmix64 mix of
    /// `(seed, key)`. 1024 = 1.0× the per-request MAC cost.
    BoundedPareto {
        /// Seed of the size stream (independent of the arrival seed).
        seed: u64,
        /// Pareto shape α, x1024 (e.g. 1536 = α 1.5; smaller = heavier tail).
        alpha_x1024: u64,
        /// Smallest multiplier, x1024 (e.g. 1024 = 1.0×), ≥ 1.
        min_x1024: u64,
        /// Largest multiplier, x1024, ≥ `min_x1024`.
        max_x1024: u64,
    },
}

impl SizeModel {
    /// The work multiplier (x1024) for the request with router key `key`.
    pub fn size_x1024(&self, key: u64) -> u64 {
        match *self {
            SizeModel::Unit => 1024,
            SizeModel::BoundedPareto {
                seed,
                alpha_x1024,
                min_x1024,
                max_x1024,
            } => {
                let lo = min_x1024.max(1);
                let hi = max_x1024.max(lo);
                if lo == hi {
                    return lo;
                }
                let mut rng = SplitMix64::new(seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let u = rng.next_f64();
                let alpha = alpha_x1024.max(1) as f64 / 1024.0;
                let (l, h) = (lo as f64, hi as f64);
                // Bounded-Pareto inverse CDF:
                // x = (L^-α − u·(L^-α − H^-α))^(−1/α), clamped to [L, H].
                let la = det_pow(l, -alpha);
                let ha = det_pow(h, -alpha);
                let x = det_pow(la - u * (la - ha), -1.0 / alpha);
                (x as u64).clamp(lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_math_matches_std_libm_closely() {
        // The pure-Rust ln/exp/pow are not required to be bit-identical to
        // the platform libm — only self-consistent and accurate. Check a
        // relative error well past what traffic generation needs.
        for &x in &[1e-9, 0.1, 0.5, 1.0, 1.5, 2.0, 10.0, 1e6, 1e12] {
            assert!(
                (det_ln(x) - x.ln()).abs() <= 1e-12 * x.ln().abs().max(1.0),
                "ln({x})"
            );
        }
        for &x in &[-20.0f64, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0, 40.0] {
            let want: f64 = x.exp();
            assert!((det_exp(x) - want).abs() <= 1e-12 * want, "exp({x})");
        }
        for &(x, y) in &[
            (2.0f64, 10.0f64),
            (1536.0, -1.5),
            (3.0, 0.5),
            (1024.0, -0.25),
        ] {
            let want: f64 = x.powf(y);
            assert!(
                (det_pow(x, y) - want).abs() <= 1e-11 * want.abs(),
                "pow({x},{y})"
            );
        }
    }

    #[test]
    fn streams_are_monotone_deterministic_and_exact_length() {
        let models = [
            TrafficModel::Poisson {
                rate_mrps: 5_000_000,
            },
            TrafficModel::Mmpp {
                calm_mrps: 1_000_000,
                burst_mrps: 20_000_000,
                mean_calm_ns: 4_000_000,
                mean_burst_ns: 1_000_000,
            },
            TrafficModel::Diurnal {
                trough_mrps: 500_000,
                peak_mrps: 8_000_000,
                period_ns: 50_000_000,
            },
            TrafficModel::Sessions {
                user_mrps: 1_000_000,
                requests_per_user: 4,
                think_ns: 150_000,
            },
        ];
        for model in models {
            assert_eq!(model.check(), Ok(()));
            let a: Vec<GeneratedArrival> = model.generate(42, 500).collect();
            let b: Vec<GeneratedArrival> = model.generate(42, 500).collect();
            assert_eq!(a, b, "{model:?} must be deterministic per seed");
            assert_eq!(a.len(), 500);
            assert!(
                a.windows(2).all(|w| w[0].time_ns <= w[1].time_ns),
                "{model:?} stream must be monotone non-decreasing"
            );
            let c: Vec<GeneratedArrival> = model.generate(43, 500).collect();
            assert_ne!(a, c, "{model:?} must vary with the seed");
        }
    }

    #[test]
    fn session_streams_reuse_user_keys() {
        let model = TrafficModel::Sessions {
            user_mrps: 2_000_000,
            requests_per_user: 3,
            think_ns: 100_000,
        };
        let arrivals: Vec<GeneratedArrival> = model.generate(7, 300).collect();
        let mut per_user = std::collections::HashMap::new();
        for a in &arrivals {
            *per_user.entry(a.key).or_insert(0u64) += 1;
        }
        assert!(per_user.values().any(|&n| n > 1), "keys must repeat");
        assert!(per_user.values().all(|&n| n <= 3));
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(TrafficModel::Poisson { rate_mrps: 0 }.check().is_err());
        assert!(TrafficModel::Mmpp {
            calm_mrps: 0,
            burst_mrps: 1,
            mean_calm_ns: 1,
            mean_burst_ns: 1
        }
        .check()
        .is_err());
        assert!(TrafficModel::Diurnal {
            trough_mrps: 5,
            peak_mrps: 4,
            period_ns: 1
        }
        .check()
        .is_err());
        assert!(TrafficModel::Sessions {
            user_mrps: 1,
            requests_per_user: 0,
            think_ns: 0
        }
        .check()
        .is_err());
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_is_pure() {
        let model = SizeModel::BoundedPareto {
            seed: 99,
            alpha_x1024: 1536,
            min_x1024: 1024,
            max_x1024: 16_384,
        };
        let mut seen_above_min = false;
        for key in 0..4096u64 {
            let s = model.size_x1024(key);
            assert!((1024..=16_384).contains(&s), "size {s} out of bounds");
            assert_eq!(s, model.size_x1024(key), "pure function of (seed, key)");
            seen_above_min |= s > 1024;
        }
        assert!(seen_above_min, "the tail must actually spread");
        assert_eq!(SizeModel::Unit.size_x1024(123), 1024);
    }
}
