//! Multi-replica sharded serving: a deterministic router in front of N
//! scheduler workers, each owning its own [`BoundedQueue`], its own
//! [`ExecContext`], and an SLO-aware [`AdaptiveState`] that walks the
//! session ladder (dense → 2T → 4T) under pressure.
//!
//! The pool is the threaded half of the sharded serving layer; the
//! discrete-event half is [`crate::sim::simulate_pool`]. Both drive the same
//! router arithmetic ([`RoutePolicy`], [`crate::config::route_hash`]) and
//! the same adaptive state machine, which yields the **lockstep determinism
//! contract**: when every request is submitted before the workers start (a
//! paused pool resumed after a burst, or equivalently a virtual trace whose
//! arrivals all precede the first launch), batch compositions, executed
//! modes, mode transitions, and logits are bit-identical between the
//! threaded pool and the simulator — for every host thread count and GEMM
//! backend. Wall-clock quantities (latencies, throughput) are the only
//! fields allowed to differ.
//!
//! Routing is decided at submission time from the submission sequence and
//! the per-replica queue depths alone, so a single-threaded submitter drives
//! all three policies deterministically. Under live traffic the same code
//! serves real load: `p95_high_ns` then escalates on observed wall-clock
//! tail latency, which is exactly the SLO-aware behaviour the virtual clock
//! models with virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nbsmt_tensor::exec::{ExecConfig, ExecContext};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_tensor::validate::Validate;

use crate::config::{route_hash, ServeError};
use crate::config::{AdaptiveState, ModeTransition, PoolConfig, RoutePolicy, SubmitError};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::queue::{response_channel, BoundedQueue, ResponseHandle, ResponseSlot};
use crate::server::RequestResult;
use crate::session::Session;

struct PooledRequest {
    key: u64,
    input: Tensor<f32>,
    submitted: Instant,
    slot: ResponseSlot<RequestResult>,
}

/// One launched batch as the threaded pool recorded it (no timestamps —
/// wall-clock times are outside the determinism contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBatchLog {
    /// Replica that executed the batch.
    pub replica: usize,
    /// Ladder rung the batch executed at.
    pub mode: usize,
    /// Request keys coalesced into the batch, in queue order.
    pub keys: Vec<u64>,
    /// Queue depth left behind after the batch was drained.
    pub queue_depth_after: usize,
}

/// Final state of a drained replica pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// Pool-level aggregate (per-replica metrics merged).
    pub total: MetricsSnapshot,
    /// Per-replica metrics over the same window. Admission-control
    /// rejections are attributed to the replica the router picked, matching
    /// the simulator's accounting.
    pub per_replica: Vec<MetricsSnapshot>,
    /// Every adaptive mode switch, grouped by replica in replica order.
    pub transitions: Vec<ModeTransition>,
    /// Per-batch log (replica order, launch order within a replica); only
    /// recorded when the pool was started with recording enabled.
    pub batch_log: Vec<PoolBatchLog>,
}

struct RouterCore {
    policy: RoutePolicy,
    queues: Vec<Arc<BoundedQueue<PooledRequest>>>,
    rr: AtomicU64,
    /// Admission-control rejections per replica, attributed to the replica
    /// the router picked — the same accounting as the simulator's.
    rejected: Vec<AtomicU64>,
}

impl RouterCore {
    fn pick(&self, key: u64) -> usize {
        let n = self.queues.len();
        match self.policy {
            RoutePolicy::RoundRobin => (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % n,
            RoutePolicy::Hashed => (route_hash(key) % n as u64) as usize,
            RoutePolicy::LeastOutstanding => {
                // Shallowest queue wins; ties break to the lowest index.
                let mut best = 0usize;
                let mut best_len = usize::MAX;
                for (i, queue) in self.queues.iter().enumerate() {
                    let len = queue.len();
                    if len < best_len {
                        best = i;
                        best_len = len;
                    }
                }
                best
            }
        }
    }
}

/// Cheap cloneable submission handle onto a [`ReplicaPool`].
#[derive(Clone)]
pub struct PoolClient {
    router: Arc<RouterCore>,
}

impl PoolClient {
    /// Routes and submits one request. `key` identifies the request: it is
    /// the hash input for [`RoutePolicy::Hashed`], and the identity under
    /// which the batch log reports the request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the routed replica's queue is at
    /// capacity (the router does not fail over — a deterministic router
    /// must not let load silently leak across replicas), and
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(
        &self,
        key: u64,
        input: Tensor<f32>,
    ) -> Result<ResponseHandle<RequestResult>, SubmitError> {
        let replica = self.router.pick(key);
        let (slot, handle) = response_channel();
        let queued = PooledRequest {
            key,
            input,
            submitted: Instant::now(),
            slot,
        };
        match self.router.queues[replica].try_push(queued) {
            Ok(()) => Ok(handle),
            Err(e) => {
                if matches!(e, SubmitError::QueueFull { .. }) {
                    self.router.rejected[replica].fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

struct ReplicaOutcome {
    metrics: ServeMetrics,
    transitions: Vec<ModeTransition>,
    log: Vec<PoolBatchLog>,
}

struct Replica {
    queue: Arc<BoundedQueue<PooledRequest>>,
    worker: Option<JoinHandle<ReplicaOutcome>>,
}

/// A running sharded serving instance: router → N replica workers, each
/// executing batches against the shared session ladder at its own adaptive
/// mode.
pub struct ReplicaPool {
    replicas: Vec<Replica>,
    router: Arc<RouterCore>,
    sessions: Arc<Vec<Arc<Session>>>,
    config: PoolConfig,
    exec: ExecConfig,
    record_log: bool,
    started: Instant,
    running: bool,
}

impl ReplicaPool {
    /// Starts a pool over `sessions` (the adaptive ladder, rung 0 first —
    /// typically dense → 2T → 4T; a single-session ladder never switches).
    /// Each replica builds its own [`ExecContext`] from `exec`.
    ///
    /// # Errors
    ///
    /// Rejects an empty ladder as [`ServeError::BadRequest`].
    pub fn start(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
    ) -> Result<ReplicaPool, ServeError> {
        let mut pool = Self::start_paused(sessions, config, exec, false)?;
        pool.resume();
        Ok(pool)
    }

    /// Builds the pool with every queue live but **no workers running**:
    /// submissions accumulate in the per-replica queues until
    /// [`Self::resume`] spawns the workers. This is the lockstep-replay
    /// mode — with the whole trace queued up front, batch formation is a
    /// pure function of queue contents and the run is bit-comparable to
    /// [`crate::sim::simulate_pool`]. `record_log` additionally captures the
    /// per-batch composition log (unbounded memory — test/replay use only).
    ///
    /// # Errors
    ///
    /// Rejects an empty ladder as [`ServeError::BadRequest`] and an invalid
    /// pool or execution configuration as [`ServeError::Config`].
    pub fn start_paused(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
        record_log: bool,
    ) -> Result<ReplicaPool, ServeError> {
        if sessions.is_empty() {
            return Err(ServeError::BadRequest(
                "replica pool needs at least one session in the ladder".into(),
            ));
        }
        config.validate()?;
        exec.validate().map_err(crate::config::ConfigError::from)?;
        let replicas: Vec<Replica> = (0..config.replicas)
            .map(|_| Replica {
                queue: Arc::new(BoundedQueue::new(config.scheduler.queue_capacity)),
                worker: None,
            })
            .collect();
        let router = Arc::new(RouterCore {
            policy: config.route,
            queues: replicas.iter().map(|r| Arc::clone(&r.queue)).collect(),
            rr: AtomicU64::new(0),
            rejected: (0..config.replicas).map(|_| AtomicU64::new(0)).collect(),
        });
        Ok(ReplicaPool {
            replicas,
            router,
            sessions: Arc::new(sessions),
            config,
            exec,
            record_log,
            started: Instant::now(),
            running: false,
        })
    }

    /// Spawns the replica workers (idempotent).
    pub fn resume(&mut self) {
        if self.running {
            return;
        }
        self.running = true;
        for (index, replica) in self.replicas.iter_mut().enumerate() {
            let queue = Arc::clone(&replica.queue);
            let sessions = Arc::clone(&self.sessions);
            let scheduler = self.config.scheduler;
            let adaptive = self.config.adaptive;
            let exec = self.exec;
            let record_log = self.record_log;
            let worker = std::thread::Builder::new()
                .name(format!("nbsmt-pool-{index}"))
                .spawn(move || {
                    let ctx = ExecContext::new(exec);
                    replica_loop(
                        index, &queue, &sessions, &scheduler, adaptive, &ctx, record_log,
                    )
                })
                .expect("spawning a replica worker succeeds");
            replica.worker = Some(worker);
        }
    }

    /// Number of replica workers.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A new submission handle.
    pub fn client(&self) -> PoolClient {
        PoolClient {
            router: Arc::clone(&self.router),
        }
    }

    /// Current per-replica queue depths (approximate under concurrency).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.queue.len()).collect()
    }

    /// Stops accepting work, drains every queue, joins the workers, and
    /// returns the final pool snapshot. A pool shut down while paused
    /// resumes first so queued work still completes.
    pub fn shutdown(mut self) -> PoolSnapshot {
        self.resume();
        for replica in &self.replicas {
            replica.queue.close();
        }
        let elapsed = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut total = ServeMetrics::new();
        let mut per_replica = Vec::new();
        let mut transitions = Vec::new();
        let mut batch_log = Vec::new();
        for (index, replica) in self.replicas.iter_mut().enumerate() {
            let mut outcome = replica
                .worker
                .take()
                .expect("worker present until shutdown")
                .join()
                .expect("replica worker exits cleanly");
            outcome.metrics.rejected += self.router.rejected[index].load(Ordering::Relaxed);
            total.merge(&outcome.metrics);
            per_replica.push(outcome.metrics.snapshot(elapsed));
            transitions.extend(outcome.transitions);
            batch_log.extend(outcome.log);
        }
        PoolSnapshot {
            total: total.snapshot(elapsed),
            per_replica,
            transitions,
            batch_log,
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        for replica in &self.replicas {
            replica.queue.close();
        }
        for replica in &mut self.replicas {
            if let Some(worker) = replica.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

fn replica_loop(
    index: usize,
    queue: &BoundedQueue<PooledRequest>,
    sessions: &[Arc<Session>],
    scheduler: &crate::config::SchedulerConfig,
    adaptive: crate::config::AdaptivePolicy,
    ctx: &ExecContext,
    record_log: bool,
) -> ReplicaOutcome {
    let mut metrics = ServeMetrics::new();
    let mut state = AdaptiveState::new(adaptive, index, sessions.len());
    let mut log = Vec::new();
    let max_batch = scheduler.batch.max_batch;
    let max_wait = Duration::from_nanos(scheduler.batch.max_wait_ns);
    while let Some(first) = queue.pop_blocking() {
        let deadline = first.submitted + max_wait;
        let batch = queue.collect_batch(first, max_batch, deadline);
        let depth_after = queue.len();
        let mode = state.mode();
        metrics.record_batch(batch.len(), depth_after);
        metrics.record_mode_batch(mode);
        if record_log {
            log.push(PoolBatchLog {
                replica: index,
                mode,
                keys: batch.iter().map(|r| r.key).collect(),
                queue_depth_after: depth_after,
            });
        }
        crate::server::execute_batch(&sessions[mode], ctx, batch, &mut metrics);
        // Policy evaluation runs after the batch's latencies landed in the
        // histogram; a switch applies from the next batch on.
        let p95 = metrics.latency.quantile(0.95);
        if state.observe_batch(depth_after, p95).is_some() {
            metrics.record_transition();
        }
    }
    ReplicaOutcome {
        metrics,
        transitions: state.into_transitions(),
        log,
    }
}

impl crate::server::BatchItem for PooledRequest {
    fn input(&self) -> &Tensor<f32> {
        &self.input
    }
    fn submitted(&self) -> Instant {
        self.submitted
    }
    fn into_slot(self) -> ResponseSlot<RequestResult> {
        self.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptivePolicy, BatchPolicy, SchedulerConfig, SmtConfig};
    use crate::registry::ModelRegistry;
    use nbsmt_workloads::synthnet::quick_synthnet;

    fn ladder_fixture() -> (Vec<Arc<Session>>, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(29).expect("training succeeds");
        let mut registry = ModelRegistry::new();
        registry
            .register_synthnet("synthnet", &trained, 600)
            .unwrap();
        let ladder = registry
            .compile_ladder(
                "synthnet",
                &[
                    SmtConfig::Dense,
                    SmtConfig::sysmt_2t(),
                    SmtConfig::sysmt_4t(),
                ],
            )
            .unwrap();
        let (inputs, _) = trained.sample_requests(24, 601);
        (ladder, inputs)
    }

    fn pool_config(replicas: usize, route: RoutePolicy) -> PoolConfig {
        PoolConfig {
            replicas,
            route,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait_ns: 500_000,
                },
                queue_capacity: 64,
            },
            adaptive: AdaptivePolicy::default(),
        }
    }

    #[test]
    fn pool_serves_across_replicas_end_to_end() {
        let (ladder, inputs) = ladder_fixture();
        let pool = ReplicaPool::start(
            ladder,
            pool_config(2, RoutePolicy::RoundRobin),
            ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(pool.replicas(), 2);
        let client = pool.client();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
            .collect();
        for handle in handles {
            let inference = handle.wait().expect("not cancelled").expect("no error");
            assert!(!inference.logits.is_empty());
        }
        let snapshot = pool.shutdown();
        assert_eq!(snapshot.total.completed, inputs.len() as u64);
        assert_eq!(snapshot.per_replica.len(), 2);
        let per_replica_total: u64 = snapshot.per_replica.iter().map(|m| m.completed).sum();
        assert_eq!(per_replica_total, snapshot.total.completed);
        // Round-robin splits 24 single-threaded submissions 12/12.
        assert!(snapshot.per_replica.iter().all(|m| m.completed == 12));
    }

    #[test]
    fn paused_pool_replays_batches_deterministically() {
        let (ladder, inputs) = ladder_fixture();
        let run = || {
            let mut pool = ReplicaPool::start_paused(
                ladder.clone(),
                pool_config(2, RoutePolicy::Hashed),
                ExecConfig::default(),
                true,
            )
            .unwrap();
            let client = pool.client();
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
                .collect();
            pool.resume();
            for handle in handles {
                let _ = handle.wait().expect("completes");
            }
            pool.shutdown()
        };
        let a = run();
        let b = run();
        let key = |s: &PoolSnapshot| {
            (
                s.batch_log.clone(),
                s.transitions.clone(),
                s.total.completed,
                s.total.batches_per_mode.clone(),
            )
        };
        assert_eq!(key(&a), key(&b));
        assert!(!a.batch_log.is_empty());
        // Every batch ran at 4 or fewer requests and modes stay on-ladder.
        for batch in &a.batch_log {
            assert!(batch.keys.len() <= 4);
            assert!(batch.mode < 3);
        }
    }

    #[test]
    fn least_outstanding_balances_and_full_queue_sheds() {
        let (ladder, inputs) = ladder_fixture();
        let config = PoolConfig {
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait_ns: 0,
                },
                queue_capacity: 2,
            },
            ..pool_config(2, RoutePolicy::LeastOutstanding)
        };
        let mut pool =
            ReplicaPool::start_paused(ladder, config, ExecConfig::default(), false).unwrap();
        let client = pool.client();
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        // Paused pool: 2 replicas × capacity 2 admit exactly 4; the rest
        // shed with the typed error.
        for (i, input) in inputs.iter().enumerate() {
            match client.submit(i as u64, input.clone()) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(SubmitError::Closed) => unreachable!("pool is open"),
            }
        }
        assert_eq!(accepted.len(), 4);
        assert_eq!(pool.queue_depths(), vec![2, 2], "LO must balance exactly");
        pool.resume();
        for handle in accepted {
            let _ = handle.wait().expect("accepted requests complete");
        }
        let snapshot = pool.shutdown();
        assert_eq!(snapshot.total.completed, 4);
        assert_eq!(snapshot.total.rejected, rejected);
    }

    #[test]
    fn adaptive_pool_escalates_under_burst() {
        let (ladder, inputs) = ladder_fixture();
        let config = PoolConfig {
            replicas: 1,
            route: RoutePolicy::RoundRobin,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait_ns: 0,
                },
                queue_capacity: 64,
            },
            adaptive: AdaptivePolicy {
                depth_high: 4,
                depth_low: 0,
                p95_high_ns: 0,
                eval_every_batches: 1,
            },
        };
        let mut pool =
            ReplicaPool::start_paused(ladder, config, ExecConfig::default(), true).unwrap();
        let client = pool.client();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
            .collect();
        pool.resume();
        for handle in handles {
            let _ = handle.wait().expect("completes");
        }
        let snapshot = pool.shutdown();
        // 24 queued requests drain in 12 batches of 2; depth stays ≥ 4 for
        // the early batches, so the ladder must have been climbed.
        assert!(
            snapshot.total.mode_transitions > 0,
            "burst must trigger escalation"
        );
        assert!(snapshot.transitions[0].to > snapshot.transitions[0].from);
        assert!(
            snapshot.total.batches_per_mode.len() > 1,
            "batches must have run at more than one rung: {:?}",
            snapshot.total.batches_per_mode
        );
    }

    #[test]
    fn empty_ladder_is_rejected() {
        assert!(matches!(
            ReplicaPool::start(Vec::new(), PoolConfig::default(), ExecConfig::default()),
            Err(ServeError::BadRequest(_))
        ));
    }
}
