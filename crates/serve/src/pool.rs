//! Multi-replica sharded serving: a deterministic router in front of N
//! scheduler workers, each owning its own [`BoundedQueue`], its own
//! [`ExecContext`], and an SLO-aware [`AdaptiveState`] that walks the
//! session ladder (dense → 2T → 4T) under pressure.
//!
//! The pool is the threaded half of the sharded serving layer; the
//! discrete-event half is [`crate::sim::simulate_pool`]. Both drive the same
//! router arithmetic ([`RoutePolicy`], [`crate::config::route_hash`]) and
//! the same adaptive state machine, which yields the **lockstep determinism
//! contract**: when every request is submitted before the workers start (a
//! paused pool resumed after a burst, or equivalently a virtual trace whose
//! arrivals all precede the first launch), batch compositions, executed
//! modes, mode transitions, and logits are bit-identical between the
//! threaded pool and the simulator — for every host thread count and GEMM
//! backend. Wall-clock quantities (latencies, throughput) are the only
//! fields allowed to differ.
//!
//! Routing is decided at submission time from the submission sequence and
//! the per-replica queue depths alone, so a single-threaded submitter drives
//! all three policies deterministically.
//!
//! The pool runs in one of three modes:
//!
//! - **Free-running** ([`ReplicaPool::start`] / [`ReplicaPool::start_paused`]):
//!   each worker drains its own queue on the wall clock. The p95 adaptive
//!   trigger observes real tail latency here, so its *timing* is outside the
//!   lockstep contract (batch composition and routing still replay).
//! - **Lockstep** ([`ReplicaPool::start_lockstep`]): a coordination gate owns
//!   a virtual clock ([`ServiceModel`]) and grants batch launches in exactly
//!   the simulator's event order, while the granted GEMMs still execute on
//!   real threads in parallel. Latencies are recorded in virtual time, so
//!   **both** adaptive triggers — depth *and* p95 — replay bit-identically
//!   against [`crate::sim::simulate_pool_faulted`], as do fault schedules,
//!   crash handoffs, and every quantile of the latency histogram.
//! - **Live-faulted** ([`ReplicaPool::start_with_faults`]): the free-running
//!   loop with a [`FaultPlan`] injected — crashes kill workers for real
//!   (queues drain through the shared handoff rule), stalls sleep, and
//!   stragglers pad service time. This is the mode the availability bench
//!   drives with retrying/hedging clients.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nbsmt_tensor::exec::{ExecConfig, ExecContext};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_tensor::validate::Validate;

use crate::config::ServeError;
use crate::config::{
    AdaptiveState, ModeTransition, PoolConfig, RoutePolicy, SubmitError, BATCH_LOG_CAP,
};
use crate::control::{ControlConfig, ControlEvent, ControlEventKind, PoolController};
use crate::faults::{pick_handoff_target, pick_replica, FaultPlan, HandoffRecord, ReplicaFaults};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::queue::{response_channel, BoundedQueue, ResponseHandle, ResponseSlot};
use crate::server::RequestResult;
use crate::session::Session;
use crate::sim::ServiceModel;
use crate::trace::{layer_intervals, BatchTraceCtx, TraceEvent, TraceRecorder, TraceStage};

struct PooledRequest {
    key: u64,
    input: Tensor<f32>,
    submitted: Instant,
    slot: ResponseSlot<RequestResult>,
}

/// One launched batch as the threaded pool recorded it (no timestamps —
/// wall-clock times are outside the determinism contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBatchLog {
    /// Replica that executed the batch.
    pub replica: usize,
    /// Ladder rung the batch executed at.
    pub mode: usize,
    /// Request keys coalesced into the batch, in queue order.
    pub keys: Vec<u64>,
    /// Queue depth left behind after the batch was drained.
    pub queue_depth_after: usize,
}

/// Final state of a drained replica pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// Pool-level aggregate (per-replica metrics merged).
    pub total: MetricsSnapshot,
    /// Per-replica metrics over the same window. Admission-control
    /// rejections are attributed to the replica the router picked, matching
    /// the simulator's accounting.
    pub per_replica: Vec<MetricsSnapshot>,
    /// Every adaptive mode switch, grouped by replica in replica order.
    pub transitions: Vec<ModeTransition>,
    /// Per-batch log (replica order, launch order within a replica); only
    /// recorded when the pool was started with recording enabled.
    pub batch_log: Vec<PoolBatchLog>,
    /// Every crash handoff decision, in crash order then queue order —
    /// empty without fault injection. Part of the extended lockstep
    /// contract (mirrors [`crate::sim::PoolSimOutcome::handoffs`]).
    pub handoffs: Vec<HandoffRecord>,
    /// Batches executed but *not* retained in `batch_log` because the log
    /// hit [`BATCH_LOG_CAP`] — the log is constant-memory, this counter
    /// closes the accounting (mirrors
    /// [`crate::sim::PoolSimOutcome::dropped_batches`]).
    pub dropped_batches: u64,
    /// Mode transitions applied but not retained past
    /// [`crate::config::TRANSITION_LOG_CAP`], summed over replicas.
    pub dropped_transitions: u64,
    /// Every pool-controller decision in decision order — empty unless the
    /// pool was started with [`ReplicaPool::start_lockstep_controlled`].
    /// Part of the extended lockstep contract (mirrors
    /// [`crate::sim::PoolSimOutcome::control_events`]).
    pub control_events: Vec<ControlEvent>,
    /// Controller decisions applied but not retained past
    /// [`crate::config::CONTROL_LOG_CAP`].
    pub dropped_control_events: u64,
    /// Total live-replica nanoseconds: `replicas × wall elapsed` for
    /// free-running pools, virtual (`replicas × makespan`, or the
    /// controller's event-log integral) in lockstep mode — mirrors
    /// [`crate::sim::PoolSimOutcome::replica_ns`].
    pub replica_ns: u64,
}

struct RouterCore {
    policy: RoutePolicy,
    queues: Vec<Arc<BoundedQueue<PooledRequest>>>,
    rr: AtomicU64,
    /// Admission-control rejections per replica, attributed to the replica
    /// the router picked — the same accounting as the simulator's.
    rejected: Vec<AtomicU64>,
    /// Liveness per replica: cleared by a crashed worker *before* it closes
    /// and drains its queue, so the router never routes into a dying
    /// replica. Always true without fault injection.
    alive: Vec<AtomicBool>,
}

impl RouterCore {
    /// Routes a key among the alive, admitting replicas through the shared
    /// [`pick_replica`] arithmetic (with every replica eligible this is
    /// exactly the fault-free router), or `None` when none is eligible.
    fn pick(&self, key: u64) -> Option<usize> {
        let eligible: Vec<(usize, usize)> = self
            .queues
            .iter()
            .enumerate()
            .filter(|(i, queue)| {
                self.alive[*i].load(Ordering::Acquire) && !queue.is_admissions_closed()
            })
            .map(|(i, queue)| (i, queue.len()))
            .collect();
        // The round-robin counter ticks per routed submission regardless of
        // the eligible-set size — the same clock the simulator advances.
        let tick = if self.policy == RoutePolicy::RoundRobin {
            self.rr.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        pick_replica(self.policy, key, tick, &eligible)
    }
}

/// Cheap cloneable submission handle onto a [`ReplicaPool`].
#[derive(Clone)]
pub struct PoolClient {
    router: Arc<RouterCore>,
}

impl PoolClient {
    /// Routes and submits one request. `key` identifies the request: it is
    /// the hash input for [`RoutePolicy::Hashed`], and the identity under
    /// which the batch log reports the request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the routed replica's queue is at
    /// capacity (the router does not fail over — a deterministic router
    /// must not let load silently leak across replicas), and
    /// [`SubmitError::Closed`] after shutdown began or when every replica
    /// is crashed or has closed admissions (only possible under fault
    /// injection; not counted as an admission-control rejection).
    pub fn submit(
        &self,
        key: u64,
        input: Tensor<f32>,
    ) -> Result<ResponseHandle<RequestResult>, SubmitError> {
        let Some(replica) = self.router.pick(key) else {
            return Err(SubmitError::Closed);
        };
        let (slot, handle) = response_channel();
        let queued = PooledRequest {
            key,
            input,
            submitted: Instant::now(),
            slot,
        };
        match self.router.queues[replica].try_push(queued) {
            Ok(()) => Ok(handle),
            Err(e) => {
                if matches!(e, SubmitError::QueueFull { .. }) {
                    self.router.rejected[replica].fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

struct ReplicaOutcome {
    metrics: ServeMetrics,
    transitions: Vec<ModeTransition>,
    log: Vec<PoolBatchLog>,
    handoffs: Vec<HandoffRecord>,
    dropped_batches: u64,
    dropped_transitions: u64,
}

impl ReplicaOutcome {
    /// The placeholder a lockstep worker returns — all deterministic state
    /// lives in the gate and is pulled from there at shutdown.
    fn empty() -> ReplicaOutcome {
        ReplicaOutcome {
            metrics: ServeMetrics::new(),
            transitions: Vec::new(),
            log: Vec::new(),
            handoffs: Vec::new(),
            dropped_batches: 0,
            dropped_transitions: 0,
        }
    }
}

struct Replica {
    queue: Arc<BoundedQueue<PooledRequest>>,
    worker: Option<JoinHandle<ReplicaOutcome>>,
}

/// How the pool's workers consume their queues (see the module docs).
enum FaultMode {
    /// Free-running wall-clock workers, no fault machinery.
    None,
    /// Free-running workers with a [`FaultPlan`] injected for real.
    Live {
        faults: Vec<ReplicaFaults>,
        service: ServiceModel,
    },
    /// Virtual-clock coordination gate; workers only execute granted GEMMs.
    Lockstep { gate: Arc<LockstepGate> },
}

/// A running sharded serving instance: router → N replica workers, each
/// executing batches against the shared session ladder at its own adaptive
/// mode.
pub struct ReplicaPool {
    replicas: Vec<Replica>,
    router: Arc<RouterCore>,
    sessions: Arc<Vec<Arc<Session>>>,
    config: PoolConfig,
    exec: ExecConfig,
    record_log: bool,
    mode: FaultMode,
    recorder: Option<Arc<TraceRecorder>>,
    started: Instant,
    running: bool,
}

impl ReplicaPool {
    /// Starts a pool over `sessions` (the adaptive ladder, rung 0 first —
    /// typically dense → 2T → 4T; a single-session ladder never switches).
    /// Each replica builds its own [`ExecContext`] from `exec`.
    ///
    /// # Errors
    ///
    /// Rejects an empty ladder as [`ServeError::BadRequest`].
    pub fn start(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
    ) -> Result<ReplicaPool, ServeError> {
        let mut pool = Self::start_paused(sessions, config, exec, false)?;
        pool.resume();
        Ok(pool)
    }

    /// Builds the pool with every queue live but **no workers running**:
    /// submissions accumulate in the per-replica queues until
    /// [`Self::resume`] spawns the workers. This is the lockstep-replay
    /// mode — with the whole trace queued up front, batch formation is a
    /// pure function of queue contents and the run is bit-comparable to
    /// [`crate::sim::simulate_pool`]. `record_log` additionally captures the
    /// per-batch composition log (unbounded memory — test/replay use only).
    ///
    /// # Errors
    ///
    /// Rejects an empty ladder as [`ServeError::BadRequest`] and an invalid
    /// pool or execution configuration as [`ServeError::Config`].
    pub fn start_paused(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
        record_log: bool,
    ) -> Result<ReplicaPool, ServeError> {
        if sessions.is_empty() {
            return Err(ServeError::BadRequest(
                "replica pool needs at least one session in the ladder".into(),
            ));
        }
        config.validate()?;
        exec.validate().map_err(crate::config::ConfigError::from)?;
        let replicas: Vec<Replica> = (0..config.replicas)
            .map(|_| Replica {
                queue: Arc::new(BoundedQueue::new(config.scheduler.queue_capacity)),
                worker: None,
            })
            .collect();
        let router = Arc::new(RouterCore {
            policy: config.route,
            queues: replicas.iter().map(|r| Arc::clone(&r.queue)).collect(),
            rr: AtomicU64::new(0),
            rejected: (0..config.replicas).map(|_| AtomicU64::new(0)).collect(),
            alive: (0..config.replicas)
                .map(|_| AtomicBool::new(true))
                .collect(),
        });
        Ok(ReplicaPool {
            replicas,
            router,
            sessions: Arc::new(sessions),
            config,
            exec,
            record_log,
            mode: FaultMode::None,
            recorder: None,
            started: Instant::now(),
            running: false,
        })
    }

    /// Attaches a shared [`TraceRecorder`] — call between a paused start and
    /// [`Self::resume`]. Every executed batch then leaves the full span
    /// chain (submit, queue-wait, batch, per-layer kernels, service,
    /// respond). In lockstep mode the recorder must hold a virtual
    /// [`crate::trace::Clock`] and the emitted trace is byte-identical to
    /// [`crate::sim::simulate_pool_traced`] on the same burst; free-running
    /// pools emit the same schema on the recorder's wall clock.
    pub fn set_recorder(&mut self, recorder: Arc<TraceRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Starts a free-running pool with `plan` injected for real: crashes
    /// kill workers (their queues drain through the shared handoff rule
    /// onto survivors, or shed as cancellations), stalls sleep on the wall
    /// clock, and straggle windows pad each batch with the [`ServiceModel`]
    /// cost the factor adds. This is the availability bench's pool; for
    /// bit-exact replay against the simulator use [`Self::start_lockstep`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::start`].
    pub fn start_with_faults(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
        plan: &FaultPlan,
        service: ServiceModel,
    ) -> Result<ReplicaPool, ServeError> {
        let mut pool = Self::start_paused(sessions, config, exec, false)?;
        pool.mode = FaultMode::Live {
            faults: (0..pool.replicas.len())
                .map(|r| plan.for_replica(r))
                .collect(),
            service,
        };
        pool.resume();
        Ok(pool)
    }

    /// Builds the pool in **lockstep** mode, paused: submissions accumulate
    /// in the real queues; [`Self::resume`] then hands the whole burst to a
    /// virtual-clock coordination gate that grants batch launches in the
    /// simulator's exact event order (GEMMs still run on real threads, in
    /// parallel, outside the gate's lock). Latencies enter the histograms
    /// in virtual [`ServiceModel`] time, so depth *and* p95 adaptive
    /// triggers, straggle factors, stalls, crash handoffs, and every
    /// latency quantile replay bit-identically against
    /// [`crate::sim::simulate_pool_faulted`] with the same `plan`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::start_paused`].
    pub fn start_lockstep(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
        record_log: bool,
        service: ServiceModel,
        plan: &FaultPlan,
    ) -> Result<ReplicaPool, ServeError> {
        let mut pool = Self::start_paused(sessions, config, exec, record_log)?;
        let n = pool.replicas.len();
        let ladder = pool.sessions.len();
        let gate = LockstepGate {
            state: Mutex::new(GateState {
                queues: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
                pending: std::collections::VecDeque::new(),
                rr: 0,
                t_free: vec![0; n],
                batches: vec![0; n],
                crashed: vec![false; n],
                closed: vec![false; n],
                adaptive: (0..n)
                    .map(|r| AdaptiveState::new(pool.config.adaptive, r, ladder))
                    .collect(),
                faults: (0..n).map(|r| plan.for_replica(r)).collect(),
                metrics: (0..n).map(|_| ServeMetrics::new()).collect(),
                log: Vec::new(),
                dropped_batches: 0,
                handoffs: Vec::new(),
                recorder: None,
                controller: None,
            }),
            cv: Condvar::new(),
            max_batch: pool.config.scheduler.batch.max_batch,
            max_wait_ns: pool.config.scheduler.batch.max_wait_ns,
            capacity: pool.config.scheduler.queue_capacity,
            route: pool.config.route,
            service,
            record_log,
        };
        pool.mode = FaultMode::Lockstep {
            gate: Arc::new(gate),
        };
        Ok(pool)
    }

    /// [`Self::start_lockstep`] plus a pool-level [`PoolController`]: the
    /// gate calls the controller at the simulator's exact lifecycle points
    /// (arrival admission, batch launch, post-batch steal check), so
    /// autoscale events, steal events, and predictive mode transitions
    /// replay bit-identically against
    /// [`crate::sim::simulate_pool_controlled`] on the same timed trace.
    ///
    /// # Errors
    ///
    /// Same as [`Self::start_lockstep`], plus [`ServeError::Config`] when
    /// `control` is invalid or its replica bounds exceed `config.replicas`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_lockstep_controlled(
        sessions: Vec<Arc<Session>>,
        config: PoolConfig,
        exec: ExecConfig,
        record_log: bool,
        service: ServiceModel,
        plan: &FaultPlan,
        control: ControlConfig,
    ) -> Result<ReplicaPool, ServeError> {
        let pool = Self::start_lockstep(sessions, config, exec, record_log, service, plan)?;
        let rung_work_ns: Vec<u64> = pool.sessions.iter().map(|s| service.single_ns(s)).collect();
        let controller = PoolController::new(control, rung_work_ns, pool.replicas.len())?;
        let FaultMode::Lockstep { gate } = &pool.mode else {
            unreachable!("start_lockstep always yields a lockstep pool");
        };
        gate.state.lock().expect("gate lock").controller = Some(controller);
        Ok(pool)
    }

    /// Spawns the replica workers (idempotent). In lockstep mode this is
    /// the burst boundary: every queued submission is handed to the gate
    /// (submission order preserved, virtual arrival time 0) and the real
    /// queues close, so late submissions get [`SubmitError::Closed`] —
    /// exactly the "all requests precede the first launch" precondition of
    /// the determinism contract.
    pub fn resume(&mut self) {
        if self.running {
            return;
        }
        self.running = true;
        enum Spawn {
            Normal,
            Live(Vec<ReplicaFaults>, ServiceModel),
            Lockstep(Arc<LockstepGate>),
        }
        let plan = match &self.mode {
            FaultMode::None => Spawn::Normal,
            FaultMode::Live { faults, service } => Spawn::Live(faults.clone(), *service),
            FaultMode::Lockstep { gate } => Spawn::Lockstep(Arc::clone(gate)),
        };
        if let Spawn::Lockstep(gate) = &plan {
            let mut state = gate.state.lock().expect("gate lock");
            state.recorder = self.recorder.clone();
            for (index, replica) in self.replicas.iter().enumerate() {
                for req in replica.queue.drain_up_to(usize::MAX) {
                    // The burst arrives at virtual t = 0 on the replica the
                    // router already picked — the same submit instant the
                    // simulator records for an all-at-zero arrival trace.
                    if let Some(rec) = &self.recorder {
                        rec.record(
                            TraceEvent::new(TraceStage::Submit, index, 0, 0).request(req.key),
                        );
                    }
                    state.queues[index].push_back(GateRequest {
                        req,
                        ready_v: 0,
                        submit_v: 0,
                    });
                }
                replica.queue.close();
            }
        }
        for (index, replica) in self.replicas.iter_mut().enumerate() {
            let queue = Arc::clone(&replica.queue);
            let sessions = Arc::clone(&self.sessions);
            let scheduler = self.config.scheduler;
            let adaptive = self.config.adaptive;
            let exec = self.exec;
            let record_log = self.record_log;
            let router = Arc::clone(&self.router);
            let recorder = self.recorder.clone();
            let worker = match &plan {
                Spawn::Normal => std::thread::Builder::new()
                    .name(format!("nbsmt-pool-{index}"))
                    .spawn(move || {
                        let ctx = ExecContext::new(exec);
                        replica_loop(
                            index,
                            &queue,
                            &sessions,
                            &scheduler,
                            adaptive,
                            &ctx,
                            record_log,
                            recorder.as_deref(),
                        )
                    }),
                Spawn::Live(faults, service) => {
                    let faults = faults[index].clone();
                    let service = *service;
                    std::thread::Builder::new()
                        .name(format!("nbsmt-pool-{index}"))
                        .spawn(move || {
                            let ctx = ExecContext::new(exec);
                            replica_loop_faulted(
                                index,
                                &queue,
                                &sessions,
                                &scheduler,
                                adaptive,
                                &ctx,
                                record_log,
                                &router,
                                &faults,
                                service,
                                recorder.as_deref(),
                            )
                        })
                }
                Spawn::Lockstep(gate) => {
                    let gate = Arc::clone(gate);
                    std::thread::Builder::new()
                        .name(format!("nbsmt-pool-{index}"))
                        .spawn(move || {
                            let ctx = ExecContext::new(exec);
                            lockstep_loop(index, &gate, &sessions, &ctx, recorder.as_deref())
                        })
                }
            }
            .expect("spawning a replica worker succeeds");
            replica.worker = Some(worker);
        }
    }

    /// Number of replica workers.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A new submission handle.
    pub fn client(&self) -> PoolClient {
        PoolClient {
            router: Arc::clone(&self.router),
        }
    }

    /// Queues a **virtual-time** submission on a paused lockstep pool: the
    /// request arrives at virtual `at_ns` and is routed *inside* the gate at
    /// that instant — admission interleaves with launches exactly as the
    /// simulator's event loop does, so a timed trace (e.g. a seeded MMPP
    /// burst from [`crate::traffic::TrafficModel`]) replays bit-identically
    /// against [`crate::sim::simulate_pool`] with the matching
    /// [`crate::sim::ArrivalProcess`]. `key` is the router/affinity key and
    /// the [`crate::traffic::SizeModel`] input, so per-request sizes are
    /// recomputed identically on both sides.
    ///
    /// Submissions must be issued in non-decreasing `at_ns` order, before
    /// [`Self::resume`]. A request shed by gate admission control cancels
    /// its handle (the wait returns `None`), mirroring the simulator's
    /// rejected-id accounting.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the pool is not a paused lockstep pool
    /// or `at_ns` goes backwards — timed replay is strictly a pre-resume,
    /// ascending-order protocol.
    pub fn submit_virtual(
        &self,
        at_ns: u64,
        key: u64,
        input: Tensor<f32>,
    ) -> Result<ResponseHandle<RequestResult>, SubmitError> {
        let FaultMode::Lockstep { gate } = &self.mode else {
            return Err(SubmitError::Closed);
        };
        if self.running {
            return Err(SubmitError::Closed);
        }
        let mut state = gate.state.lock().expect("gate lock");
        if state.pending.back().is_some_and(|p| p.at_ns > at_ns) {
            return Err(SubmitError::Closed);
        }
        let (slot, handle) = response_channel();
        state.pending.push_back(PendingSubmission {
            at_ns,
            req: PooledRequest {
                key,
                input,
                submitted: Instant::now(),
                slot,
            },
        });
        Ok(handle)
    }

    /// Current per-replica queue depths (approximate under concurrency).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.queue.len()).collect()
    }

    /// Stops accepting work, drains every queue, joins the workers, and
    /// returns the final pool snapshot. A pool shut down while paused
    /// resumes first so queued work still completes.
    pub fn shutdown(mut self) -> PoolSnapshot {
        self.resume();
        for replica in &self.replicas {
            replica.queue.close();
        }
        let elapsed = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut total = ServeMetrics::new();
        let mut per_replica = Vec::new();
        let mut transitions = Vec::new();
        let mut batch_log = Vec::new();
        let mut handoffs = Vec::new();
        let mut dropped_batches = 0u64;
        let mut dropped_transitions = 0u64;
        let mut control_events = Vec::new();
        let mut dropped_control_events = 0u64;
        let mut replica_ns = (self.replicas.len() as u64).saturating_mul(elapsed);
        let mut outcomes = Vec::new();
        for replica in self.replicas.iter_mut() {
            outcomes.push(
                replica
                    .worker
                    .take()
                    .expect("worker present until shutdown")
                    .join()
                    .expect("replica worker exits cleanly"),
            );
        }
        if let FaultMode::Lockstep { gate } = &self.mode {
            // The deterministic state lives in the gate, not the worker
            // outcomes (which are empty placeholders in lockstep mode).
            let mut state = gate.state.lock().expect("gate lock");
            outcomes = state
                .metrics
                .drain(..)
                .map(|metrics| ReplicaOutcome {
                    metrics,
                    transitions: Vec::new(),
                    log: Vec::new(),
                    handoffs: Vec::new(),
                    dropped_batches: 0,
                    dropped_transitions: 0,
                })
                .collect();
            for adaptive in state.adaptive.drain(..) {
                dropped_transitions += adaptive.dropped_transitions();
                transitions.extend(adaptive.into_transitions());
            }
            batch_log = std::mem::take(&mut state.log);
            dropped_batches += state.dropped_batches;
            handoffs = std::mem::take(&mut state.handoffs);
            // Lockstep accounting is virtual: replica-seconds integrate over
            // the virtual makespan (max finish time), exactly as the
            // simulator's outcome does — the controller refines that with
            // its scale-event log.
            let makespan = state.t_free.iter().copied().max().unwrap_or(0);
            match state.controller.take() {
                Some(mut ctrl) => {
                    replica_ns = ctrl.finalize_replica_ns(makespan);
                    let (events, dropped) = ctrl.into_events();
                    control_events = events;
                    dropped_control_events = dropped;
                }
                None => {
                    replica_ns = (self.replicas.len() as u64).saturating_mul(makespan);
                }
            }
        }
        for (index, mut outcome) in outcomes.into_iter().enumerate() {
            outcome.metrics.rejected += self.router.rejected[index].load(Ordering::Relaxed);
            total.merge(&outcome.metrics);
            per_replica.push(outcome.metrics.snapshot(elapsed));
            transitions.extend(outcome.transitions);
            batch_log.extend(outcome.log);
            handoffs.extend(outcome.handoffs);
            dropped_batches += outcome.dropped_batches;
            dropped_transitions += outcome.dropped_transitions;
        }
        PoolSnapshot {
            total: total.snapshot(elapsed),
            per_replica,
            transitions,
            batch_log,
            handoffs,
            dropped_batches,
            dropped_transitions,
            control_events,
            dropped_control_events,
            replica_ns,
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        for replica in &self.replicas {
            replica.queue.close();
        }
        for replica in &mut self.replicas {
            if let Some(worker) = replica.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_loop(
    index: usize,
    queue: &BoundedQueue<PooledRequest>,
    sessions: &[Arc<Session>],
    scheduler: &crate::config::SchedulerConfig,
    adaptive: crate::config::AdaptivePolicy,
    ctx: &ExecContext,
    record_log: bool,
    recorder: Option<&TraceRecorder>,
) -> ReplicaOutcome {
    let mut metrics = ServeMetrics::new();
    let mut state = AdaptiveState::new(adaptive, index, sessions.len());
    let mut log = Vec::new();
    let mut dropped_batches = 0u64;
    let mut batch_index = 0u64;
    let max_batch = scheduler.batch.max_batch;
    let max_wait = Duration::from_nanos(scheduler.batch.max_wait_ns);
    while let Some(first) = queue.pop_blocking() {
        let deadline = first.submitted + max_wait;
        let batch = queue.collect_batch(first, max_batch, deadline);
        let depth_after = queue.len();
        let mode = state.mode();
        metrics.record_batch(batch.len(), depth_after);
        metrics.record_mode_batch(mode);
        batch_index += 1;
        if record_log {
            if log.len() < BATCH_LOG_CAP {
                log.push(PoolBatchLog {
                    replica: index,
                    mode,
                    keys: batch.iter().map(|r| r.key).collect(),
                    queue_depth_after: depth_after,
                });
            } else {
                dropped_batches += 1;
            }
        }
        let trace = recorder.map(|rec| BatchTraceCtx {
            recorder: rec,
            replica: index,
            batch_index,
            mode,
        });
        crate::server::execute_batch(&sessions[mode], ctx, batch, &mut metrics, trace.as_ref());
        // Policy evaluation runs after the batch's latencies landed in the
        // histogram; a switch applies from the next batch on.
        let p95 = metrics.latency.quantile(0.95);
        if state.observe_batch(depth_after, p95).is_some() {
            metrics.record_transition();
        }
    }
    ReplicaOutcome {
        metrics,
        dropped_transitions: state.dropped_transitions(),
        transitions: state.into_transitions(),
        log,
        handoffs: Vec::new(),
        dropped_batches,
    }
}

/// The free-running worker loop with a fault schedule injected for real:
/// identical to [`replica_loop`] batch-for-batch, plus the replica-local
/// 1-based batch clock the [`ReplicaFaults`] cursor consumes. Straggle
/// windows sleep out the extra service time the factor implies, stalls
/// sleep, a queue close half-closes admissions (queued work still drains),
/// and a crash kills the worker: it un-registers from the router *first*,
/// closes its queue, then drains and re-routes every orphan through the
/// shared [`pick_handoff_target`] rule — or sheds it (dropping the slot
/// cancels the request, so no client ever hangs on a dead replica).
#[allow(clippy::too_many_arguments)]
fn replica_loop_faulted(
    index: usize,
    queue: &BoundedQueue<PooledRequest>,
    sessions: &[Arc<Session>],
    scheduler: &crate::config::SchedulerConfig,
    adaptive: crate::config::AdaptivePolicy,
    ctx: &ExecContext,
    record_log: bool,
    router: &RouterCore,
    faults: &ReplicaFaults,
    service: ServiceModel,
    recorder: Option<&TraceRecorder>,
) -> ReplicaOutcome {
    let mut metrics = ServeMetrics::new();
    let mut state = AdaptiveState::new(adaptive, index, sessions.len());
    let mut log = Vec::new();
    let mut dropped_batches = 0u64;
    let mut handoffs = Vec::new();
    let mut batch_index = 0u64;
    let max_batch = scheduler.batch.max_batch;
    let max_wait = Duration::from_nanos(scheduler.batch.max_wait_ns);
    while let Some(first) = queue.pop_blocking() {
        batch_index += 1;
        let deadline = first.submitted + max_wait;
        let batch = queue.collect_batch(first, max_batch, deadline);
        let depth_after = queue.len();
        let mode = state.mode();
        let batch_len = batch.len();
        let batch_keys: Vec<u64> = batch.iter().map(|r| r.key).collect();
        metrics.record_batch(batch_len, depth_after);
        metrics.record_mode_batch(mode);
        if record_log {
            if log.len() < BATCH_LOG_CAP {
                log.push(PoolBatchLog {
                    replica: index,
                    mode,
                    keys: batch.iter().map(|r| r.key).collect(),
                    queue_depth_after: depth_after,
                });
            } else {
                dropped_batches += 1;
            }
        }
        let trace = recorder.map(|rec| BatchTraceCtx {
            recorder: rec,
            replica: index,
            batch_index,
            mode,
        });
        crate::server::execute_batch(&sessions[mode], ctx, batch, &mut metrics, trace.as_ref());
        let factor = faults.service_factor_x1024(batch_index);
        if factor > 1024 {
            // The straggler pads the batch with the *extra* time the factor
            // implies over the service model's size-aware nominal cost.
            let extra = (service.batch_ns(&sessions[mode], batch_keys.iter().copied()) as u128
                * (factor - 1024) as u128
                / 1024)
                .min(u128::from(u64::MAX)) as u64;
            std::thread::sleep(Duration::from_nanos(extra));
        }
        let p95 = metrics.latency.quantile(0.95);
        if state.observe_batch(depth_after, p95).is_some() {
            metrics.record_transition();
        }
        let post = faults.after_batch(batch_index);
        if post.stall_ns > 0 {
            metrics.record_stall();
            std::thread::sleep(Duration::from_nanos(post.stall_ns));
        }
        if post.close_queue {
            queue.close_admissions();
        }
        if post.crashed {
            // Order matters: leave the routing set before closing, so no
            // submission races into a queue about to drain.
            router.alive[index].store(false, Ordering::Release);
            queue.close_admissions();
            metrics.record_crash();
            let orphans = queue.drain_up_to(usize::MAX);
            let mut cursor = (index + 1) % router.queues.len();
            for orphan in orphans {
                let states: Vec<(bool, usize)> = router
                    .queues
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        (
                            router.alive[i].load(Ordering::Acquire) && !q.is_admissions_closed(),
                            q.len(),
                        )
                    })
                    .collect();
                let key = orphan.key;
                let target = pick_handoff_target(index, &mut cursor, &states, queue.capacity());
                let to_replica = match target {
                    Some(t) => {
                        if router.queues[t].try_push(orphan).is_ok() {
                            metrics.record_handoff();
                            Some(t)
                        } else {
                            // Raced to full/closed: the drop cancels it.
                            metrics.record_handoff_shed();
                            None
                        }
                    }
                    None => {
                        metrics.record_handoff_shed();
                        None
                    }
                };
                handoffs.push(HandoffRecord {
                    from_replica: index,
                    at_batch: batch_index,
                    key,
                    to_replica,
                });
            }
            break;
        }
    }
    ReplicaOutcome {
        metrics,
        dropped_transitions: state.dropped_transitions(),
        transitions: state.into_transitions(),
        log,
        handoffs,
        dropped_batches,
    }
}

/// One request as the lockstep gate holds it: virtual arrival/ready times
/// replace the wall-clock `submitted` instant (a burst submits everything
/// at virtual t = 0; a crash handoff re-readies the request at the crash
/// instant while its latency stays anchored at submission).
struct GateRequest {
    req: PooledRequest,
    ready_v: u64,
    submit_v: u64,
}

/// A virtual-time submission waiting to be routed by the lockstep gate —
/// the threaded counterpart of the simulator's pending-arrival queue.
struct PendingSubmission {
    at_ns: u64,
    req: PooledRequest,
}

/// All deterministic pool state in lockstep mode, owned by one mutex so a
/// launch grant commits atomically in virtual-time order.
struct GateState {
    queues: Vec<std::collections::VecDeque<GateRequest>>,
    /// Timed arrivals from [`ReplicaPool::submit_virtual`], ascending by
    /// `at_ns`; routed inside the gate at their virtual arrival instant
    /// (admission precedes any launch at or after that instant, exactly the
    /// simulator's event interleaving).
    pending: std::collections::VecDeque<PendingSubmission>,
    /// Round-robin tick for gate-side routing — the virtual twin of
    /// [`RouterCore`]'s counter.
    rr: u64,
    t_free: Vec<u64>,
    batches: Vec<u64>,
    crashed: Vec<bool>,
    closed: Vec<bool>,
    adaptive: Vec<AdaptiveState>,
    faults: Vec<ReplicaFaults>,
    metrics: Vec<ServeMetrics>,
    log: Vec<PoolBatchLog>,
    dropped_batches: u64,
    handoffs: Vec<HandoffRecord>,
    recorder: Option<Arc<TraceRecorder>>,
    /// Pool-level controller (autoscaling, stealing, predictive mode) —
    /// present only for [`ReplicaPool::start_lockstep_controlled`], hooked
    /// at the same lifecycle points as the simulator's.
    controller: Option<PoolController>,
}

/// Everything a lockstep worker needs after its batch was committed: the
/// drained requests, the rung to execute at, and the virtual-time window the
/// gate assigned (so the worker can emit kernel spans inside it).
struct GrantedBatch {
    batch: Vec<GateRequest>,
    mode: usize,
    batch_index: u64,
    launch: u64,
    service_ns: u64,
}

/// The virtual-clock coordinator of [`ReplicaPool::start_lockstep`]: grants
/// batch launches in exactly the discrete-event simulator's order. A worker
/// asks the gate for its next batch; the gate blocks it until its replica
/// owns the *earliest* launchable batch pool-wide, then commits the batch
/// (drain, metrics with virtual latencies, adaptive evaluation, post-batch
/// fault effects, crash handoffs) under the lock and releases the worker to
/// run the GEMM outside it — so determinism costs no parallelism.
struct LockstepGate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_batch: usize,
    max_wait_ns: u64,
    capacity: usize,
    route: RoutePolicy,
    service: ServiceModel,
    record_log: bool,
}

impl LockstepGate {
    /// Blocks until replica `r` owns the earliest launch (ties break to the
    /// lowest replica index, as in the simulator), commits it, and returns
    /// the granted batch and its ladder rung — or `None` when `r` has
    /// crashed or the pool has fully drained.
    fn acquire(&self, r: usize, sessions: &[Arc<Session>]) -> Option<GrantedBatch> {
        let mut state = self.state.lock().expect("gate lock");
        loop {
            if state.crashed[r] {
                return None;
            }
            if state.queues.iter().all(|q| q.is_empty()) && state.pending.is_empty() {
                // Fully drained: release every parked worker so the pool
                // shuts down instead of deadlocking on the last notify.
                self.cv.notify_all();
                return None;
            }
            // Earliest launch any live replica could perform — the exact
            // arithmetic of the simulator's next-launch scan.
            let mut best: Option<(u64, usize)> = None;
            for i in 0..state.queues.len() {
                if state.crashed[i] || state.queues[i].is_empty() {
                    continue;
                }
                let launch = if state.queues[i].len() >= self.max_batch {
                    state.t_free[i].max(state.queues[i][self.max_batch - 1].ready_v)
                } else {
                    state.t_free[i].max(state.queues[i][0].ready_v.saturating_add(self.max_wait_ns))
                };
                if best.is_none_or(|(b, _)| launch < b) {
                    best = Some((launch, i));
                }
            }
            // Timed arrivals at or before that launch are routed and
            // admitted first — the simulator's exact event interleaving,
            // with the same [`pick_replica`] arithmetic over the gate's
            // virtual queue depths.
            if let Some(front_t) = state.pending.front().map(|p| p.at_ns) {
                if best.is_none_or(|(launch, _)| front_t <= launch) {
                    let sub = state.pending.pop_front().expect("front checked");
                    // The controller observes every admitted arrival before
                    // routing — the simulator's exact hook point — and its
                    // decisions (scale up/down, predictive shifts) apply to
                    // this very arrival's eligible set.
                    let (events, live_after) = match state.controller.as_mut() {
                        Some(ctrl) => {
                            let events = ctrl.on_arrival(sub.at_ns);
                            (events, ctrl.live())
                        }
                        None => (Vec::new(), 0),
                    };
                    for event in events {
                        gate_apply_scale_event(&mut state, event, live_after, self.capacity);
                    }
                    let live = state
                        .controller
                        .as_ref()
                        .map_or(state.queues.len(), PoolController::live);
                    let eligible: Vec<(usize, usize)> = (0..state.queues.len())
                        .filter(|&i| i < live && !state.crashed[i] && !state.closed[i])
                        .map(|i| (i, state.queues[i].len()))
                        .collect();
                    let tick = state.rr;
                    if self.route == RoutePolicy::RoundRobin {
                        state.rr += 1;
                    }
                    match pick_replica(self.route, sub.req.key, tick, &eligible) {
                        Some(target) => {
                            if state.queues[target].len() < self.capacity {
                                if let Some(rec) = state.recorder.clone() {
                                    rec.record(
                                        TraceEvent::new(TraceStage::Submit, target, sub.at_ns, 0)
                                            .request(sub.req.key),
                                    );
                                }
                                state.queues[target].push_back(GateRequest {
                                    req: sub.req,
                                    ready_v: sub.at_ns,
                                    submit_v: sub.at_ns,
                                });
                            } else {
                                // Shed: dropping the slot cancels the
                                // client's handle, mirroring the
                                // simulator's rejected-id accounting.
                                state.metrics[target].record_rejected();
                            }
                        }
                        None => {
                            // Every replica dead or closed — attribute the
                            // shed to replica 0, as the simulator does.
                            state.metrics[0].record_rejected();
                        }
                    }
                    // Admission may have changed which replica owns the
                    // earliest launch: wake everyone to recompute.
                    self.cv.notify_all();
                    continue;
                }
            }
            let Some((launch, winner)) = best else {
                // Only crashed replicas hold work — unreachable because a
                // crash drains its queue, but parking is the safe answer.
                state = self.cv.wait(state).expect("gate lock");
                continue;
            };
            if winner != r {
                state = self.cv.wait(state).expect("gate lock");
                continue;
            }
            let granted = self.commit(&mut state, r, launch, sessions);
            self.cv.notify_all();
            return Some(granted);
        }
    }

    /// Commits replica `r`'s batch at virtual time `launch` — the mirror,
    /// statement for statement, of the simulator's launch arm (latencies →
    /// adaptive evaluation → post-batch fault effects → crash handoff).
    fn commit(
        &self,
        state: &mut GateState,
        r: usize,
        launch: u64,
        sessions: &[Arc<Session>],
    ) -> GrantedBatch {
        let batch_index = state.batches[r] + 1;
        let take = state.queues[r].len().min(self.max_batch);
        let batch: Vec<GateRequest> = state.queues[r].drain(..take).collect();
        let reactive_mode = state.adaptive[r].mode();
        let mode = state
            .controller
            .as_ref()
            .map_or(reactive_mode, |c| c.effective_mode(reactive_mode));
        let factor = state.faults[r].service_factor_x1024(batch_index);
        // Size-aware virtual cost, recomputed from the submitted keys — the
        // same pure function of (size seed, key) the simulator evaluates, so
        // heterogeneous request sizes stay inside the lockstep contract.
        let base_ns = self
            .service
            .batch_ns(&sessions[mode], batch.iter().map(|g| g.req.key));
        let service_ns = (base_ns as u128 * factor as u128 / 1024).min(u128::from(u64::MAX)) as u64;
        let finish = launch.saturating_add(service_ns);
        let depth_after = state.queues[r].len();
        state.metrics[r].record_batch(batch.len(), depth_after);
        state.metrics[r].record_mode_batch(mode);
        for item in &batch {
            state.metrics[r].record_stage_split(launch.saturating_sub(item.submit_v), service_ns);
            state.metrics[r].record_latency(finish.saturating_sub(item.submit_v));
        }
        if let Some(rec) = state.recorder.clone() {
            // Identical arithmetic and fields to the simulator's launch arm
            // — the canonical snapshot order makes the byte-identical trace
            // contract hold even though workers interleave.
            rec.record(
                TraceEvent::new(TraceStage::Batch, r, launch, service_ns)
                    .batch(batch_index)
                    .mode(mode)
                    .batch_size(batch.len()),
            );
            for item in &batch {
                rec.record(
                    TraceEvent::new(
                        TraceStage::QueueWait,
                        r,
                        item.submit_v,
                        launch.saturating_sub(item.submit_v),
                    )
                    .request(item.req.key)
                    .batch(batch_index),
                );
                rec.record(
                    TraceEvent::new(TraceStage::Service, r, launch, service_ns)
                        .request(item.req.key)
                        .batch(batch_index)
                        .mode(mode),
                );
                rec.record(
                    TraceEvent::new(TraceStage::Respond, r, finish, 0)
                        .request(item.req.key)
                        .batch(batch_index),
                );
            }
        }
        if self.record_log {
            if state.log.len() < BATCH_LOG_CAP {
                state.log.push(PoolBatchLog {
                    replica: r,
                    mode,
                    keys: batch.iter().map(|g| g.req.key).collect(),
                    queue_depth_after: depth_after,
                });
            } else {
                state.dropped_batches += 1;
            }
        }
        state.t_free[r] = finish;
        // Both adaptive triggers read virtual state here: depth from the
        // drain, p95 from the virtual-latency histogram.
        let p95 = state.metrics[r].latency.quantile(0.95);
        if state.adaptive[r].observe_batch(depth_after, p95).is_some() {
            state.metrics[r].record_transition();
        }
        state.batches[r] = batch_index;
        let post = state.faults[r].after_batch(batch_index);
        if post.stall_ns > 0 {
            state.t_free[r] = state.t_free[r].saturating_add(post.stall_ns);
            state.metrics[r].record_stall();
        }
        if post.close_queue {
            state.closed[r] = true;
        }
        if post.crashed {
            state.crashed[r] = true;
            state.closed[r] = true;
            state.metrics[r].record_crash();
            let crash_time = state.t_free[r];
            let orphans: Vec<GateRequest> = state.queues[r].drain(..).collect();
            let mut cursor = (r + 1) % state.queues.len();
            let live = state
                .controller
                .as_ref()
                .map_or(state.queues.len(), PoolController::live);
            for orphan in orphans {
                let states: Vec<(bool, usize)> = state
                    .queues
                    .iter()
                    .enumerate()
                    .map(|(i, q)| (i < live && !state.crashed[i] && !state.closed[i], q.len()))
                    .collect();
                let target = pick_handoff_target(r, &mut cursor, &states, self.capacity);
                state.handoffs.push(HandoffRecord {
                    from_replica: r,
                    at_batch: batch_index,
                    key: orphan.req.key,
                    to_replica: target,
                });
                match target {
                    Some(t) => {
                        state.queues[t].push_back(GateRequest {
                            ready_v: crash_time,
                            ..orphan
                        });
                        state.metrics[r].record_handoff();
                    }
                    None => {
                        // The drop cancels the orphan's response handle.
                        state.metrics[r].record_handoff_shed();
                    }
                }
            }
        }
        // Work stealing runs strictly after post-batch fault effects — the
        // simulator's exact hook point at the end of its launch arm.
        if state.controller.is_some() {
            let live = state
                .controller
                .as_ref()
                .map_or(state.queues.len(), PoolController::live);
            let depths: Vec<(usize, usize)> = (0..state.queues.len())
                .take(live)
                .filter(|&i| !state.crashed[i] && !state.closed[i])
                .map(|i| (i, state.queues[i].len()))
                .collect();
            let event = state
                .controller
                .as_mut()
                .and_then(|ctrl| ctrl.steal_check(launch, &depths, self.capacity));
            if let Some(event) = event {
                if let ControlEventKind::Steal { from, to, moved } = event.kind {
                    let split = state.queues[from].len() - moved;
                    let stolen: Vec<GateRequest> = state.queues[from].split_off(split).into();
                    for item in stolen {
                        let ready_v = item.ready_v.max(event.at_ns);
                        state.queues[to].push_back(GateRequest { ready_v, ..item });
                    }
                    state.metrics[0].record_steal(moved);
                    if let Some(rec) = state.recorder.clone() {
                        rec.record(TraceEvent::new(TraceStage::Control, 0, event.at_ns, 0));
                    }
                }
            }
        }
        GrantedBatch {
            batch,
            mode,
            batch_index,
            launch,
            service_ns,
        }
    }
}

/// Applies one controller decision to the gate — the mirror, statement for
/// statement, of the simulator's `apply_scale_event`: an instant `Control`
/// trace mark, the pool-level counter on replica 0, and for a scale-down
/// the deactivated replica's queue drained through the shared
/// [`pick_handoff_target`] rule onto the surviving live set (or shed — the
/// dropped slot cancels the request).
fn gate_apply_scale_event(
    state: &mut GateState,
    event: ControlEvent,
    live_after: usize,
    capacity: usize,
) {
    if let Some(rec) = state.recorder.clone() {
        rec.record(TraceEvent::new(TraceStage::Control, 0, event.at_ns, 0));
    }
    match event.kind {
        ControlEventKind::PredictiveShift { .. } => state.metrics[0].record_predictive_shift(),
        ControlEventKind::ScaleUp { .. } => state.metrics[0].record_scale_up(),
        ControlEventKind::ScaleDown { to: deact, .. } => {
            state.metrics[0].record_scale_down();
            let at_batch = state.batches[deact];
            let orphans: Vec<GateRequest> = state.queues[deact].drain(..).collect();
            let mut cursor = (deact + 1) % state.queues.len();
            for orphan in orphans {
                let states: Vec<(bool, usize)> = state
                    .queues
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        (
                            i < live_after && !state.crashed[i] && !state.closed[i],
                            q.len(),
                        )
                    })
                    .collect();
                let target = pick_handoff_target(deact, &mut cursor, &states, capacity);
                state.handoffs.push(HandoffRecord {
                    from_replica: deact,
                    at_batch,
                    key: orphan.req.key,
                    to_replica: target,
                });
                match target {
                    Some(t) => {
                        let ready_v = orphan.ready_v.max(event.at_ns);
                        state.queues[t].push_back(GateRequest { ready_v, ..orphan });
                        state.metrics[deact].record_handoff();
                    }
                    None => state.metrics[deact].record_handoff_shed(),
                }
            }
        }
        // Steals are emitted only by the post-batch steal check, never by
        // the arrival hook.
        ControlEventKind::Steal { .. } => {}
    }
}

/// The lockstep worker loop: every scheduling decision already committed in
/// the gate; the worker only executes the granted GEMM and completes the
/// response slots. Logits are computed for real, so they are comparable to
/// the simulator's bit for bit.
fn lockstep_loop(
    index: usize,
    gate: &LockstepGate,
    sessions: &[Arc<Session>],
    ctx: &ExecContext,
    recorder: Option<&TraceRecorder>,
) -> ReplicaOutcome {
    while let Some(grant) = gate.acquire(index, sessions) {
        let GrantedBatch {
            batch,
            mode,
            batch_index,
            launch,
            service_ns,
        } = grant;
        let inputs: Vec<&Tensor<f32>> = batch.iter().map(|g| &g.req.input).collect();
        let result = match recorder {
            Some(_) => sessions[mode].infer_batch_traced(ctx, &inputs),
            None => sessions[mode]
                .infer_batch_refs(ctx, &inputs)
                .map(|out| (out, Vec::new())),
        };
        match result {
            Ok((responses, kernels)) => {
                if let Some(rec) = recorder {
                    // Kernel spans are recorded outside the gate lock —
                    // insertion order races across workers, but the
                    // snapshot's canonical sort restores the simulator's
                    // exact order.
                    let weights: Vec<u64> = kernels.iter().map(|k| k.stats.cycles).collect();
                    for (kernel, (span_start, span_dur)) in kernels
                        .iter()
                        .zip(layer_intervals(launch, service_ns, &weights))
                    {
                        rec.record(
                            TraceEvent::new(TraceStage::Kernel, index, span_start, span_dur)
                                .batch(batch_index)
                                .mode(mode)
                                .layer(kernel.layer)
                                .stats(kernel.stats),
                        );
                    }
                }
                for (item, response) in batch.into_iter().zip(responses) {
                    item.req.slot.complete(Ok(response));
                }
            }
            Err(e) => {
                for item in batch {
                    item.req.slot.complete(Err(e.clone()));
                }
            }
        }
    }
    ReplicaOutcome::empty()
}

impl crate::server::BatchItem for PooledRequest {
    fn key(&self) -> u64 {
        self.key
    }
    fn input(&self) -> &Tensor<f32> {
        &self.input
    }
    fn submitted(&self) -> Instant {
        self.submitted
    }
    fn into_slot(self) -> ResponseSlot<RequestResult> {
        self.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptivePolicy, BatchPolicy, SchedulerConfig, SmtConfig};
    use crate::registry::ModelRegistry;
    use nbsmt_workloads::synthnet::quick_synthnet;

    fn ladder_fixture() -> (Vec<Arc<Session>>, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(29).expect("training succeeds");
        let mut registry = ModelRegistry::new();
        registry
            .register_synthnet("synthnet", &trained, 600)
            .unwrap();
        let ladder = registry
            .compile_ladder(
                "synthnet",
                &[
                    SmtConfig::Dense,
                    SmtConfig::sysmt_2t(),
                    SmtConfig::sysmt_4t(),
                ],
            )
            .unwrap();
        let (inputs, _) = trained.sample_requests(24, 601);
        (ladder, inputs)
    }

    fn pool_config(replicas: usize, route: RoutePolicy) -> PoolConfig {
        PoolConfig {
            replicas,
            route,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait_ns: 500_000,
                },
                queue_capacity: 64,
            },
            adaptive: AdaptivePolicy::default(),
        }
    }

    #[test]
    fn pool_serves_across_replicas_end_to_end() {
        let (ladder, inputs) = ladder_fixture();
        let pool = ReplicaPool::start(
            ladder,
            pool_config(2, RoutePolicy::RoundRobin),
            ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(pool.replicas(), 2);
        let client = pool.client();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
            .collect();
        for handle in handles {
            let inference = handle.wait().expect("not cancelled").expect("no error");
            assert!(!inference.logits.is_empty());
        }
        let snapshot = pool.shutdown();
        assert_eq!(snapshot.total.completed, inputs.len() as u64);
        assert_eq!(snapshot.per_replica.len(), 2);
        let per_replica_total: u64 = snapshot.per_replica.iter().map(|m| m.completed).sum();
        assert_eq!(per_replica_total, snapshot.total.completed);
        // Round-robin splits 24 single-threaded submissions 12/12.
        assert!(snapshot.per_replica.iter().all(|m| m.completed == 12));
    }

    #[test]
    fn paused_pool_replays_batches_deterministically() {
        let (ladder, inputs) = ladder_fixture();
        let run = || {
            let mut pool = ReplicaPool::start_paused(
                ladder.clone(),
                pool_config(2, RoutePolicy::Hashed),
                ExecConfig::default(),
                true,
            )
            .unwrap();
            let client = pool.client();
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
                .collect();
            pool.resume();
            for handle in handles {
                let _ = handle.wait().expect("completes");
            }
            pool.shutdown()
        };
        let a = run();
        let b = run();
        let key = |s: &PoolSnapshot| {
            (
                s.batch_log.clone(),
                s.transitions.clone(),
                s.total.completed,
                s.total.batches_per_mode.clone(),
            )
        };
        assert_eq!(key(&a), key(&b));
        assert!(!a.batch_log.is_empty());
        // Every batch ran at 4 or fewer requests and modes stay on-ladder.
        for batch in &a.batch_log {
            assert!(batch.keys.len() <= 4);
            assert!(batch.mode < 3);
        }
    }

    #[test]
    fn least_outstanding_balances_and_full_queue_sheds() {
        let (ladder, inputs) = ladder_fixture();
        let config = PoolConfig {
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait_ns: 0,
                },
                queue_capacity: 2,
            },
            ..pool_config(2, RoutePolicy::LeastOutstanding)
        };
        let mut pool =
            ReplicaPool::start_paused(ladder, config, ExecConfig::default(), false).unwrap();
        let client = pool.client();
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        // Paused pool: 2 replicas × capacity 2 admit exactly 4; the rest
        // shed with the typed error.
        for (i, input) in inputs.iter().enumerate() {
            match client.submit(i as u64, input.clone()) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(SubmitError::Closed) => unreachable!("pool is open"),
            }
        }
        assert_eq!(accepted.len(), 4);
        assert_eq!(pool.queue_depths(), vec![2, 2], "LO must balance exactly");
        pool.resume();
        for handle in accepted {
            let _ = handle.wait().expect("accepted requests complete");
        }
        let snapshot = pool.shutdown();
        assert_eq!(snapshot.total.completed, 4);
        assert_eq!(snapshot.total.rejected, rejected);
    }

    #[test]
    fn adaptive_pool_escalates_under_burst() {
        let (ladder, inputs) = ladder_fixture();
        let config = PoolConfig {
            replicas: 1,
            route: RoutePolicy::RoundRobin,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait_ns: 0,
                },
                queue_capacity: 64,
            },
            adaptive: AdaptivePolicy {
                depth_high: 4,
                depth_low: 0,
                p95_high_ns: 0,
                eval_every_batches: 1,
            },
        };
        let mut pool =
            ReplicaPool::start_paused(ladder, config, ExecConfig::default(), true).unwrap();
        let client = pool.client();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| client.submit(i as u64, input.clone()).expect("room"))
            .collect();
        pool.resume();
        for handle in handles {
            let _ = handle.wait().expect("completes");
        }
        let snapshot = pool.shutdown();
        // 24 queued requests drain in 12 batches of 2; depth stays ≥ 4 for
        // the early batches, so the ladder must have been climbed.
        assert!(
            snapshot.total.mode_transitions > 0,
            "burst must trigger escalation"
        );
        assert!(snapshot.transitions[0].to > snapshot.transitions[0].from);
        assert!(
            snapshot.total.batches_per_mode.len() > 1,
            "batches must have run at more than one rung: {:?}",
            snapshot.total.batches_per_mode
        );
    }

    #[test]
    fn empty_ladder_is_rejected() {
        assert!(matches!(
            ReplicaPool::start(Vec::new(), PoolConfig::default(), ExecConfig::default()),
            Err(ServeError::BadRequest(_))
        ));
    }
}
