//! Immutable, shareable inference sessions.
//!
//! A [`Session`] is a calibrated quantized model frozen together with one
//! NB-SMT design point ([`SmtConfig`]): the unit the scheduler executes
//! batches against. Sessions hold no mutable state and are wrapped in `Arc`
//! by the registry, so any number of scheduler workers and clients can share
//! one compiled session.
//!
//! Batch execution stacks the per-request inputs along the leading dimension,
//! runs the quantized executor once through the supplied [`ExecContext`], and
//! splits the logits back into per-request responses. By the execution
//! layer's determinism contract the logits are bit-identical for every host
//! thread count and GEMM backend, which is what makes the serving path
//! replayable.

use std::sync::{Arc, OnceLock};

use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::pe::PeStats;
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_nn::model::Model;
use nbsmt_nn::quantized::{GemmEngine, QuantizedModel, ReferenceEngine};
use nbsmt_nn::NnError;
use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_quant::quantize::quantized_matmul_prepacked;
use nbsmt_tensor::exec::{ExecContext, GemmBackendKind, PackedRhs};
use nbsmt_tensor::tensor::{Matrix, Tensor};

use crate::config::{ServeError, SmtConfig};
use crate::trace::LayerKernel;

/// One completed inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// Raw output logits for this request.
    pub logits: Vec<f32>,
    /// Index of the largest logit (the predicted class).
    pub predicted: usize,
}

/// A compiled, immutable serving session: calibrated quantized weights plus
/// one NB-SMT design point.
#[derive(Debug, Clone)]
pub struct Session {
    name: String,
    smt: SmtConfig,
    quantized: QuantizedModel,
    /// Expected per-sample input dimensions (channels, height, width).
    input_dims: [usize; 3],
    /// MAC operations one sample costs on the dense array (service-model
    /// input for the virtual clock).
    macs_per_sample: u64,
    /// Lazily packed per-layer weight panels for the [`Packed`] GEMM
    /// backend (see [`PackedRhs`]). Shared by all clones of the session, so
    /// each layer's weights are packed once per session lifetime no matter
    /// how many `infer_batch` calls or scheduler workers touch it.
    ///
    /// [`Packed`]: GemmBackendKind::Packed
    packs: PackCache,
}

/// One `OnceLock` slot per compute layer, behind an `Arc` so session clones
/// share the cache. Layer weights are re-quantized deterministically from
/// the same calibrated model on every forward pass, so a pack built on any
/// batch stays valid for the session's lifetime.
#[derive(Debug, Clone)]
struct PackCache {
    layers: Arc<Vec<OnceLock<PackedRhs<i8>>>>,
}

impl PackCache {
    fn new(layer_count: usize) -> Self {
        PackCache {
            layers: Arc::new((0..layer_count).map(|_| OnceLock::new()).collect()),
        }
    }

    /// The cached pack for `layer_index`, packing `w` on first use. Returns
    /// `None` for out-of-range indices (grouped-conv layers bypass the
    /// engine and are never packed).
    fn get_or_pack(&self, layer_index: usize, w: &QuantWeightMatrix) -> Option<&PackedRhs<i8>> {
        self.layers.get(layer_index).map(|slot| {
            slot.get_or_init(|| PackedRhs::pack(w.rows(), w.cols(), w.values().as_slice()))
        })
    }
}

impl Session {
    /// Compiles a session from a calibrated model.
    ///
    /// `input_dims` is the per-sample `(channels, height, width)` shape every
    /// request must match.
    ///
    /// # Errors
    ///
    /// Propagates MAC-counting failures (malformed model geometry).
    pub fn new(
        name: impl Into<String>,
        quantized: QuantizedModel,
        smt: SmtConfig,
        input_dims: [usize; 3],
    ) -> Result<Self, ServeError> {
        let [c, h, w] = input_dims;
        let macs_per_sample = quantized.model().mac_ops(c, h, w)?;
        let packs = PackCache::new(quantized.compute_layer_count());
        Ok(Session {
            name: name.into(),
            smt,
            quantized,
            input_dims,
            macs_per_sample,
            packs,
        })
    }

    /// The session's model id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The NB-SMT design point this session executes at.
    pub fn smt(&self) -> &SmtConfig {
        &self.smt
    }

    /// Expected per-sample input dimensions (channels, height, width).
    pub fn input_dims(&self) -> [usize; 3] {
        self.input_dims
    }

    /// Dense-array MAC operations per sample (the virtual-clock service
    /// model scales this by the batch size and divides by the SMT speedup).
    pub fn macs_per_sample(&self) -> u64 {
        self.macs_per_sample
    }

    /// Checks a request input against the session's expected shape.
    ///
    /// Accepts `[C, H, W]` or `[1, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on any other shape.
    pub fn validate_input(&self, input: &Tensor<f32>) -> Result<(), ServeError> {
        let dims = input.shape().dims();
        let [c, h, w] = self.input_dims;
        let ok = dims == [c, h, w] || dims == [1, c, h, w];
        if ok {
            Ok(())
        } else {
            Err(ServeError::BadRequest(format!(
                "input shape {dims:?} does not match session shape [1, {c}, {h}, {w}]"
            )))
        }
    }

    /// Executes one coalesced batch: stacks `inputs` along the leading
    /// dimension, runs the quantized model once on `ctx`, and returns one
    /// [`Inference`] per input, in input order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when any input's shape mismatches
    /// and propagates model-execution failures.
    pub fn infer_batch(
        &self,
        ctx: &ExecContext,
        inputs: &[Tensor<f32>],
    ) -> Result<Vec<Inference>, ServeError> {
        let refs: Vec<&Tensor<f32>> = inputs.iter().collect();
        self.infer_batch_refs(ctx, &refs)
    }

    /// [`Self::infer_batch`] over borrowed inputs — the hot serving path:
    /// the scheduler and the simulator hand in references so each request
    /// tensor is copied exactly once, into the stacked batch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when any input's shape mismatches
    /// and propagates model-execution failures.
    pub fn infer_batch_refs(
        &self,
        ctx: &ExecContext,
        inputs: &[&Tensor<f32>],
    ) -> Result<Vec<Inference>, ServeError> {
        self.infer_batch_inner(ctx, inputs, None)
    }

    /// [`Self::infer_batch_refs`] with per-layer kernel observability: the
    /// returned [`LayerKernel`] records carry each engine-dispatched
    /// layer's GEMM shape and NB-SMT [`PeStats`] (zeroed for dense
    /// sessions, whose layers never enter the PE array). The inferences are
    /// bit-identical to the untraced path — tracing only *reads* the stats
    /// the kernels already compute.
    ///
    /// # Errors
    ///
    /// Same as [`Self::infer_batch_refs`].
    pub fn infer_batch_traced(
        &self,
        ctx: &ExecContext,
        inputs: &[&Tensor<f32>],
    ) -> Result<(Vec<Inference>, Vec<LayerKernel>), ServeError> {
        let mut kernels = Vec::new();
        let inferences = self.infer_batch_inner(ctx, inputs, Some(&mut kernels))?;
        Ok((inferences, kernels))
    }

    fn infer_batch_inner(
        &self,
        ctx: &ExecContext,
        inputs: &[&Tensor<f32>],
        mut kernels: Option<&mut Vec<LayerKernel>>,
    ) -> Result<Vec<Inference>, ServeError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let [c, h, w] = self.input_dims;
        let per_sample = c * h * w;
        let mut data = Vec::with_capacity(inputs.len() * per_sample);
        for input in inputs {
            self.validate_input(input)?;
            data.extend_from_slice(input.as_slice());
        }
        let batch = Tensor::from_vec(data, &[inputs.len(), c, h, w])
            .map_err(|e| ServeError::Model(e.to_string()))?;
        let logits = match self.smt {
            SmtConfig::Dense => {
                let mut engine = ServeDenseEngine {
                    packs: &self.packs,
                    kernels: kernels.as_deref_mut(),
                };
                self.quantized.forward_with_ctx(ctx, &batch, &mut engine)?
            }
            SmtConfig::NbSmt {
                threads,
                policy,
                reorder,
                first_layer_1t,
            } => {
                let mut engine = ServeNbSmtEngine {
                    threads,
                    policy,
                    reorder,
                    first_layer_1t,
                    packs: &self.packs,
                    kernels,
                };
                self.quantized.forward_with_ctx(ctx, &batch, &mut engine)?
            }
        };
        let dims = logits.shape().dims();
        let classes = dims[dims.len() - 1];
        let rows = logits.numel() / classes;
        if rows != inputs.len() {
            return Err(ServeError::Model(format!(
                "model produced {rows} logit rows for a batch of {}",
                inputs.len()
            )));
        }
        let slice = logits.as_slice();
        Ok((0..rows)
            .map(|r| {
                let row = &slice[r * classes..(r + 1) * classes];
                let predicted = row
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Inference {
                    logits: row.to_vec(),
                    predicted,
                }
            })
            .collect())
    }
}

/// The dense serving engine: [`ReferenceEngine`] arithmetic, plus the
/// session's weight-pack cache when the context selects the `Packed` GEMM
/// backend. Integer kernels are bit-exact across backends, so the logits are
/// identical either way — the pack only removes the per-call packing cost.
struct ServeDenseEngine<'s> {
    packs: &'s PackCache,
    /// Per-layer kernel records collected by the traced inference path
    /// (dense layers never enter the PE array, so their stats are zeroed).
    kernels: Option<&'s mut Vec<LayerKernel>>,
}

impl GemmEngine for ServeDenseEngine<'_> {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        if let Some(kernels) = self.kernels.as_deref_mut() {
            kernels.push(LayerKernel {
                layer: layer_index,
                rows: x.rows(),
                cols: w.cols(),
                stats: PeStats::default(),
            });
        }
        if ctx.config().backend == GemmBackendKind::Packed {
            if let Some(pack) = self.packs.get_or_pack(layer_index, w) {
                return Ok(quantized_matmul_prepacked(ctx, x, w, pack)?);
            }
        }
        ReferenceEngine.gemm(ctx, layer_index, x, w)
    }
}

/// The serving-side NB-SMT [`GemmEngine`]: identical arithmetic to the
/// offline `nbsmt-bench` engine but without its error-metric bookkeeping —
/// serving never re-runs the error-free reference alongside each layer, so a
/// batch costs one NB-SMT pass, not two. Under the `Packed` backend the
/// session's cached weight panels feed the fast path's base GEMM, except
/// when similarity reordering is active (reordering permutes the weight rows
/// per batch, which would invalidate a cached pack).
struct ServeNbSmtEngine<'s> {
    threads: ThreadCount,
    policy: SharingPolicy,
    reorder: bool,
    first_layer_1t: bool,
    packs: &'s PackCache,
    /// Per-layer kernel records collected by the traced inference path —
    /// the squeeze/collision counters the NB-SMT kernels already compute,
    /// surfaced instead of discarded.
    kernels: Option<&'s mut Vec<LayerKernel>>,
}

impl GemmEngine for ServeNbSmtEngine<'_> {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        let threads = if layer_index == 0 && self.first_layer_1t {
            ThreadCount::One
        } else {
            self.threads
        };
        let reorder = self.reorder && threads.count() > 1;
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads,
            policy: self.policy,
            reorder,
        });
        let pack = if !reorder && ctx.config().backend == GemmBackendKind::Packed {
            self.packs.get_or_pack(layer_index, w)
        } else {
            None
        };
        let out = emu
            .execute_with_prepacked(ctx, x, w, pack)
            .map_err(NnError::from)?;
        if let Some(kernels) = self.kernels.as_deref_mut() {
            kernels.push(LayerKernel {
                layer: layer_index,
                rows: x.rows(),
                cols: w.cols(),
                stats: out.stats,
            });
        }
        Ok(out.output)
    }
}

/// Builds a calibrated session directly from a trained float model —
/// convenience used by tests and the registry.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn compile_session(
    name: impl Into<String>,
    model: &Model,
    calibration_inputs: &[Tensor<f32>],
    smt: SmtConfig,
    input_dims: [usize; 3],
) -> Result<Session, ServeError> {
    let quantized = QuantizedModel::calibrate(model, calibration_inputs)?;
    Session::new(name, quantized, smt, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_workloads::synthnet::quick_synthnet;

    fn session_pair() -> (Session, Session, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(11).expect("training succeeds");
        let calib = trained.calibration_inputs(8, 501);
        let s = trained.task.image_size;
        let dense = compile_session(
            "synthnet",
            &trained.model,
            std::slice::from_ref(&calib),
            SmtConfig::Dense,
            [1, s, s],
        )
        .unwrap();
        let smt2 = compile_session(
            "synthnet",
            &trained.model,
            &[calib],
            SmtConfig::sysmt_2t(),
            [1, s, s],
        )
        .unwrap();
        let (inputs, _) = trained.sample_requests(6, 777);
        (dense, smt2, inputs)
    }

    #[test]
    fn batch_matches_singles_bitwise() {
        let (dense, _, inputs) = session_pair();
        let ctx = ExecContext::sequential();
        let batched = dense.infer_batch(&ctx, &inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let single = dense
                .infer_batch(&ctx, std::slice::from_ref(input))
                .unwrap();
            assert_eq!(single.len(), 1);
            assert_eq!(single[0].predicted, batched[i].predicted);
        }
    }

    #[test]
    fn outputs_invariant_across_host_threads() {
        let (_, smt2, inputs) = session_pair();
        let reference = smt2
            .infer_batch(&ExecContext::sequential(), &inputs)
            .unwrap();
        for threads in [2usize, 8] {
            let out = smt2
                .infer_batch(&ExecContext::with_threads(threads), &inputs)
                .unwrap();
            for (a, b) in out.iter().zip(reference.iter()) {
                let ab: Vec<u32> = a.logits.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.logits.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "logits must be bit-identical across host threads");
            }
        }
    }

    #[test]
    fn packed_backend_reuses_cache_and_matches_sequential_bitwise() {
        use nbsmt_tensor::exec::ExecConfig;
        let (dense, smt2, inputs) = session_pair();
        let seq = ExecContext::sequential();
        let packed_ctx = ExecContext::new(ExecConfig {
            backend: GemmBackendKind::Packed,
            ..*seq.config()
        });
        for session in [&dense, &smt2] {
            let reference = session.infer_batch(&seq, &inputs).unwrap();
            // Two rounds: the first populates the session's pack cache, the
            // second must reuse it and still match bit-for-bit.
            for round in 0..2 {
                let packed = session.infer_batch(&packed_ctx, &inputs).unwrap();
                for (a, b) in packed.iter().zip(reference.iter()) {
                    let ab: Vec<u32> = a.logits.iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u32> = b.logits.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        ab, bb,
                        "packed-backend logits must be bit-identical (round {round})"
                    );
                }
            }
            assert!(session.packs.layers.iter().any(|slot| slot.get().is_some()));
        }
    }

    #[test]
    fn smt_session_differs_from_dense_but_mostly_agrees() {
        let (dense, smt2, inputs) = session_pair();
        let ctx = ExecContext::sequential();
        let d = dense.infer_batch(&ctx, &inputs).unwrap();
        let s = smt2.infer_batch(&ctx, &inputs).unwrap();
        let agree = d
            .iter()
            .zip(s.iter())
            .filter(|(a, b)| a.predicted == b.predicted)
            .count();
        assert!(
            agree * 2 >= inputs.len(),
            "2T SySMT should agree with dense on most requests ({agree}/{})",
            inputs.len()
        );
    }

    #[test]
    fn traced_inference_matches_untraced_and_surfaces_pe_stats() {
        let (dense, smt2, inputs) = session_pair();
        let ctx = ExecContext::sequential();
        let refs: Vec<&Tensor<f32>> = inputs.iter().collect();
        for (session, smt_layers) in [(&dense, false), (&smt2, true)] {
            let plain = session.infer_batch_refs(&ctx, &refs).unwrap();
            let (traced, kernels) = session.infer_batch_traced(&ctx, &refs).unwrap();
            assert_eq!(traced, plain, "tracing must not perturb inference");
            assert!(!kernels.is_empty(), "engine layers must be recorded");
            for (i, kernel) in kernels.iter().enumerate() {
                // Conv layers lower to im2col GEMMs, so rows is a multiple
                // of the batch (batch × output positions), never less.
                assert!(kernel.rows >= inputs.len());
                assert_eq!(kernel.rows % inputs.len(), 0);
                assert!(kernel.cols > 0);
                if i > 0 {
                    assert!(kernel.layer > kernels[i - 1].layer, "layers in order");
                }
                if smt_layers {
                    assert!(kernel.stats.cycles > 0, "NB-SMT layers carry PE stats");
                } else {
                    assert_eq!(kernel.stats, Default::default(), "dense stats are zero");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_shapes_and_empty_batch_is_empty() {
        let (dense, _, _) = session_pair();
        let ctx = ExecContext::sequential();
        assert!(dense.infer_batch(&ctx, &[]).unwrap().is_empty());
        let bad = Tensor::<f32>::zeros(&[1, 1, 3, 3]);
        assert!(matches!(
            dense.infer_batch(&ctx, &[bad]),
            Err(ServeError::BadRequest(_))
        ));
        assert!(dense.macs_per_sample() > 0);
    }
}
