//! The model registry: trained models in, immutable shared sessions out.
//!
//! Registration calibrates the quantized model once (the paper's quick
//! statistics-gathering run); compiling a session then only freezes a design
//! point around the already-calibrated weights, so serving many NB-SMT
//! configurations of one model costs one calibration total. Compiled
//! sessions are cached by `(model, SmtConfig)` and handed out as `Arc`s.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use nbsmt_nn::model::Model;
use nbsmt_nn::quantized::QuantizedModel;
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::TrainedSynthNet;

use crate::config::{ServeError, SmtConfig};
use crate::session::Session;

/// A registered model: calibrated weights plus the request geometry.
#[derive(Debug, Clone)]
struct RegisteredModel {
    quantized: QuantizedModel,
    input_dims: [usize; 3],
}

/// Compiles and caches [`Session`]s from registered models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: HashMap<String, RegisteredModel>,
    sessions: Mutex<HashMap<(String, String), Arc<Session>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a trained float model, calibrating it on
    /// `calibration_inputs`. `input_dims` is the per-sample
    /// `(channels, height, width)` request shape.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: &Model,
        calibration_inputs: &[Tensor<f32>],
        input_dims: [usize; 3],
    ) -> Result<(), ServeError> {
        let quantized = QuantizedModel::calibrate(model, calibration_inputs)?;
        self.models.insert(
            name.into(),
            RegisteredModel {
                quantized,
                input_dims,
            },
        );
        Ok(())
    }

    /// Registers a [`TrainedSynthNet`], deriving the calibration batch and
    /// request shape from its task (the session-construction hook used by
    /// `repro serve` and the tests).
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn register_synthnet(
        &mut self,
        name: impl Into<String>,
        trained: &TrainedSynthNet,
        calib_seed: u64,
    ) -> Result<(), ServeError> {
        let calib = trained.calibration_inputs(8, calib_seed);
        let s = trained.task.image_size;
        self.register(name, &trained.model, &[calib], [1, s, s])
    }

    /// Registered model ids, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.models.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Compiles (or fetches from cache) the session for `(name, smt)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unregistered ids and
    /// propagates compile failures.
    pub fn compile(&self, name: &str, smt: SmtConfig) -> Result<Arc<Session>, ServeError> {
        let key = (name.to_string(), smt.cache_key());
        if let Some(hit) = self
            .sessions
            .lock()
            .expect("session cache lock")
            .get(&key)
            .cloned()
        {
            return Ok(hit);
        }
        let registered = self
            .models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let session = Arc::new(Session::new(
            name,
            registered.quantized.clone(),
            smt,
            registered.input_dims,
        )?);
        self.sessions
            .lock()
            .expect("session cache lock")
            .insert(key, Arc::clone(&session));
        Ok(session)
    }

    /// Compiles the full ladder of design points for `name`, in rung order —
    /// the session vector a replica pool or adaptive simulator executes
    /// against (rung 0 first, typically dense → 2T → 4T).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::compile`].
    pub fn compile_ladder(
        &self,
        name: &str,
        ladder: &[SmtConfig],
    ) -> Result<Vec<Arc<Session>>, ServeError> {
        ladder.iter().map(|&smt| self.compile(name, smt)).collect()
    }

    /// Number of cached compiled sessions.
    pub fn compiled_count(&self) -> usize {
        self.sessions.lock().expect("session cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_workloads::synthnet::quick_synthnet;

    #[test]
    fn registry_compiles_and_caches_sessions() {
        let trained = quick_synthnet(13).expect("training succeeds");
        let mut registry = ModelRegistry::new();
        registry
            .register_synthnet("synthnet", &trained, 404)
            .unwrap();
        assert_eq!(registry.model_ids(), vec!["synthnet".to_string()]);

        let a = registry.compile("synthnet", SmtConfig::Dense).unwrap();
        let b = registry.compile("synthnet", SmtConfig::Dense).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same config must hit the cache");
        assert_eq!(registry.compiled_count(), 1);

        let c = registry.compile("synthnet", SmtConfig::sysmt_2t()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.compiled_count(), 2);

        assert!(matches!(
            registry.compile("nope", SmtConfig::Dense),
            Err(ServeError::UnknownModel(_))
        ));

        // The ladder helper hits the same cache in rung order.
        let ladder = registry
            .compile_ladder("synthnet", &[SmtConfig::Dense, SmtConfig::sysmt_2t()])
            .unwrap();
        assert_eq!(ladder.len(), 2);
        assert!(Arc::ptr_eq(&ladder[0], &a));
        assert!(Arc::ptr_eq(&ladder[1], &c));
        assert!(matches!(
            registry.compile_ladder("nope", &[SmtConfig::Dense]),
            Err(ServeError::UnknownModel(_))
        ));
    }
}
