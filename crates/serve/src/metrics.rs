//! Serving-grade metrics: a fixed-bucket latency histogram, batch-size
//! distribution, queue-depth tracking, and completion/rejection counters.
//!
//! The histogram uses power-of-two nanosecond buckets (`[2^i, 2^{i+1})`),
//! so recording is branch-free integer work and two runs that observe the
//! same latencies produce identical state — quantile estimates are therefore
//! deterministic, which the virtual-clock tests rely on.

/// Number of power-of-two buckets: covers 1 ns up to ~2^48 ns (~3 days).
const BUCKETS: usize = 48;

/// Fixed-bucket latency histogram over nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds another histogram's observations into this one (replica-pool
    /// metric aggregation).
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) in nanoseconds by linear
    /// interpolation inside the owning bucket. Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = 1u64 << i;
                let hi = lo << 1;
                let into = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * into) as u64;
            }
            seen += c;
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Aggregate serving metrics for one session / scheduler.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeMetrics {
    /// Per-request latency histogram (submit → response).
    pub latency: LatencyHistogram,
    /// Per-request queue-wait histogram (submit → batch launch): the
    /// admission-side half of `latency`, so the trace summary and the p95
    /// adaptive trigger agree on where time went.
    pub queue_wait: LatencyHistogram,
    /// Per-request service-time histogram (batch launch → response): the
    /// execution-side half of `latency`.
    pub service: LatencyHistogram,
    /// `batch_sizes[s]` counts batches that launched with `s` requests.
    pub batch_sizes: Vec<u64>,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Deepest queue observed at batch-formation time.
    pub max_queue_depth: usize,
    /// Adaptive mode switches (replica pools; 0 for a fixed-mode server).
    pub mode_transitions: u64,
    /// `batches_per_mode[m]` counts batches executed at ladder rung `m`
    /// (empty when the scheduler never records modes).
    pub batches_per_mode: Vec<u64>,
    /// Injected replica crashes observed (0 outside fault injection).
    pub crashes: u64,
    /// In-queue requests re-routed off a crashed replica.
    pub handoffs: u64,
    /// In-queue requests shed at a crash because no survivor could take
    /// them.
    pub handoff_shed: u64,
    /// Injected stalls observed.
    pub stalls: u64,
    /// Controller scale-up decisions (one replica activated each).
    pub scale_ups: u64,
    /// Controller scale-down decisions (one replica deactivated each).
    pub scale_downs: u64,
    /// Predictive ladder-floor shifts (either direction).
    pub predictive_shifts: u64,
    /// Work-stealing transfers executed by the controller.
    pub steals: u64,
    /// Queued requests moved across replicas by work stealing.
    pub stolen_requests: u64,
    /// Sum of queue depths sampled at batch-formation time (for the mean).
    depth_sum: u64,
}

impl ServeMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one completed request's latency.
    pub fn record_latency(&mut self, ns: u64) {
        self.latency.record(ns);
        self.completed += 1;
    }

    /// Records one completed request's queue-wait and service-time split
    /// (companion to [`Self::record_latency`]; both drivers call it with
    /// `wait + service == latency` up to the launch instant used).
    pub fn record_stage_split(&mut self, wait_ns: u64, service_ns: u64) {
        self.queue_wait.record(wait_ns);
        self.service.record(service_ns);
    }

    /// Records one launched batch and the queue depth left behind it.
    pub fn record_batch(&mut self, size: usize, queue_depth_after: usize) {
        if self.batch_sizes.len() <= size {
            self.batch_sizes.resize(size + 1, 0);
        }
        self.batch_sizes[size] += 1;
        self.max_queue_depth = self.max_queue_depth.max(queue_depth_after + size);
        self.depth_sum += (queue_depth_after + size) as u64;
    }

    /// Records one admission-control rejection.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Records the ladder rung one launched batch executed at.
    pub fn record_mode_batch(&mut self, mode: usize) {
        if self.batches_per_mode.len() <= mode {
            self.batches_per_mode.resize(mode + 1, 0);
        }
        self.batches_per_mode[mode] += 1;
    }

    /// Records one adaptive mode switch.
    pub fn record_transition(&mut self) {
        self.mode_transitions += 1;
    }

    /// Records one injected replica crash.
    pub fn record_crash(&mut self) {
        self.crashes += 1;
    }

    /// Records one request handed off from a crashed replica to a survivor.
    pub fn record_handoff(&mut self) {
        self.handoffs += 1;
    }

    /// Records one request shed at a crash (no eligible survivor).
    pub fn record_handoff_shed(&mut self) {
        self.handoff_shed += 1;
    }

    /// Records one injected stall.
    pub fn record_stall(&mut self) {
        self.stalls += 1;
    }

    /// Records one controller scale-up decision.
    pub fn record_scale_up(&mut self) {
        self.scale_ups += 1;
    }

    /// Records one controller scale-down decision.
    pub fn record_scale_down(&mut self) {
        self.scale_downs += 1;
    }

    /// Records one predictive ladder-floor shift.
    pub fn record_predictive_shift(&mut self) {
        self.predictive_shifts += 1;
    }

    /// Records one work-stealing transfer of `moved` queued requests.
    pub fn record_steal(&mut self, moved: usize) {
        self.steals += 1;
        self.stolen_requests += moved as u64;
    }

    /// Folds another replica's metrics into this one: histograms and
    /// counters add, extrema take the max — the pool-level aggregate over
    /// per-replica schedulers.
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.latency.absorb(&other.latency);
        self.queue_wait.absorb(&other.queue_wait);
        self.service.absorb(&other.service);
        if self.batch_sizes.len() < other.batch_sizes.len() {
            self.batch_sizes.resize(other.batch_sizes.len(), 0);
        }
        for (size, &count) in other.batch_sizes.iter().enumerate() {
            self.batch_sizes[size] += count;
        }
        if self.batches_per_mode.len() < other.batches_per_mode.len() {
            self.batches_per_mode
                .resize(other.batches_per_mode.len(), 0);
        }
        for (mode, &count) in other.batches_per_mode.iter().enumerate() {
            self.batches_per_mode[mode] += count;
        }
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.mode_transitions += other.mode_transitions;
        self.crashes += other.crashes;
        self.handoffs += other.handoffs;
        self.handoff_shed += other.handoff_shed;
        self.stalls += other.stalls;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.predictive_shifts += other.predictive_shifts;
        self.steals += other.steals;
        self.stolen_requests += other.stolen_requests;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.depth_sum += other.depth_sum;
    }

    /// Number of batches launched.
    pub fn batches(&self) -> u64 {
        self.batch_sizes.iter().sum()
    }

    /// Mean batch size over all launched batches (0 when none launched).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        weighted as f64 / batches as f64
    }

    /// Freezes a snapshot, deriving throughput from `elapsed_ns` (wall clock
    /// for the threaded server, virtual makespan for the simulator).
    pub fn snapshot(&self, elapsed_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            completed: self.completed,
            rejected: self.rejected,
            batches: self.batches(),
            mean_batch_size: self.mean_batch_size(),
            max_queue_depth: self.max_queue_depth,
            mode_transitions: self.mode_transitions,
            batches_per_mode: self.batches_per_mode.clone(),
            crashes: self.crashes,
            handoffs: self.handoffs,
            handoff_shed: self.handoff_shed,
            stalls: self.stalls,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            predictive_shifts: self.predictive_shifts,
            steals: self.steals,
            stolen_requests: self.stolen_requests,
            p50_ns: self.latency.quantile(0.50),
            p95_ns: self.latency.quantile(0.95),
            p99_ns: self.latency.quantile(0.99),
            queue_wait_p50_ns: self.queue_wait.quantile(0.50),
            queue_wait_p95_ns: self.queue_wait.quantile(0.95),
            queue_wait_p99_ns: self.queue_wait.quantile(0.99),
            service_p50_ns: self.service.quantile(0.50),
            service_p95_ns: self.service.quantile(0.95),
            service_p99_ns: self.service.quantile(0.99),
            throughput_rps: if elapsed_ns == 0 {
                0.0
            } else {
                self.completed as f64 * 1e9 / elapsed_ns as f64
            },
            elapsed_ns,
        }
    }
}

/// A frozen view of [`ServeMetrics`] with derived quantiles and throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Batches launched.
    pub batches: u64,
    /// Mean launched batch size.
    pub mean_batch_size: f64,
    /// Deepest queue observed at batch-formation time.
    pub max_queue_depth: usize,
    /// Adaptive mode switches over the window (0 for fixed-mode servers).
    pub mode_transitions: u64,
    /// Batches executed per ladder rung (empty when modes were not
    /// recorded).
    pub batches_per_mode: Vec<u64>,
    /// Injected replica crashes (0 outside fault injection).
    pub crashes: u64,
    /// Requests handed off from crashed replicas to survivors.
    pub handoffs: u64,
    /// Requests shed at a crash because no survivor could take them.
    pub handoff_shed: u64,
    /// Injected stalls.
    pub stalls: u64,
    /// Controller scale-up decisions.
    pub scale_ups: u64,
    /// Controller scale-down decisions.
    pub scale_downs: u64,
    /// Predictive ladder-floor shifts.
    pub predictive_shifts: u64,
    /// Work-stealing transfers.
    pub steals: u64,
    /// Queued requests moved by work stealing.
    pub stolen_requests: u64,
    /// Median latency estimate [ns].
    pub p50_ns: u64,
    /// 95th-percentile latency estimate [ns].
    pub p95_ns: u64,
    /// 99th-percentile latency estimate [ns].
    pub p99_ns: u64,
    /// Median queue-wait estimate [ns] (submit → batch launch).
    pub queue_wait_p50_ns: u64,
    /// 95th-percentile queue-wait estimate [ns].
    pub queue_wait_p95_ns: u64,
    /// 99th-percentile queue-wait estimate [ns].
    pub queue_wait_p99_ns: u64,
    /// Median service-time estimate [ns] (batch launch → response).
    pub service_p50_ns: u64,
    /// 95th-percentile service-time estimate [ns].
    pub service_p95_ns: u64,
    /// 99th-percentile service-time estimate [ns].
    pub service_p99_ns: u64,
    /// Completed requests per second over the observation window.
    pub throughput_rps: f64,
    /// The observation window [ns].
    pub elapsed_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bucketed() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record(ns);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p50 of the ten samples above lands in the bucket of 800–1600.
        assert!((512..4096).contains(&p50), "p50 {p50}");
        assert!(p99 >= 32768, "p99 {p99}");
    }

    #[test]
    fn histogram_is_deterministic_across_insertion_order() {
        let samples = [5u64, 9000, 23, 77777, 1, 4096, 4097];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &s in &samples {
            a.record(s);
        }
        for &s in samples.iter().rev() {
            b.record(s);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_latencies_clamp_into_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamped to the 1 ns bucket
        h.record(u64::MAX); // clamped to the final bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn empty_histogram_returns_zero_for_every_quantile() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_puts_every_quantile_at_its_bucket_upper_edge() {
        let mut h = LatencyHistogram::new();
        h.record(100); // bucket [64, 128)
                       // rank is always 1, so interpolation lands on the bucket's upper
                       // edge regardless of q — and all quantiles agree.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 128, "q={q}");
        }
    }

    #[test]
    fn quantile_interpolates_exactly_at_bucket_boundaries() {
        // Four samples in the [1024, 2048) bucket: rank r interpolates to
        // 1024 + 1024 * r/4.
        let mut h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(1024);
        }
        assert_eq!(h.quantile(0.25), 1024 + 256);
        assert_eq!(h.quantile(0.5), 1024 + 512);
        assert_eq!(h.quantile(0.75), 1024 + 768);
        assert_eq!(h.quantile(1.0), 2048);
        // q=0 clamps the rank to 1 (never 0 — an empty prefix has no
        // sample to name).
        assert_eq!(h.quantile(0.0), 1024 + 256);
        // A power-of-two observation belongs to the bucket it *opens*:
        // 2048 goes to [2048, 4096), not [1024, 2048).
        h.record(2048);
        assert_eq!(h.quantile(1.0), 4096);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        let mut h = LatencyHistogram::new();
        // Anything at or past 2^47 ns lands in the final bucket, including
        // u64::MAX — whose naive bucket index (63) must clamp to BUCKETS-1.
        h.record(1u64 << 47);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 3);
        let top_lo = 1u64 << (BUCKETS - 1);
        for q in [0.5, 0.95, 1.0] {
            let v = h.quantile(q);
            assert!(v >= top_lo, "q={q} gave {v}");
            assert!(v <= top_lo << 1, "q={q} gave {v}");
        }
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one_place() {
        let mut a = ServeMetrics::new();
        let mut b = ServeMetrics::new();
        let mut whole = ServeMetrics::new();
        for (target, latencies, batch) in [
            (&mut a, [1_000u64, 2_000].as_slice(), (2usize, 3usize)),
            (&mut b, [50_000, 60_000, 70_000].as_slice(), (3, 7)),
        ] {
            target.record_batch(batch.0, batch.1);
            whole.record_batch(batch.0, batch.1);
            for &ns in latencies {
                target.record_latency(ns);
                whole.record_latency(ns);
                // Split accounting rides along: a third waits, the rest
                // serves.
                target.record_stage_split(ns / 3, ns - ns / 3);
                whole.record_stage_split(ns / 3, ns - ns / 3);
            }
        }
        a.record_mode_batch(0);
        whole.record_mode_batch(0);
        b.record_mode_batch(2);
        whole.record_mode_batch(2);
        b.record_transition();
        whole.record_transition();
        b.record_rejected();
        whole.record_rejected();
        a.record_crash();
        whole.record_crash();
        a.record_handoff();
        whole.record_handoff();
        b.record_handoff_shed();
        whole.record_handoff_shed();
        b.record_stall();
        whole.record_stall();
        a.record_scale_up();
        whole.record_scale_up();
        b.record_scale_down();
        whole.record_scale_down();
        a.record_predictive_shift();
        whole.record_predictive_shift();
        b.record_steal(5);
        whole.record_steal(5);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.snapshot(1_000), whole.snapshot(1_000));
        let snap = merged.snapshot(1_000);
        assert_eq!(snap.mode_transitions, 1);
        assert_eq!(snap.batches_per_mode, vec![1, 0, 1]);
        assert_eq!(
            (snap.crashes, snap.handoffs, snap.handoff_shed, snap.stalls),
            (1, 1, 1, 1)
        );
        assert_eq!(
            (snap.scale_ups, snap.scale_downs, snap.predictive_shifts),
            (1, 1, 1)
        );
        assert_eq!((snap.steals, snap.stolen_requests), (1, 5));
    }

    #[test]
    fn metrics_aggregate_batches_and_latencies() {
        let mut m = ServeMetrics::new();
        m.record_batch(4, 2);
        m.record_batch(8, 0);
        m.record_batch(4, 1);
        for _ in 0..16 {
            m.record_latency(1_000_000);
        }
        m.record_rejected();
        assert_eq!(m.batches(), 3);
        assert!((m.mean_batch_size() - 16.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.max_queue_depth, 8);
        let snap = m.snapshot(1_000_000_000);
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.rejected, 1);
        assert!((snap.throughput_rps - 16.0).abs() < 1e-9);
        assert!(snap.p50_ns >= 524_288 && snap.p50_ns <= 2_097_152);
        assert_eq!(m.snapshot(0).throughput_rps, 0.0);
    }
}
