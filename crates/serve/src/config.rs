//! Serving-side configuration: which NB-SMT design point a session runs at,
//! and how the micro-batching scheduler coalesces requests.

use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;

/// The NB-SMT design point a [`crate::session::Session`] executes at.
///
/// `Dense` is the conventional error-free 8-bit systolic array; `NbSmt`
/// emulates a 1T/2T/4T SySMT with a sharing policy, exactly as the offline
/// experiments do. Per-request configurations are expressed by compiling one
/// session per design point and routing each request to the session it asked
/// for — sessions are immutable and shareable, so this costs one compile per
/// distinct configuration, not per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmtConfig {
    /// Error-free 8-bit baseline (the conventional array).
    Dense,
    /// NB-SMT emulation at a thread count and sharing policy.
    NbSmt {
        /// Threads sharing each PE (1T/2T/4T).
        threads: ThreadCount,
        /// Sharing policy (which sparsity/width paths are tried first).
        policy: SharingPolicy,
        /// Whether the statistical column reordering of §IV-B is applied.
        reorder: bool,
        /// Keep the first compute layer at one thread, as the paper does.
        first_layer_1t: bool,
    },
}

impl SmtConfig {
    /// The paper's 2T operating point: S+A policy, first layer at 1T.
    pub fn sysmt_2t() -> Self {
        SmtConfig::NbSmt {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
            first_layer_1t: true,
        }
    }

    /// The paper's 4T operating point: S+A policy, first layer at 1T.
    pub fn sysmt_4t() -> Self {
        SmtConfig::NbSmt {
            threads: ThreadCount::Four,
            policy: SharingPolicy::S_A,
            reorder: false,
            first_layer_1t: true,
        }
    }

    /// Short label used in tables and record names (`dense`, `1t`, `2t`,
    /// `4t`).
    pub fn label(&self) -> &'static str {
        match self {
            SmtConfig::Dense => "dense",
            SmtConfig::NbSmt { threads, .. } => match threads {
                ThreadCount::One => "1t",
                ThreadCount::Two => "2t",
                ThreadCount::Four => "4t",
            },
        }
    }

    /// The modeled hardware speedup of this design point over the dense
    /// array: a T-threaded SySMT retires a layer in 1/T of the baseline
    /// cycles (§IV), so service time in the virtual-clock model divides by
    /// this factor.
    pub fn speedup(&self) -> u64 {
        match self {
            SmtConfig::Dense => 1,
            SmtConfig::NbSmt { threads, .. } => threads.count() as u64,
        }
    }

    /// A stable cache key distinguishing every field combination (used by
    /// the registry's session cache).
    pub fn cache_key(&self) -> String {
        match self {
            SmtConfig::Dense => "dense".to_string(),
            SmtConfig::NbSmt {
                threads,
                policy,
                reorder,
                first_layer_1t,
            } => format!(
                "{}t-{}-r{}-f{}",
                threads.count(),
                policy.label(),
                u8::from(*reorder),
                u8::from(*first_layer_1t)
            ),
        }
    }
}

/// How the scheduler coalesces queued requests into one execution batch.
///
/// A batch launches as soon as `max_batch` requests are waiting, or when the
/// oldest queued request has waited `max_wait_ns`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the scheduler will form (`>= 1`).
    pub max_batch: usize,
    /// Longest the oldest request may wait before its batch launches
    /// anyway, in nanoseconds.
    pub max_wait_ns: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000, // 2 ms
        }
    }
}

/// Full scheduler configuration: the batching policy plus the admission
/// bound of the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Batch coalescing policy.
    pub batch: BatchPolicy,
    /// Bounded-queue capacity. Submissions beyond it are rejected with
    /// [`SubmitError::QueueFull`] so overload degrades by shedding load,
    /// never by unbounded memory growth.
    pub queue_capacity: usize,
}

impl SchedulerConfig {
    /// Clamps the configuration to valid values: `max_batch >= 1` and
    /// `queue_capacity >= max_batch` (a batch must be able to fit in the
    /// queue).
    pub fn normalized(mut self) -> Self {
        self.batch.max_batch = self.batch.max_batch.max(1);
        self.queue_capacity = self.queue_capacity.max(self.batch.max_batch);
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            batch: BatchPolicy::default(),
            queue_capacity: 64,
        }
    }
}

/// Typed admission-control rejection returned by `submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; the request was shed.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "request rejected: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "request rejected: server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Errors raised while building or executing sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The registry has no model under the requested id.
    UnknownModel(String),
    /// A request's input does not match the session's expected shape.
    BadRequest(String),
    /// Model calibration or execution failed.
    Model(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(id) => write!(f, "unknown model '{id}'"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Model(msg) => write!(f, "model execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<nbsmt_nn::NnError> for ServeError {
    fn from(e: nbsmt_nn::NnError) -> Self {
        ServeError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_speedups() {
        assert_eq!(SmtConfig::Dense.label(), "dense");
        assert_eq!(SmtConfig::Dense.speedup(), 1);
        assert_eq!(SmtConfig::sysmt_2t().label(), "2t");
        assert_eq!(SmtConfig::sysmt_2t().speedup(), 2);
        assert_eq!(SmtConfig::sysmt_4t().label(), "4t");
        assert_eq!(SmtConfig::sysmt_4t().speedup(), 4);
    }

    #[test]
    fn cache_keys_distinguish_configs() {
        let keys = [
            SmtConfig::Dense.cache_key(),
            SmtConfig::sysmt_2t().cache_key(),
            SmtConfig::sysmt_4t().cache_key(),
            SmtConfig::NbSmt {
                threads: ThreadCount::Two,
                policy: SharingPolicy::S_A,
                reorder: true,
                first_layer_1t: true,
            }
            .cache_key(),
        ];
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if i != j {
                    assert_ne!(keys[i], keys[j]);
                }
            }
        }
    }

    #[test]
    fn scheduler_config_normalizes() {
        let cfg = SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 0,
                max_wait_ns: 0,
            },
            queue_capacity: 0,
        }
        .normalized();
        assert_eq!(cfg.batch.max_batch, 1);
        assert!(cfg.queue_capacity >= cfg.batch.max_batch);
        let big = SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 32,
                max_wait_ns: 1,
            },
            queue_capacity: 4,
        }
        .normalized();
        assert_eq!(big.queue_capacity, 32);
    }

    #[test]
    fn error_displays() {
        assert!(SubmitError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(SubmitError::Closed.to_string().contains("shut down"));
        assert!(ServeError::UnknownModel("x".into())
            .to_string()
            .contains("'x'"));
    }
}
