//! Serving-side configuration: which NB-SMT design point a session runs at,
//! and how the micro-batching scheduler coalesces requests.

use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_tensor::validate::{ExecConfigError, Validate};

/// The NB-SMT design point a [`crate::session::Session`] executes at.
///
/// `Dense` is the conventional error-free 8-bit systolic array; `NbSmt`
/// emulates a 1T/2T/4T SySMT with a sharing policy, exactly as the offline
/// experiments do. Per-request configurations are expressed by compiling one
/// session per design point and routing each request to the session it asked
/// for — sessions are immutable and shareable, so this costs one compile per
/// distinct configuration, not per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmtConfig {
    /// Error-free 8-bit baseline (the conventional array).
    Dense,
    /// NB-SMT emulation at a thread count and sharing policy.
    NbSmt {
        /// Threads sharing each PE (1T/2T/4T).
        threads: ThreadCount,
        /// Sharing policy (which sparsity/width paths are tried first).
        policy: SharingPolicy,
        /// Whether the statistical column reordering of §IV-B is applied.
        reorder: bool,
        /// Keep the first compute layer at one thread, as the paper does.
        first_layer_1t: bool,
    },
}

impl SmtConfig {
    /// The paper's 2T operating point: S+A policy, first layer at 1T.
    pub fn sysmt_2t() -> Self {
        SmtConfig::NbSmt {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
            first_layer_1t: true,
        }
    }

    /// The paper's 4T operating point: S+A policy, first layer at 1T.
    pub fn sysmt_4t() -> Self {
        SmtConfig::NbSmt {
            threads: ThreadCount::Four,
            policy: SharingPolicy::S_A,
            reorder: false,
            first_layer_1t: true,
        }
    }

    /// Short label used in tables and record names (`dense`, `1t`, `2t`,
    /// `4t`).
    pub fn label(&self) -> &'static str {
        match self {
            SmtConfig::Dense => "dense",
            SmtConfig::NbSmt { threads, .. } => match threads {
                ThreadCount::One => "1t",
                ThreadCount::Two => "2t",
                ThreadCount::Four => "4t",
            },
        }
    }

    /// The modeled hardware speedup of this design point over the dense
    /// array: a T-threaded SySMT retires a layer in 1/T of the baseline
    /// cycles (§IV), so service time in the virtual-clock model divides by
    /// this factor.
    pub fn speedup(&self) -> u64 {
        match self {
            SmtConfig::Dense => 1,
            SmtConfig::NbSmt { threads, .. } => threads.count() as u64,
        }
    }

    /// A stable cache key distinguishing every field combination (used by
    /// the registry's session cache).
    pub fn cache_key(&self) -> String {
        match self {
            SmtConfig::Dense => "dense".to_string(),
            SmtConfig::NbSmt {
                threads,
                policy,
                reorder,
                first_layer_1t,
            } => format!(
                "{}t-{}-r{}-f{}",
                threads.count(),
                policy.label(),
                u8::from(*reorder),
                u8::from(*first_layer_1t)
            ),
        }
    }
}

/// How the scheduler coalesces queued requests into one execution batch.
///
/// A batch launches as soon as `max_batch` requests are waiting, or when the
/// oldest queued request has waited `max_wait_ns`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the scheduler will form (`>= 1`).
    pub max_batch: usize,
    /// Longest the oldest request may wait before its batch launches
    /// anyway, in nanoseconds.
    pub max_wait_ns: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000, // 2 ms
        }
    }
}

/// Why a serving-side configuration is invalid.
///
/// Every scheduler entry point — [`crate::server::Server::start`],
/// [`crate::pool::ReplicaPool::start`], [`crate::sim::simulate`] and
/// [`crate::sim::simulate_pool`] — validates its configuration through
/// [`Validate`] and rejects bad values with one of these variants, so the
/// threaded drivers and the virtual-clock simulator refuse exactly the same
/// configs (there is no clamping path a bad value can sneak through on one
/// driver but not the other).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `BatchPolicy::max_batch` is zero — a batch must hold a request.
    ZeroBatch,
    /// `SchedulerConfig::queue_capacity` is zero — admission control needs
    /// room for at least one request.
    ZeroQueueCapacity,
    /// The queue cannot hold one full batch.
    QueueSmallerThanBatch {
        /// The configured queue capacity.
        capacity: usize,
        /// The configured maximum batch size.
        max_batch: usize,
    },
    /// `AdaptivePolicy::depth_low` exceeds `depth_high` — the hysteresis
    /// band is inverted and the mode would thrash every evaluation.
    InvertedDepthThresholds {
        /// The configured de-escalation threshold.
        low: usize,
        /// The configured escalation threshold.
        high: usize,
    },
    /// `AdaptivePolicy::eval_every_batches` is zero — the policy would never
    /// be evaluated.
    ZeroEvalCadence,
    /// `PoolConfig::replicas` is zero — a pool needs at least one worker.
    ZeroReplicas,
    /// The pool's host-execution configuration is invalid.
    Exec(ExecConfigError),
    /// A `FaultConfig` per-mille rate exceeds 1000.
    FaultRateOutOfRange {
        /// The offending per-mille rate.
        rate: u64,
    },
    /// `FaultConfig::horizon_batches` is zero — the plan could never fire.
    ZeroFaultHorizon,
    /// `FaultConfig::stall_ns` is zero — a stall must freeze the replica
    /// for some time.
    ZeroStallDuration,
    /// `FaultConfig::straggle_window_batches` is zero — a straggle window
    /// must cover at least one batch.
    ZeroStraggleWindow,
    /// `FaultConfig::straggle_factor_x1024` is below 1024 — a straggler
    /// cannot be faster than 1×.
    StraggleFactorBelowUnit {
        /// The offending ×1024-scaled factor.
        factor_x1024: u64,
    },
    /// `ControlConfig::window_ns` is zero — the rate estimator needs a
    /// window to count arrivals over.
    ZeroControlWindow,
    /// `ControlConfig::alpha_x1024` is outside `1..=1024` — the EWMA weight
    /// must be a positive fraction of unity.
    ControlAlphaOutOfRange {
        /// The offending ×1024-scaled smoothing weight.
        alpha_x1024: u64,
    },
    /// A controller utilization band has `low > high` — the hysteresis band
    /// is inverted and the controller would thrash every window.
    InvertedUtilBand {
        /// The configured de-escalation threshold (×1024).
        low_x1024: u64,
        /// The configured escalation threshold (×1024).
        high_x1024: u64,
    },
    /// `AutoscaleConfig::min_replicas` is zero — a pool cannot scale below
    /// one live replica.
    ZeroMinReplicas,
    /// `AutoscaleConfig::min_replicas` exceeds `max_replicas` — the scaling
    /// range is empty.
    InvertedReplicaBounds {
        /// The configured floor.
        min: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// `StealConfig::imbalance_threshold` is zero — every launch would
    /// trigger a steal.
    ZeroStealThreshold,
    /// `StealConfig::max_steal` is zero — a steal must move at least one
    /// request.
    ZeroStealMax,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBatch => {
                write!(f, "batch policy: max_batch must be at least 1")
            }
            ConfigError::ZeroQueueCapacity => {
                write!(f, "scheduler config: queue_capacity must be at least 1")
            }
            ConfigError::QueueSmallerThanBatch {
                capacity,
                max_batch,
            } => write!(
                f,
                "scheduler config: queue_capacity {capacity} cannot hold one \
                 full batch of max_batch {max_batch}"
            ),
            ConfigError::InvertedDepthThresholds { low, high } => write!(
                f,
                "adaptive policy: depth_low {low} exceeds depth_high {high} \
                 (inverted hysteresis thresholds)"
            ),
            ConfigError::ZeroEvalCadence => {
                write!(f, "adaptive policy: eval_every_batches must be at least 1")
            }
            ConfigError::ZeroReplicas => {
                write!(f, "pool config: replicas must be at least 1")
            }
            ConfigError::Exec(e) => write!(f, "pool config: {e}"),
            ConfigError::FaultRateOutOfRange { rate } => {
                write!(f, "fault config: per-mille rate {rate} exceeds 1000")
            }
            ConfigError::ZeroFaultHorizon => {
                write!(f, "fault config: horizon_batches must be at least 1")
            }
            ConfigError::ZeroStallDuration => {
                write!(f, "fault config: stall_ns must be at least 1")
            }
            ConfigError::ZeroStraggleWindow => write!(
                f,
                "fault config: straggle_window_batches must be at least 1"
            ),
            ConfigError::StraggleFactorBelowUnit { factor_x1024 } => write!(
                f,
                "fault config: straggle_factor_x1024 {factor_x1024} is below \
                 1024 (a straggler cannot run faster than 1x)"
            ),
            ConfigError::ZeroControlWindow => {
                write!(f, "control config: window_ns must be at least 1")
            }
            ConfigError::ControlAlphaOutOfRange { alpha_x1024 } => write!(
                f,
                "control config: alpha_x1024 {alpha_x1024} is outside 1..=1024"
            ),
            ConfigError::InvertedUtilBand {
                low_x1024,
                high_x1024,
            } => write!(
                f,
                "control config: util_low_x1024 {low_x1024} exceeds \
                 util_high_x1024 {high_x1024} (inverted hysteresis band)"
            ),
            ConfigError::ZeroMinReplicas => {
                write!(f, "control config: min_replicas must be at least 1")
            }
            ConfigError::InvertedReplicaBounds { min, max } => write!(
                f,
                "control config: min_replicas {min} exceeds max_replicas {max}"
            ),
            ConfigError::ZeroStealThreshold => {
                write!(f, "control config: imbalance_threshold must be at least 1")
            }
            ConfigError::ZeroStealMax => {
                write!(f, "control config: max_steal must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ExecConfigError> for ConfigError {
    fn from(e: ExecConfigError) -> Self {
        ConfigError::Exec(e)
    }
}

impl Validate for BatchPolicy {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(())
    }
}

/// Full scheduler configuration: the batching policy plus the admission
/// bound of the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Batch coalescing policy.
    pub batch: BatchPolicy,
    /// Bounded-queue capacity. Submissions beyond it are rejected with
    /// [`SubmitError::QueueFull`] so overload degrades by shedding load,
    /// never by unbounded memory growth.
    pub queue_capacity: usize,
}

impl Validate for SchedulerConfig {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        self.batch.validate()?;
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.queue_capacity < self.batch.max_batch {
            return Err(ConfigError::QueueSmallerThanBatch {
                capacity: self.queue_capacity,
                max_batch: self.batch.max_batch,
            });
        }
        Ok(())
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            batch: BatchPolicy::default(),
            queue_capacity: 64,
        }
    }
}

/// How the router in front of a replica pool picks a replica for each
/// submission.
///
/// All three policies are pure functions of the submission sequence and the
/// queue depths at submission time, so a single-threaded submitter drives
/// them deterministically — the property the sharded determinism contract
/// builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Strict rotation in submission order.
    RoundRobin,
    /// The replica with the shallowest queue at submission time; ties break
    /// to the lowest replica index.
    LeastOutstanding,
    /// A stable integer hash of the request key — the affinity policy: the
    /// same key always lands on the same replica.
    Hashed,
    /// Power-of-two-choices: two seeded hash probes of the eligible set
    /// (both pure functions of the key), pick the one with the shallower
    /// queue; ties break to the lower replica index. Balances like
    /// [`RoutePolicy::LeastOutstanding`] without scanning every queue, and
    /// stays a pure function of (key, queue depths), so it replays.
    PowerOfTwo,
}

/// The documented salt for [`RoutePolicy::PowerOfTwo`]'s second hash probe:
/// the splitmix64 increment, so the two probes are independent mixes of the
/// same key. Changing it would silently re-route every key — it is part of
/// the determinism contract.
pub const P2C_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

impl RoutePolicy {
    /// Short label used in record names and CLI flags (`rr`, `lo`, `hash`,
    /// `p2c`).
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::LeastOutstanding => "lo",
            RoutePolicy::Hashed => "hash",
            RoutePolicy::PowerOfTwo => "p2c",
        }
    }

    /// Parses a label produced by [`Self::label`].
    pub fn parse(s: &str) -> Option<RoutePolicy> {
        match s {
            "rr" | "roundrobin" => Some(RoutePolicy::RoundRobin),
            "lo" | "leastoutstanding" => Some(RoutePolicy::LeastOutstanding),
            "hash" | "hashed" => Some(RoutePolicy::Hashed),
            "p2c" | "poweroftwo" => Some(RoutePolicy::PowerOfTwo),
            _ => None,
        }
    }
}

/// The stable 64-bit mixer behind [`RoutePolicy::Hashed`] (the splitmix64
/// finalizer): platform-independent, so hashed routing replays identically
/// everywhere.
pub fn route_hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SLO-aware mode selection: when a replica falls behind, step **up** the
/// configured [`SmtConfig`] ladder (dense → 2T → 4T), trading bounded
/// accuracy for T× virtual throughput — the paper's trade made operational:
/// under overload the system sheds *accuracy* instead of *requests*. When
/// the pressure clears, step back down toward the error-free baseline.
///
/// Two triggers escalate: the queue depth left behind a launched batch
/// reaching `depth_high`, or (optionally) the replica's observed p95 latency
/// reaching `p95_high_ns`. Both triggers are part of the lockstep
/// determinism contract: the latency feeding the p95 trigger goes through a
/// clock abstraction — the virtual [`crate::sim::ServiceModel`] clock in the
/// simulator *and* in the threaded pool's lockstep mode
/// (`ReplicaPool::start_lockstep`), where the coordination gate records
/// virtual latencies into the same fixed-bucket histogram. Only the
/// free-running threaded pool (`start`/`start_paused`) measures p95 on the
/// wall clock, so only that driver's p95 trigger timing is outside the
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Escalate one rung when the queue depth left behind a launched batch
    /// reaches this value.
    pub depth_high: usize,
    /// De-escalate one rung when that depth falls to this value or below.
    pub depth_low: usize,
    /// Optional escalation trigger on the replica's observed p95 latency in
    /// nanoseconds; 0 disables it.
    pub p95_high_ns: u64,
    /// Evaluate the policy only every this many batches (≥ 1) — a cooldown
    /// against mode thrash.
    pub eval_every_batches: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            depth_high: 8,
            depth_low: 1,
            p95_high_ns: 0,
            eval_every_batches: 1,
        }
    }
}

impl Validate for AdaptivePolicy {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.depth_low > self.depth_high {
            return Err(ConfigError::InvertedDepthThresholds {
                low: self.depth_low,
                high: self.depth_high,
            });
        }
        if self.eval_every_batches == 0 {
            return Err(ConfigError::ZeroEvalCadence);
        }
        Ok(())
    }
}

impl AdaptivePolicy {
    /// A policy that never leaves rung 0 — the "dense-only" baseline every
    /// adaptive sweep is compared against.
    pub fn pinned() -> Self {
        AdaptivePolicy {
            depth_high: usize::MAX,
            depth_low: 0,
            p95_high_ns: 0,
            eval_every_batches: 1,
        }
    }

    /// The pure decision function both scheduler drivers share: given the
    /// current rung, the ladder length, the queue depth left behind the
    /// batch, and the observed p95, returns the rung the *next* batch runs
    /// at.
    pub fn decide(&self, mode: usize, rungs: usize, depth: usize, p95_ns: u64) -> usize {
        let hot = depth >= self.depth_high || (self.p95_high_ns > 0 && p95_ns >= self.p95_high_ns);
        if hot {
            (mode + 1).min(rungs.saturating_sub(1))
        } else if mode > 0 && depth <= self.depth_low {
            mode - 1
        } else {
            mode
        }
    }
}

/// Capacity cap on every per-run batch log (`PoolBatchLog` in the pool,
/// `PoolBatchRecord` in the simulator). Entries past the cap are counted in
/// an explicit `dropped` counter instead of growing the log, keeping
/// million-request sweeps strictly constant-memory.
pub const BATCH_LOG_CAP: usize = 65_536;

/// Capacity cap on the per-replica [`ModeTransition`] log kept by
/// [`AdaptiveState`]. Transitions past the cap still *apply* (the mode
/// changes and the caller is notified) — only the retained history is
/// bounded, with the overflow counted in
/// [`AdaptiveState::dropped_transitions`].
pub const TRANSITION_LOG_CAP: usize = 16_384;

/// Capacity cap on the per-run response log kept by the simulators
/// (`SimOutcome::responses` / `PoolSimOutcome::responses`). Completions past
/// the cap still feed metrics and traces — only the retained `(id, logits)`
/// pairs are bounded, with the overflow counted in a `dropped_responses`
/// counter, so 10^6–10^7-request sweeps stay constant-memory.
pub const RESPONSE_LOG_CAP: usize = 65_536;

/// Capacity cap on the per-run rejected-id log kept by the simulators.
/// Rejections past the cap still count in [`crate::metrics::ServeMetrics`];
/// only the retained id list is bounded, with the overflow counted in a
/// `dropped_rejections` counter.
pub const REJECTION_LOG_CAP: usize = 65_536;

/// Capacity cap on the controller's [`crate::control::ControlEvent`] log.
/// Decisions past the cap still *apply* (the live set, predictive floor, and
/// queues all change) — only the retained event history is bounded, with the
/// overflow counted in a `dropped_control_events` counter.
pub const CONTROL_LOG_CAP: usize = 16_384;

/// One adaptive mode switch, recorded identically by the threaded pool and
/// the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTransition {
    /// Replica that switched.
    pub replica: usize,
    /// Replica-local batch count at the moment of evaluation (1-based: the
    /// first launched batch is 1).
    pub batch_index: u64,
    /// Ladder rung before the switch.
    pub from: usize,
    /// Ladder rung after the switch.
    pub to: usize,
    /// Queue depth that triggered the evaluation.
    pub queue_depth: usize,
}

/// Per-replica adaptive-policy state machine: wraps [`AdaptivePolicy`] with
/// the current rung, the evaluation cadence, and the transition log. The
/// threaded pool and the virtual-clock simulator both drive this exact type,
/// which is what makes their mode transitions comparable bit-for-bit.
#[derive(Debug, Clone)]
pub struct AdaptiveState {
    policy: AdaptivePolicy,
    replica: usize,
    rungs: usize,
    mode: usize,
    batches_seen: u64,
    transitions: Vec<ModeTransition>,
    dropped_transitions: u64,
}

impl AdaptiveState {
    /// Fresh state for `replica` over a ladder of `rungs` design points
    /// (clamped to at least 1), starting at rung 0.
    pub fn new(policy: AdaptivePolicy, replica: usize, rungs: usize) -> Self {
        AdaptiveState {
            policy,
            replica,
            rungs: rungs.max(1),
            mode: 0,
            batches_seen: 0,
            transitions: Vec::new(),
            dropped_transitions: 0,
        }
    }

    /// The rung the next batch executes at.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Mode switches so far, in order.
    pub fn transitions(&self) -> &[ModeTransition] {
        &self.transitions
    }

    /// Consumes the state, yielding the transition log.
    pub fn into_transitions(self) -> Vec<ModeTransition> {
        self.transitions
    }

    /// Transitions that applied but were not retained because the log hit
    /// [`TRANSITION_LOG_CAP`].
    pub fn dropped_transitions(&self) -> u64 {
        self.dropped_transitions
    }

    /// Observes one launched batch (called *after* its latencies were
    /// recorded): every `eval_every_batches` batches the policy is
    /// re-evaluated, and the switch — if any — applies from the next batch
    /// on. Returns the transition when the mode changed.
    pub fn observe_batch(
        &mut self,
        queue_depth_after: usize,
        p95_ns: u64,
    ) -> Option<ModeTransition> {
        self.batches_seen += 1;
        if !self
            .batches_seen
            .is_multiple_of(self.policy.eval_every_batches.max(1))
        {
            return None;
        }
        let next = self
            .policy
            .decide(self.mode, self.rungs, queue_depth_after, p95_ns);
        if next == self.mode {
            return None;
        }
        let transition = ModeTransition {
            replica: self.replica,
            batch_index: self.batches_seen,
            from: self.mode,
            to: next,
            queue_depth: queue_depth_after,
        };
        self.mode = next;
        if self.transitions.len() < TRANSITION_LOG_CAP {
            self.transitions.push(transition.clone());
        } else {
            self.dropped_transitions += 1;
        }
        Some(transition)
    }
}

/// Configuration of a replica pool: how many workers, how the router spreads
/// submissions across them, the per-replica scheduler, and the adaptive
/// mode-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of replica workers (clamped to at least 1).
    pub replicas: usize,
    /// Router policy in front of the per-replica queues.
    pub route: RoutePolicy,
    /// Per-replica batching and admission configuration.
    pub scheduler: SchedulerConfig,
    /// SLO-aware mode-selection policy (use [`AdaptivePolicy::pinned`] for a
    /// fixed design point).
    pub adaptive: AdaptivePolicy,
}

impl Validate for PoolConfig {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.replicas == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        self.scheduler.validate()?;
        self.adaptive.validate()
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            replicas: 1,
            route: RoutePolicy::RoundRobin,
            scheduler: SchedulerConfig::default(),
            adaptive: AdaptivePolicy::default(),
        }
    }
}

/// Typed admission-control rejection returned by `submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; the request was shed.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "request rejected: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "request rejected: server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Errors raised while building or executing sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The registry has no model under the requested id.
    UnknownModel(String),
    /// A request's input does not match the session's expected shape.
    BadRequest(String),
    /// Model calibration or execution failed.
    Model(String),
    /// A scheduler, pool, or execution configuration failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(id) => write!(f, "unknown model '{id}'"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Model(msg) => write!(f, "model execution failed: {msg}"),
            ServeError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<nbsmt_nn::NnError> for ServeError {
    fn from(e: nbsmt_nn::NnError) -> Self {
        ServeError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_speedups() {
        assert_eq!(SmtConfig::Dense.label(), "dense");
        assert_eq!(SmtConfig::Dense.speedup(), 1);
        assert_eq!(SmtConfig::sysmt_2t().label(), "2t");
        assert_eq!(SmtConfig::sysmt_2t().speedup(), 2);
        assert_eq!(SmtConfig::sysmt_4t().label(), "4t");
        assert_eq!(SmtConfig::sysmt_4t().speedup(), 4);
    }

    #[test]
    fn cache_keys_distinguish_configs() {
        let keys = [
            SmtConfig::Dense.cache_key(),
            SmtConfig::sysmt_2t().cache_key(),
            SmtConfig::sysmt_4t().cache_key(),
            SmtConfig::NbSmt {
                threads: ThreadCount::Two,
                policy: SharingPolicy::S_A,
                reorder: true,
                first_layer_1t: true,
            }
            .cache_key(),
        ];
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if i != j {
                    assert_ne!(keys[i], keys[j]);
                }
            }
        }
    }

    #[test]
    fn scheduler_config_rejects_invalid_values() {
        assert_eq!(SchedulerConfig::default().validate(), Ok(()));
        let zero_batch = SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 0,
                max_wait_ns: 0,
            },
            queue_capacity: 8,
        };
        assert_eq!(zero_batch.validate(), Err(ConfigError::ZeroBatch));
        let zero_capacity = SchedulerConfig {
            batch: BatchPolicy::default(),
            queue_capacity: 0,
        };
        assert_eq!(
            zero_capacity.validate(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        let tight = SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 32,
                max_wait_ns: 1,
            },
            queue_capacity: 4,
        };
        assert_eq!(
            tight.validate(),
            Err(ConfigError::QueueSmallerThanBatch {
                capacity: 4,
                max_batch: 32
            })
        );
    }

    #[test]
    fn adaptive_policy_rejects_invalid_values() {
        assert_eq!(AdaptivePolicy::default().validate(), Ok(()));
        assert_eq!(AdaptivePolicy::pinned().validate(), Ok(()));
        let inverted = AdaptivePolicy {
            depth_high: 2,
            depth_low: 5,
            p95_high_ns: 0,
            eval_every_batches: 1,
        };
        assert_eq!(
            inverted.validate(),
            Err(ConfigError::InvertedDepthThresholds { low: 5, high: 2 })
        );
        let no_cadence = AdaptivePolicy {
            eval_every_batches: 0,
            ..AdaptivePolicy::default()
        };
        assert_eq!(no_cadence.validate(), Err(ConfigError::ZeroEvalCadence));
    }

    #[test]
    fn route_policy_labels_round_trip_and_hash_is_stable() {
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::LeastOutstanding,
            RoutePolicy::Hashed,
            RoutePolicy::PowerOfTwo,
        ] {
            assert_eq!(RoutePolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(RoutePolicy::parse("nope"), None);
        // splitmix64 reference values — the hash must never drift, or hashed
        // routing stops replaying across versions.
        assert_eq!(route_hash(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(route_hash(1), 0x910a_2dec_8902_5cc1);
        assert_ne!(route_hash(2) % 4, route_hash(3) % 4);
    }

    #[test]
    fn adaptive_policy_escalates_and_recovers() {
        let policy = AdaptivePolicy {
            depth_high: 4,
            depth_low: 1,
            p95_high_ns: 0,
            eval_every_batches: 1,
        };
        // Deep queue walks up the ladder one rung at a time, clamped at the
        // top; shallow queue walks back down, clamped at 0.
        assert_eq!(policy.decide(0, 3, 4, 0), 1);
        assert_eq!(policy.decide(1, 3, 9, 0), 2);
        assert_eq!(policy.decide(2, 3, 9, 0), 2);
        assert_eq!(policy.decide(2, 3, 1, 0), 1);
        assert_eq!(policy.decide(0, 3, 0, 0), 0);
        // In-between depths hold the current mode.
        assert_eq!(policy.decide(1, 3, 2, 0), 1);
        // p95 trigger escalates independently of depth.
        let slo = AdaptivePolicy {
            p95_high_ns: 1_000,
            ..policy
        };
        assert_eq!(slo.decide(0, 3, 0, 2_000), 1);
        assert_eq!(slo.decide(0, 3, 0, 500), 0);
        // Pinned never moves.
        let pinned = AdaptivePolicy::pinned();
        assert_eq!(pinned.decide(0, 3, usize::MAX - 1, u64::MAX), 0);
    }

    #[test]
    fn adaptive_state_records_transitions_with_cooldown() {
        let policy = AdaptivePolicy {
            depth_high: 4,
            depth_low: 0,
            p95_high_ns: 0,
            eval_every_batches: 2,
        };
        let mut state = AdaptiveState::new(policy, 1, 3);
        assert_eq!(state.mode(), 0);
        // Batch 1: cooldown, no evaluation even though the queue is deep.
        assert_eq!(state.observe_batch(10, 0), None);
        // Batch 2: evaluated, escalates.
        let t = state.observe_batch(10, 0).expect("escalates");
        assert_eq!((t.replica, t.batch_index, t.from, t.to), (1, 2, 0, 1));
        assert_eq!(state.mode(), 1);
        // Batches 3–4: second escalation at the next evaluation point.
        assert_eq!(state.observe_batch(10, 0), None);
        assert!(state.observe_batch(10, 0).is_some());
        assert_eq!(state.mode(), 2);
        // Pressure clears: walks back down.
        assert_eq!(state.observe_batch(0, 0), None);
        let down = state.observe_batch(0, 0).expect("recovers");
        assert_eq!((down.from, down.to), (2, 1));
        assert_eq!(state.transitions().len(), 3);
        assert_eq!(state.dropped_transitions(), 0);
        assert_eq!(state.into_transitions().len(), 3);
    }

    #[test]
    fn transition_log_caps_retention_but_not_behavior() {
        // depth_high 1 / depth_low 0 with 2 rungs flips the mode on every
        // batch when the depth alternates 1, 0, 1, 0, ...
        let policy = AdaptivePolicy {
            depth_high: 1,
            depth_low: 0,
            p95_high_ns: 0,
            eval_every_batches: 1,
        };
        let mut state = AdaptiveState::new(policy, 0, 2);
        let total = TRANSITION_LOG_CAP as u64 + 100;
        for i in 0..total {
            let depth = if i % 2 == 0 { 1 } else { 0 };
            // Every observation still reports its transition even past the
            // retention cap.
            assert!(state.observe_batch(depth, 0).is_some());
        }
        assert_eq!(state.transitions().len(), TRANSITION_LOG_CAP);
        assert_eq!(state.dropped_transitions(), 100);
    }

    #[test]
    fn pool_config_rejects_invalid_values() {
        assert_eq!(PoolConfig::default().validate(), Ok(()));
        let no_replicas = PoolConfig {
            replicas: 0,
            ..PoolConfig::default()
        };
        assert_eq!(no_replicas.validate(), Err(ConfigError::ZeroReplicas));
        // Nested scheduler and adaptive errors surface through the pool.
        let bad_scheduler = PoolConfig {
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 0,
                    max_wait_ns: 0,
                },
                queue_capacity: 8,
            },
            ..PoolConfig::default()
        };
        assert_eq!(bad_scheduler.validate(), Err(ConfigError::ZeroBatch));
        let bad_adaptive = PoolConfig {
            adaptive: AdaptivePolicy {
                eval_every_batches: 0,
                ..AdaptivePolicy::default()
            },
            ..PoolConfig::default()
        };
        assert_eq!(bad_adaptive.validate(), Err(ConfigError::ZeroEvalCadence));
    }

    #[test]
    fn error_displays() {
        assert!(SubmitError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(SubmitError::Closed.to_string().contains("shut down"));
        assert!(ServeError::UnknownModel("x".into())
            .to_string()
            .contains("'x'"));
        assert!(ServeError::Config(ConfigError::ZeroReplicas)
            .to_string()
            .contains("replicas"));
        assert!(ConfigError::Exec(ExecConfigError::ZeroThreads)
            .to_string()
            .contains("threads"));
    }
}
