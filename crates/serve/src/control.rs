//! Pool-level control plane: replica autoscaling, bounded work stealing,
//! and predictive NB-SMT mode switching above [`crate::pool::ReplicaPool`]
//! and [`crate::sim::simulate_pool`].
//!
//! The per-replica [`crate::config::AdaptiveState`] ladder is purely
//! *reactive*: a replica waits for its own queue to back up (or its p95 to
//! blow past the SLO) before trading accuracy for throughput. The
//! [`PoolController`] adds the *proactive* half:
//!
//! * **Rate estimation** — [`RateEstimator`] maintains an integer
//!   fixed-point (×1024) EWMA of arrivals per window. Pure integer
//!   arithmetic, no `libm`, no floats: the estimate is bit-stable across
//!   platforms and thread counts, like [`crate::traffic`].
//! * **Predictive mode switching** — from the forecast arrival rate the
//!   controller computes the pool's utilization at each NB-SMT rung and
//!   raises a *floor* under every replica's reactive mode before the queues
//!   back up. The reactive ladder stays active as the fallback: the executed
//!   rung is `max(reactive mode, predictive floor)`.
//! * **Autoscaling** — the live replica count scales up/down within
//!   `[min_replicas, max_replicas]` against a target utilization band.
//!   Scale-down drains the victim's queue through the crash-handoff rule
//!   ([`crate::faults::pick_handoff_target`]), so permits reconcile exactly
//!   as they do for crashes.
//! * **Work stealing** — after each batch launch the controller may move a
//!   bounded number of not-yet-batched requests from the deepest to the
//!   shallowest live queue ([`StealConfig`]), taming routing skew that
//!   [`crate::config::RoutePolicy::Hashed`] affinity can produce.
//!
//! **Determinism.** Every decision is a pure function of (arrival trace,
//! configuration): windows roll on arrival timestamps, utilization is
//! integer arithmetic over the [`crate::sim::ServiceModel`]'s per-rung
//! service costs, and steal targets derive from queue depths with explicit
//! tie-breaks. Both drivers — the discrete-event simulator and the threaded
//! lockstep pool — call the controller at the same lifecycle points, so
//! autoscale events, steal events, and predictive transitions are part of
//! the extended lockstep bit-identical contract (`serve_determinism.rs`).

use crate::config::{ConfigError, CONTROL_LOG_CAP};
use nbsmt_tensor::validate::Validate;

/// Predictive mode-switching band: the controller raises the ladder floor
/// while forecast utilization at the current floor exceeds `util_high_x1024`
/// and lowers it one rung when the rung below would sit at or under
/// `util_low_x1024` (hysteresis, exactly like the reactive depth band).
///
/// Utilization is ×1024 fixed point: 1024 = 100% of the live replicas busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictiveConfig {
    /// Escalate the floor while forecast utilization exceeds this (×1024).
    pub util_high_x1024: u64,
    /// De-escalate one rung when the rung below fits under this (×1024).
    pub util_low_x1024: u64,
}

/// Autoscaling band: the live replica count steps up while forecast
/// utilization exceeds `util_high_x1024` (at most one replica per estimator
/// window) and steps down when one fewer replica would still sit at or
/// under `util_low_x1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleConfig {
    /// Fewest live replicas the controller may scale down to (≥ 1).
    pub min_replicas: usize,
    /// Most live replicas the controller may scale up to (capped at the
    /// pool's allocated replica count).
    pub max_replicas: usize,
    /// Scale up while forecast utilization exceeds this (×1024).
    pub util_high_x1024: u64,
    /// Scale down when `live - 1` replicas would fit under this (×1024).
    pub util_low_x1024: u64,
}

/// Bounded work stealing: after each batch launch, if the deepest live
/// queue exceeds the shallowest by at least `imbalance_threshold`, up to
/// `max_steal` not-yet-batched requests move from the deep queue's tail to
/// the shallow one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Minimum depth difference (deepest − shallowest) that triggers a
    /// steal (≥ 1).
    pub imbalance_threshold: usize,
    /// Most requests one steal may move (≥ 1).
    pub max_steal: usize,
}

/// Full controller configuration: the shared EWMA estimator plus the three
/// independently optional mechanisms. With all three `None` the controller
/// is a pure observer (it still estimates the rate and accounts
/// replica-seconds, but never intervenes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlConfig {
    /// EWMA smoothing weight ×1024, in `1..=1024` (1024 = no smoothing:
    /// each window replaces the estimate).
    pub alpha_x1024: u64,
    /// Estimator window length in nanoseconds (≥ 1). Windows roll on
    /// arrival timestamps, so the estimator — like everything else in the
    /// contract — is clocked by the trace, not the host.
    pub window_ns: u64,
    /// Predictive mode switching, or `None` to leave the ladder fully
    /// reactive.
    pub predictive: Option<PredictiveConfig>,
    /// Replica autoscaling, or `None` to keep every replica live.
    pub autoscale: Option<AutoscaleConfig>,
    /// Bounded work stealing, or `None` to never rebalance queues.
    pub steal: Option<StealConfig>,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            alpha_x1024: 256,
            window_ns: 4_000_000, // 4 ms
            predictive: None,
            autoscale: None,
            steal: None,
        }
    }
}

impl Validate for ControlConfig {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.window_ns == 0 {
            return Err(ConfigError::ZeroControlWindow);
        }
        if self.alpha_x1024 == 0 || self.alpha_x1024 > 1024 {
            return Err(ConfigError::ControlAlphaOutOfRange {
                alpha_x1024: self.alpha_x1024,
            });
        }
        for band in [
            self.predictive
                .map(|p| (p.util_low_x1024, p.util_high_x1024)),
            self.autoscale
                .map(|a| (a.util_low_x1024, a.util_high_x1024)),
        ]
        .into_iter()
        .flatten()
        {
            if band.0 > band.1 {
                return Err(ConfigError::InvertedUtilBand {
                    low_x1024: band.0,
                    high_x1024: band.1,
                });
            }
        }
        if let Some(a) = self.autoscale {
            if a.min_replicas == 0 {
                return Err(ConfigError::ZeroMinReplicas);
            }
            if a.min_replicas > a.max_replicas {
                return Err(ConfigError::InvertedReplicaBounds {
                    min: a.min_replicas,
                    max: a.max_replicas,
                });
            }
        }
        if let Some(s) = self.steal {
            if s.imbalance_threshold == 0 {
                return Err(ConfigError::ZeroStealThreshold);
            }
            if s.max_steal == 0 {
                return Err(ConfigError::ZeroStealMax);
            }
        }
        Ok(())
    }
}

/// Integer fixed-point EWMA of arrivals per window — the forecast the
/// controller acts on.
///
/// The estimator is clocked by arrival timestamps: `observe_arrival(t)`
/// first folds every window boundary at or before `t` into the estimate
/// (`rate ← α·count + (1−α)·rate`, all ×1024 integer arithmetic), then
/// counts the arrival into the open window. Long idle gaps fast-forward in
/// O(1) once the estimate has decayed to zero, so a sparse trace cannot
/// make observation cost unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateEstimator {
    alpha_x1024: u64,
    window_ns: u64,
    window_start_ns: u64,
    in_window: u64,
    rate_x1024: u64,
}

impl RateEstimator {
    /// A fresh estimator (rate 0) with the given smoothing weight and
    /// window, both as validated by [`ControlConfig`].
    pub fn new(alpha_x1024: u64, window_ns: u64) -> RateEstimator {
        RateEstimator {
            alpha_x1024: alpha_x1024.clamp(1, 1024),
            window_ns: window_ns.max(1),
            window_start_ns: 0,
            in_window: 0,
            rate_x1024: 0,
        }
    }

    /// Current smoothed arrivals-per-window estimate, ×1024.
    pub fn rate_x1024(&self) -> u64 {
        self.rate_x1024
    }

    /// The open window's start timestamp [ns].
    pub fn window_start_ns(&self) -> u64 {
        self.window_start_ns
    }

    /// The configured window length [ns].
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Folds the closed window into the estimate and opens the next one.
    fn roll_once(&mut self) {
        let alpha = u128::from(self.alpha_x1024);
        let blended = alpha * u128::from(self.in_window) * 1024
            + (1024 - alpha) * u128::from(self.rate_x1024);
        self.rate_x1024 = (blended / 1024).min(u128::from(u64::MAX)) as u64;
        self.in_window = 0;
        self.window_start_ns = self.window_start_ns.saturating_add(self.window_ns);
    }

    /// True when the window holding `t_ns` is past the open one.
    fn needs_roll(&self, t_ns: u64) -> bool {
        t_ns >= self.window_start_ns.saturating_add(self.window_ns)
    }

    /// Jumps the open window forward to the one holding `t_ns` — only
    /// correct once the estimate has decayed to zero (every skipped roll
    /// would be a no-op).
    fn fast_forward(&mut self, t_ns: u64) {
        debug_assert_eq!(self.rate_x1024, 0);
        debug_assert_eq!(self.in_window, 0);
        let skip = (t_ns - self.window_start_ns) / self.window_ns;
        self.window_start_ns = self
            .window_start_ns
            .saturating_add(skip.saturating_mul(self.window_ns));
    }

    /// Observes one arrival at `t_ns` (non-decreasing across calls): rolls
    /// every window boundary at or before `t_ns`, then counts the arrival.
    pub fn observe_arrival(&mut self, t_ns: u64) {
        while self.needs_roll(t_ns) {
            self.roll_once();
            if self.rate_x1024 == 0 && self.in_window == 0 {
                self.fast_forward(t_ns);
                break;
            }
        }
        self.in_window += 1;
    }
}

/// One controller decision, timestamped at the estimator-window boundary
/// (scale/shift) or batch-launch instant (steal) that produced it — part of
/// the extended lockstep contract: the threaded pool and the simulator
/// record bit-identical event streams on the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEvent {
    /// Virtual timestamp of the decision [ns].
    pub at_ns: u64,
    /// What the controller decided.
    pub kind: ControlEventKind,
}

/// The decision a [`ControlEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEventKind {
    /// The predictive floor moved (up under forecast load, down one rung
    /// with hysteresis when load clears).
    PredictiveShift {
        /// Floor rung before the shift.
        from: usize,
        /// Floor rung after the shift.
        to: usize,
    },
    /// The live replica count grew by one.
    ScaleUp {
        /// Live count before.
        from: usize,
        /// Live count after.
        to: usize,
    },
    /// The live replica count shrank by one; replica index `to` was
    /// deactivated and its queue drained through the handoff rule.
    ScaleDown {
        /// Live count before.
        from: usize,
        /// Live count after (also the deactivated replica's index).
        to: usize,
    },
    /// `moved` queued requests moved from the tail of replica `from`'s
    /// queue to replica `to`'s.
    Steal {
        /// The deepest (victim) replica.
        from: usize,
        /// The shallowest (thief) replica.
        to: usize,
        /// Requests moved.
        moved: usize,
    },
}

/// The deterministic pool-level controller both drivers share.
///
/// Construction derives per-rung request cost from the same
/// [`crate::sim::ServiceModel`] the virtual clock runs on; thereafter the
/// drivers call [`Self::on_arrival`] at every admission (before routing)
/// and [`Self::steal_check`] after every batch launch, and apply the
/// returned events mechanically. All state transitions happen inside the
/// controller, so the two drivers cannot diverge.
#[derive(Debug, Clone)]
pub struct PoolController {
    cfg: ControlConfig,
    /// Virtual cost of one single-request batch at each ladder rung [ns] —
    /// the unit the utilization forecast is denominated in.
    rung_work_ns: Vec<u64>,
    pool_replicas: usize,
    estimator: RateEstimator,
    floor: usize,
    live: usize,
    events: Vec<ControlEvent>,
    dropped_events: u64,
    replica_ns: u128,
    last_live_change_ns: u64,
}

impl PoolController {
    /// Builds a controller for a pool of `pool_replicas` workers over a
    /// ladder whose rung `m` serves one request in `rung_work_ns[m]` virtual
    /// nanoseconds (must be non-empty; derive it from
    /// [`crate::sim::ServiceModel::single_ns`] per session).
    ///
    /// The live count starts at `min(max_replicas, pool_replicas)` (or the
    /// full pool without autoscaling) — the controller scales *down* into
    /// lulls rather than starting cold.
    ///
    /// # Errors
    ///
    /// Any [`ControlConfig`] validation error, plus
    /// [`ConfigError::InvertedReplicaBounds`] when `min_replicas` exceeds
    /// the pool's allocated replica count (the effective ceiling).
    pub fn new(
        cfg: ControlConfig,
        rung_work_ns: Vec<u64>,
        pool_replicas: usize,
    ) -> Result<PoolController, ConfigError> {
        cfg.validate()?;
        assert!(
            !rung_work_ns.is_empty(),
            "controller needs at least one ladder rung"
        );
        let live = match cfg.autoscale {
            Some(a) => {
                if a.min_replicas > pool_replicas {
                    return Err(ConfigError::InvertedReplicaBounds {
                        min: a.min_replicas,
                        max: pool_replicas,
                    });
                }
                a.max_replicas.min(pool_replicas)
            }
            None => pool_replicas,
        };
        Ok(PoolController {
            estimator: RateEstimator::new(cfg.alpha_x1024, cfg.window_ns),
            cfg,
            rung_work_ns,
            pool_replicas,
            floor: 0,
            live,
            events: Vec::new(),
            dropped_events: 0,
            replica_ns: 0,
            last_live_change_ns: 0,
        })
    }

    /// Replicas currently live (routed to and stolen among). Indices at or
    /// past this count are deactivated.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The predictive ladder floor under every replica's reactive mode.
    pub fn floor(&self) -> usize {
        self.floor
    }

    /// The rung a batch executes at: the reactive mode raised to the
    /// predictive floor, clamped to the ladder.
    pub fn effective_mode(&self, reactive_mode: usize) -> usize {
        reactive_mode
            .max(self.floor)
            .min(self.rung_work_ns.len() - 1)
    }

    /// Read access to the shared estimator.
    pub fn estimator(&self) -> &RateEstimator {
        &self.estimator
    }

    /// Events recorded so far (capped at
    /// [`crate::config::CONTROL_LOG_CAP`]).
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Events that applied but were not retained past the cap.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Consumes the controller, yielding the event log and the overflow
    /// count.
    pub fn into_events(self) -> (Vec<ControlEvent>, u64) {
        (self.events, self.dropped_events)
    }

    /// Forecast utilization ×1024 (1024 = every live replica busy): the
    /// expected service demand per window at rung `rung` over `live`
    /// replicas' capacity.
    fn util_x1024(&self, rate_x1024: u64, live: usize, rung: usize) -> u64 {
        let demand = u128::from(rate_x1024) * u128::from(self.rung_work_ns[rung]);
        let capacity = live.max(1) as u128 * u128::from(self.cfg.window_ns);
        (demand / capacity).min(u128::from(u64::MAX)) as u64
    }

    fn push_event(&mut self, at_ns: u64, kind: ControlEventKind) -> ControlEvent {
        let event = ControlEvent { at_ns, kind };
        if self.events.len() < CONTROL_LOG_CAP {
            self.events.push(event);
        } else {
            self.dropped_events += 1;
        }
        event
    }

    /// Accumulates replica-seconds up to `at_ns` and moves the live count.
    fn set_live(&mut self, at_ns: u64, to: usize) {
        self.replica_ns +=
            self.live as u128 * u128::from(at_ns.saturating_sub(self.last_live_change_ns));
        self.last_live_change_ns = self.last_live_change_ns.max(at_ns);
        self.live = to;
    }

    /// One controller evaluation at window boundary `at_ns`: predictive
    /// floor first (it changes the rung the utilization forecast runs at),
    /// then at most one autoscale step.
    fn evaluate(&mut self, at_ns: u64, out: &mut Vec<ControlEvent>) {
        let rate = self.estimator.rate_x1024;
        if let Some(p) = self.cfg.predictive {
            let rungs = self.rung_work_ns.len();
            let target = (0..rungs)
                .find(|&m| self.util_x1024(rate, self.live, m) <= p.util_high_x1024)
                .unwrap_or(rungs - 1);
            if target > self.floor {
                let ev = self.push_event(
                    at_ns,
                    ControlEventKind::PredictiveShift {
                        from: self.floor,
                        to: target,
                    },
                );
                out.push(ev);
                self.floor = target;
            } else if target < self.floor
                && self.util_x1024(rate, self.live, self.floor - 1) <= p.util_low_x1024
            {
                let ev = self.push_event(
                    at_ns,
                    ControlEventKind::PredictiveShift {
                        from: self.floor,
                        to: self.floor - 1,
                    },
                );
                out.push(ev);
                self.floor -= 1;
            }
        }
        if let Some(a) = self.cfg.autoscale {
            let ceiling = a.max_replicas.min(self.pool_replicas);
            if self.live < ceiling
                && self.util_x1024(rate, self.live, self.floor) > a.util_high_x1024
            {
                let ev = self.push_event(
                    at_ns,
                    ControlEventKind::ScaleUp {
                        from: self.live,
                        to: self.live + 1,
                    },
                );
                out.push(ev);
                self.set_live(at_ns, self.live + 1);
            } else if self.live > a.min_replicas
                && self.util_x1024(rate, self.live - 1, self.floor) <= a.util_low_x1024
            {
                let ev = self.push_event(
                    at_ns,
                    ControlEventKind::ScaleDown {
                        from: self.live,
                        to: self.live - 1,
                    },
                );
                out.push(ev);
                self.set_live(at_ns, self.live - 1);
            }
        }
    }

    /// Observes one arrival at `t_ns` (non-decreasing): rolls the estimator
    /// over every window boundary at or before `t_ns`, re-evaluating the
    /// controller at each boundary, and returns the events produced — the
    /// driver applies [`ControlEventKind::ScaleDown`] by draining the
    /// deactivated replica's queue through the handoff rule, and gates
    /// routing eligibility on [`Self::live`]. Idle gaps fast-forward once
    /// the estimate has decayed and the controller reached its fixed point.
    pub fn on_arrival(&mut self, t_ns: u64) -> Vec<ControlEvent> {
        let mut out = Vec::new();
        while self.estimator.needs_roll(t_ns) {
            let boundary = self
                .estimator
                .window_start_ns
                .saturating_add(self.estimator.window_ns);
            self.estimator.roll_once();
            let before = out.len();
            self.evaluate(boundary, &mut out);
            if self.estimator.rate_x1024 == 0
                && self.estimator.in_window == 0
                && out.len() == before
            {
                self.estimator.fast_forward(t_ns);
                break;
            }
        }
        self.estimator.in_window += 1;
        out
    }

    /// Steal evaluation after a batch launch at `at_ns`: `depths` holds
    /// `(replica index, queue length)` for every live, non-crashed,
    /// admitting replica in ascending index order; `capacity` bounds the
    /// thief's queue. Returns the steal event to apply — move `moved`
    /// requests from the tail of `from`'s queue to the tail of `to`'s — or
    /// `None` when balanced. Deepest and shallowest tie-break to the lowest
    /// index; the transfer size is half the imbalance, clamped to
    /// `max_steal` and the thief's free capacity.
    pub fn steal_check(
        &mut self,
        at_ns: u64,
        depths: &[(usize, usize)],
        capacity: usize,
    ) -> Option<ControlEvent> {
        let s = self.cfg.steal?;
        if depths.len() < 2 {
            return None;
        }
        let mut deep = depths[0];
        let mut shallow = depths[0];
        for &d in &depths[1..] {
            if d.1 > deep.1 {
                deep = d;
            }
            if d.1 < shallow.1 {
                shallow = d;
            }
        }
        let diff = deep.1 - shallow.1;
        if diff < s.imbalance_threshold {
            return None;
        }
        let moved = (diff / 2)
            .max(1)
            .min(s.max_steal)
            .min(capacity.saturating_sub(shallow.1));
        if moved == 0 {
            return None;
        }
        Some(self.push_event(
            at_ns,
            ControlEventKind::Steal {
                from: deep.0,
                to: shallow.0,
                moved,
            },
        ))
    }

    /// Closes the replica-seconds account at the run's makespan and returns
    /// total live-replica nanoseconds — the cost axis autoscaling trades
    /// against sheds. Call once, after the last event.
    pub fn finalize_replica_ns(&mut self, makespan_ns: u64) -> u64 {
        self.replica_ns +=
            self.live as u128 * u128::from(makespan_ns.saturating_sub(self.last_live_change_ns));
        self.last_live_change_ns = self.last_live_change_ns.max(makespan_ns);
        self.replica_ns.min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictive_cfg() -> ControlConfig {
        ControlConfig {
            alpha_x1024: 512,
            window_ns: 1_000,
            predictive: Some(PredictiveConfig {
                util_high_x1024: 900,
                util_low_x1024: 500,
            }),
            autoscale: None,
            steal: None,
        }
    }

    #[test]
    fn config_validation_catches_every_bad_field() {
        assert_eq!(ControlConfig::default().validate(), Ok(()));
        let zero_window = ControlConfig {
            window_ns: 0,
            ..ControlConfig::default()
        };
        assert_eq!(zero_window.validate(), Err(ConfigError::ZeroControlWindow));
        for alpha in [0u64, 1025] {
            let bad = ControlConfig {
                alpha_x1024: alpha,
                ..ControlConfig::default()
            };
            assert_eq!(
                bad.validate(),
                Err(ConfigError::ControlAlphaOutOfRange { alpha_x1024: alpha })
            );
        }
        let inverted = ControlConfig {
            predictive: Some(PredictiveConfig {
                util_high_x1024: 100,
                util_low_x1024: 200,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(
            inverted.validate(),
            Err(ConfigError::InvertedUtilBand {
                low_x1024: 200,
                high_x1024: 100
            })
        );
        let zero_min = ControlConfig {
            autoscale: Some(AutoscaleConfig {
                min_replicas: 0,
                max_replicas: 4,
                util_high_x1024: 900,
                util_low_x1024: 400,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(zero_min.validate(), Err(ConfigError::ZeroMinReplicas));
        let inverted_bounds = ControlConfig {
            autoscale: Some(AutoscaleConfig {
                min_replicas: 8,
                max_replicas: 4,
                util_high_x1024: 900,
                util_low_x1024: 400,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(
            inverted_bounds.validate(),
            Err(ConfigError::InvertedReplicaBounds { min: 8, max: 4 })
        );
        let zero_threshold = ControlConfig {
            steal: Some(StealConfig {
                imbalance_threshold: 0,
                max_steal: 2,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(
            zero_threshold.validate(),
            Err(ConfigError::ZeroStealThreshold)
        );
        let zero_steal = ControlConfig {
            steal: Some(StealConfig {
                imbalance_threshold: 4,
                max_steal: 0,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(zero_steal.validate(), Err(ConfigError::ZeroStealMax));
        // min_replicas above the pool's allocation is rejected at
        // construction, where the effective ceiling is known.
        let cfg = ControlConfig {
            autoscale: Some(AutoscaleConfig {
                min_replicas: 4,
                max_replicas: 8,
                util_high_x1024: 900,
                util_low_x1024: 400,
            }),
            ..ControlConfig::default()
        };
        assert_eq!(
            PoolController::new(cfg, vec![100], 2).err(),
            Some(ConfigError::InvertedReplicaBounds { min: 4, max: 2 })
        );
    }

    #[test]
    fn estimator_converges_to_a_constant_rate() {
        let mut est = RateEstimator::new(256, 1_000);
        // 5 arrivals per 1000 ns window, 200 windows: the EWMA must settle
        // on exactly 5 × 1024 (integer arithmetic converges to the fixed
        // point from below and stays).
        for w in 0..200u64 {
            for k in 0..5u64 {
                est.observe_arrival(w * 1_000 + k * 100);
            }
        }
        est.observe_arrival(200 * 1_000); // roll the last window
        let settled = est.rate_x1024();
        assert!(
            (5 * 1024 - 8..=5 * 1024).contains(&settled),
            "settled at {settled}"
        );
    }

    #[test]
    fn estimator_responds_monotonically_to_a_step() {
        // Step from 2/window up to 10/window: the estimate must rise
        // monotonically toward the new level, never overshooting it.
        let mut est = RateEstimator::new(256, 1_000);
        for w in 0..50u64 {
            est.observe_arrival(w * 1_000);
            est.observe_arrival(w * 1_000 + 500);
        }
        let before = est.rate_x1024();
        let mut prev = before;
        for w in 50..120u64 {
            for k in 0..10u64 {
                est.observe_arrival(w * 1_000 + k * 100);
            }
            let now = est.rate_x1024();
            assert!(now >= prev, "window {w}: {now} < {prev}");
            assert!(now <= 10 * 1024, "window {w}: overshoot to {now}");
            prev = now;
        }
        assert!(prev > before * 3, "step must move the estimate: {prev}");
    }

    #[test]
    fn estimator_fast_forwards_long_idle_gaps() {
        let mut est = RateEstimator::new(1024, 1_000);
        est.observe_arrival(100);
        // A gap of ~10^15 windows must terminate (decay to zero, then O(1)
        // fast-forward) and land the open window on the arrival.
        est.observe_arrival(1_000_000_000_000_000_000);
        assert_eq!(est.rate_x1024(), 0);
        assert!(est.window_start_ns() <= 1_000_000_000_000_000_000);
        assert!(!est.needs_roll(1_000_000_000_000_000_000));
    }

    #[test]
    fn predictive_floor_rises_before_queues_and_falls_with_hysteresis() {
        // Rung costs 1000/500/250 ns vs a 1000 ns window: one replica
        // saturates at 1 req/window dense, 2 at 2T, 4 at 4T.
        let mut ctrl = PoolController::new(predictive_cfg(), vec![1_000, 500, 250], 1).unwrap();
        assert_eq!(ctrl.effective_mode(0), 0);
        // 3 arrivals/window sustained: dense util 3.0, 2T util 1.5, 4T 0.75
        // — the floor must climb to rung 2 from the forecast alone.
        let mut t = 0u64;
        for w in 0..40u64 {
            for k in 0..3u64 {
                t = w * 1_000 + k * 300;
                ctrl.on_arrival(t);
            }
        }
        assert_eq!(ctrl.floor(), 2, "events: {:?}", ctrl.events());
        assert_eq!(ctrl.effective_mode(0), 2, "floor overrides reactive");
        assert_eq!(ctrl.effective_mode(1), 2);
        // Load vanishes: the floor steps down one rung per window only once
        // the rung below clears util_low (hysteresis), ending at 0.
        ctrl.on_arrival(t + 200_000);
        assert_eq!(ctrl.floor(), 0, "events: {:?}", ctrl.events());
        let shifts: Vec<_> = ctrl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ControlEventKind::PredictiveShift { .. }))
            .collect();
        assert!(shifts.len() >= 3, "up shift plus two down shifts");
        // Down shifts are single-rung; boundaries are window-aligned.
        for e in ctrl.events() {
            assert_eq!(e.at_ns % 1_000, 0);
            if let ControlEventKind::PredictiveShift { from, to } = e.kind {
                assert!(to > from || from - to == 1);
            }
        }
    }

    #[test]
    fn autoscale_steps_within_bounds_and_accounts_replica_seconds() {
        let cfg = ControlConfig {
            alpha_x1024: 1024, // no smoothing: each window replaces the rate
            window_ns: 1_000,
            predictive: None,
            autoscale: Some(AutoscaleConfig {
                min_replicas: 1,
                max_replicas: 4,
                util_high_x1024: 900,
                util_low_x1024: 600,
            }),
            steal: None,
        };
        let mut ctrl = PoolController::new(cfg, vec![1_000], 4).unwrap();
        assert_eq!(ctrl.live(), 4, "starts at the ceiling");
        // One arrival per window: util at 3 replicas is ~0.33 ≤ 0.586 —
        // scale down one step per window until... util at live-1 replicas
        // must fit under util_low: at live=2, util(1) = 1.0 > 0.586, so the
        // controller settles at 2, never at min.
        for w in 0..20u64 {
            ctrl.on_arrival(w * 1_000);
        }
        assert_eq!(ctrl.live(), 2, "events: {:?}", ctrl.events());
        let downs = ctrl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ControlEventKind::ScaleDown { .. }))
            .count();
        assert_eq!(downs, 2);
        // Burst of 8/window: util at 2 replicas is 4.0 > 0.879 — scale up
        // one per window back to the ceiling of 4.
        for w in 20..40u64 {
            for k in 0..8u64 {
                ctrl.on_arrival(w * 1_000 + k * 100);
            }
        }
        assert_eq!(ctrl.live(), 4, "events: {:?}", ctrl.events());
        // Replica-seconds: strictly fewer than always-4, more than
        // always-2, and exact at the event boundaries.
        let makespan = 40_000;
        let total = ctrl.finalize_replica_ns(makespan);
        assert!(total < 4 * makespan, "scaling down must save capacity");
        assert!(total > 2 * makespan);
        // Recompute from the event log — the account must reconcile.
        let mut expect = 0u64;
        let mut live = 4u64;
        let mut last = 0u64;
        for e in ctrl.events() {
            if let ControlEventKind::ScaleUp { to, .. } | ControlEventKind::ScaleDown { to, .. } =
                e.kind
            {
                expect += live * (e.at_ns - last);
                live = to as u64;
                last = e.at_ns;
            }
        }
        expect += live * (makespan - last);
        assert_eq!(total, expect);
    }

    #[test]
    fn steal_targets_deepest_to_shallowest_with_bounds() {
        let cfg = ControlConfig {
            steal: Some(StealConfig {
                imbalance_threshold: 4,
                max_steal: 3,
            }),
            ..ControlConfig::default()
        };
        let mut ctrl = PoolController::new(cfg, vec![1_000], 4).unwrap();
        // Balanced: no steal.
        assert_eq!(
            ctrl.steal_check(10, &[(0, 3), (1, 2), (2, 3), (3, 1)], 64),
            None
        );
        // Imbalanced: half the diff, capped at max_steal.
        let ev = ctrl
            .steal_check(20, &[(0, 12), (1, 2), (2, 3), (3, 9)], 64)
            .expect("imbalance 10 triggers");
        assert_eq!(
            ev.kind,
            ControlEventKind::Steal {
                from: 0,
                to: 1,
                moved: 3
            }
        );
        assert_eq!(ev.at_ns, 20);
        // Ties break to the lowest index on both ends.
        let ev = ctrl
            .steal_check(30, &[(0, 9), (1, 1), (2, 9), (3, 1)], 64)
            .expect("triggers");
        assert_eq!(
            ev.kind,
            ControlEventKind::Steal {
                from: 0,
                to: 1,
                moved: 3
            }
        );
        // The thief's free capacity clamps the transfer; zero room → no
        // steal at all.
        let ev = ctrl
            .steal_check(40, &[(0, 12), (1, 62)], 64)
            .expect("imbalance 50 triggers");
        assert_eq!(
            ev.kind,
            ControlEventKind::Steal {
                from: 1,
                to: 0,
                moved: 3
            }
        );
        assert_eq!(ctrl.steal_check(50, &[(0, 64), (1, 70)], 64), None);
        // A single live replica can never steal.
        assert_eq!(ctrl.steal_check(60, &[(0, 99)], 64), None);
        // Without a steal config the check is inert.
        let mut off = PoolController::new(ControlConfig::default(), vec![1_000], 4).unwrap();
        assert_eq!(off.steal_check(70, &[(0, 99), (1, 0)], 64), None);
    }

    #[test]
    fn event_log_caps_retention_but_not_behavior() {
        // Alternate one window hot, one cold with no smoothing: the floor
        // flips every window, two events per flip cycle, far past the cap.
        let cfg = ControlConfig {
            alpha_x1024: 1024,
            window_ns: 1_000,
            predictive: Some(PredictiveConfig {
                util_high_x1024: 1024,
                util_low_x1024: 1024,
            }),
            autoscale: None,
            steal: None,
        };
        let mut ctrl = PoolController::new(cfg, vec![1_000, 500], 1).unwrap();
        let windows = CONTROL_LOG_CAP as u64 * 2 + 64;
        let mut flips = 0u64;
        for w in 0..windows {
            if w % 2 == 0 {
                // Hot window: 3 arrivals → dense util 3.0 > 1.0.
                for k in 0..3u64 {
                    ctrl.on_arrival(w * 1_000 + k * 100);
                }
            } else {
                // Cold window: 1 arrival → dense util ≤ 1.0 at next roll.
                flips += ctrl
                    .on_arrival(w * 1_000)
                    .iter()
                    .filter(|e| matches!(e.kind, ControlEventKind::PredictiveShift { .. }))
                    .count() as u64;
            }
        }
        assert_eq!(ctrl.events().len(), CONTROL_LOG_CAP);
        assert!(ctrl.dropped_events() > 0, "flips observed: {flips}");
        assert!(flips > 0, "floor kept flipping past the cap");
        let (events, dropped) = ctrl.into_events();
        assert_eq!(events.len(), CONTROL_LOG_CAP);
        assert!(dropped > 0);
    }

    #[test]
    fn observer_controller_never_intervenes() {
        let mut ctrl = PoolController::new(ControlConfig::default(), vec![1_000, 500], 8).unwrap();
        for w in 0..100u64 {
            for k in 0..50u64 {
                assert!(ctrl.on_arrival(w * 4_000_000 + k).is_empty());
            }
        }
        assert_eq!(ctrl.live(), 8);
        assert_eq!(ctrl.floor(), 0);
        assert_eq!(ctrl.effective_mode(1), 1);
        assert!(ctrl.events().is_empty());
        // Replica-seconds still account: full fleet for the whole run.
        assert_eq!(ctrl.finalize_replica_ns(1_000_000), 8_000_000);
    }
}
