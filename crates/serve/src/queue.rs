//! Bounded MPSC request queue and one-shot response handles.
//!
//! The queue is the admission-control point of the serving layer: `try_push`
//! never blocks and rejects with a typed error when the bound is hit, so
//! overload sheds load instead of growing memory. The scheduler side blocks
//! on `pop_blocking` / `pop_deadline` (the deadline variant implements the
//! `max_wait` half of the batching policy).
//!
//! [`response_channel`] is the one-shot completion primitive: the scheduler
//! keeps the [`ResponseSlot`], the client keeps the [`ResponseHandle`] and
//! blocks on `wait`. Dropping an uncompleted slot cancels the handle rather
//! than deadlocking it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::config::SubmitError;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    admissions_closed: bool,
}

/// A bounded multi-producer single-consumer queue with typed rejection.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `capacity` (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                admissions_closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues `item` or rejects it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Closed`] after
    /// [`Self::close`].
    pub fn try_push(&self, item: T) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.admissions_closed {
            return Err(SubmitError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` signals shutdown.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Blocks until an item is available, the queue closes, or `deadline`
    /// passes — the batching scheduler's `max_wait` primitive.
    pub fn pop_deadline(&self, deadline: Instant) -> PopResult<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return PopResult::Item(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopResult::TimedOut;
            }
            let (next, timeout) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("queue lock");
            state = next;
            if timeout.timed_out() && state.items.is_empty() {
                return if state.closed {
                    PopResult::Closed
                } else {
                    PopResult::TimedOut
                };
            }
        }
    }

    /// Drains up to `max` queued items in one lock without waiting — the
    /// scheduler claims everything already queued behind a batch's first
    /// request this way before falling back to deadline-bounded pops.
    pub fn drain_up_to(&self, max: usize) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock");
        let take = state.items.len().min(max);
        state.items.drain(..take).collect()
    }

    /// Collects one batch around `first`: claims everything already queued
    /// in one lock, then blocks on `deadline` for the remainder — the
    /// coalescing step shared by the single-session scheduler and every
    /// replica-pool worker. Returns between 1 and `max_batch` items.
    pub fn collect_batch(&self, first: T, max_batch: usize, deadline: Instant) -> Vec<T> {
        let mut batch = vec![first];
        if batch.len() < max_batch {
            batch.extend(self.drain_up_to(max_batch - batch.len()));
        }
        while batch.len() < max_batch {
            match self.pop_deadline(deadline) {
                PopResult::Item(item) => batch.push(item),
                PopResult::TimedOut | PopResult::Closed => break,
            }
        }
        batch
    }

    /// Closes the queue: future pushes are rejected, blocked pops drain the
    /// remaining items and then observe shutdown.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Closes *admissions only* — the fault-injection half-close: future
    /// pushes are rejected with [`SubmitError::Closed`], but blocked pops
    /// keep waiting (unlike [`Self::close`], which also signals the consumer
    /// to shut down once drained). A crashed or quarantined replica closes
    /// admissions first so no new request can slip in behind its drain.
    pub fn close_admissions(&self) {
        self.state.lock().expect("queue lock").admissions_closed = true;
    }

    /// Whether new submissions are currently rejected (full close or
    /// admissions-only close).
    pub fn is_admissions_closed(&self) -> bool {
        let state = self.state.lock().expect("queue lock");
        state.closed || state.admissions_closed
    }
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug)]
pub enum PopResult<T> {
    /// An item arrived before the deadline.
    Item(T),
    /// The deadline passed with the queue empty.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

struct SlotState<T> {
    value: Option<T>,
    cancelled: bool,
}

struct SlotInner<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

/// Scheduler-side completion half of a one-shot response channel.
pub struct ResponseSlot<T> {
    inner: Arc<SlotInner<T>>,
    completed: bool,
}

/// Client-side waiting half of a one-shot response channel.
pub struct ResponseHandle<T> {
    inner: Arc<SlotInner<T>>,
}

/// The request was dropped before a response was produced (scheduler
/// shutdown mid-flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// Creates a linked one-shot `(completer, waiter)` pair.
pub fn response_channel<T>() -> (ResponseSlot<T>, ResponseHandle<T>) {
    let inner = Arc::new(SlotInner {
        state: Mutex::new(SlotState {
            value: None,
            cancelled: false,
        }),
        ready: Condvar::new(),
    });
    (
        ResponseSlot {
            inner: Arc::clone(&inner),
            completed: false,
        },
        ResponseHandle { inner },
    )
}

impl<T> ResponseSlot<T> {
    /// Delivers the response and wakes the waiter.
    pub fn complete(mut self, value: T) {
        {
            let mut state = self.inner.state.lock().expect("slot lock");
            state.value = Some(value);
        }
        self.completed = true;
        self.inner.ready.notify_all();
    }
}

impl<T> Drop for ResponseSlot<T> {
    fn drop(&mut self) {
        if !self.completed {
            self.inner.state.lock().expect("slot lock").cancelled = true;
            self.inner.ready.notify_all();
        }
    }
}

impl<T> ResponseHandle<T> {
    /// Blocks until the response is delivered (or the request is cancelled).
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] when the scheduler dropped the request without
    /// completing it.
    pub fn wait(self) -> Result<T, Cancelled> {
        let mut state = self.inner.state.lock().expect("slot lock");
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.cancelled {
                return Err(Cancelled);
            }
            state = self.inner.ready.wait(state).expect("slot lock");
        }
    }

    /// Non-blocking probe: consumes the handle and returns the response if
    /// it is already available, or hands the handle back to keep waiting.
    /// (Consuming `self` is what makes "took the value, then blocked on
    /// `wait` forever" unrepresentable.)
    ///
    /// # Errors
    ///
    /// Returns the handle itself when no response has been delivered yet.
    pub fn try_take(self) -> Result<T, Self> {
        let value = self.inner.state.lock().expect("slot lock").value.take();
        match value {
            Some(v) => Ok(v),
            None => Err(self),
        }
    }

    /// Non-blocking probe that also observes cancellation — the primitive a
    /// hedging client polls two handles with: unlike [`Self::try_take`], a
    /// request shed by a dying replica resolves to [`TryWait::Cancelled`]
    /// instead of pending forever.
    pub fn try_wait(self) -> TryWait<T> {
        let mut state = self.inner.state.lock().expect("slot lock");
        if let Some(value) = state.value.take() {
            return TryWait::Ready(value);
        }
        if state.cancelled {
            return TryWait::Cancelled;
        }
        drop(state);
        TryWait::Pending(self)
    }
}

/// Outcome of a non-blocking [`ResponseHandle::try_wait`] probe.
pub enum TryWait<T> {
    /// The response arrived; the handle is consumed.
    Ready(T),
    /// The request was cancelled (slot dropped without completing).
    Cancelled,
    /// No response yet; the handle is returned to keep polling.
    Pending(ResponseHandle<T>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn push_pop_and_capacity_reject() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_blocking(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.drain_up_to(8), vec![2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(8), Err(SubmitError::Closed));
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn pop_deadline_times_out_and_receives() {
        let q = BoundedQueue::new(4);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert!(matches!(q.pop_deadline(deadline), PopResult::TimedOut));
        q.try_push(1).unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        assert!(matches!(q.pop_deadline(deadline), PopResult::Item(1)));
        q.close();
        assert!(matches!(
            q.pop_deadline(Instant::now() + Duration::from_millis(5)),
            PopResult::Closed
        ));
    }

    #[test]
    fn cross_thread_pop_wakes() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            producer.try_push(42).unwrap();
        });
        assert_eq!(q.pop_blocking(), Some(42));
        t.join().unwrap();
    }

    #[test]
    fn close_admissions_rejects_pushes_but_keeps_pops_alive() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close_admissions();
        assert!(q.is_admissions_closed());
        assert!(!q.is_closed(), "half-close must not signal shutdown");
        assert_eq!(q.try_push(2), Err(SubmitError::Closed));
        // Queued work still drains…
        assert_eq!(q.pop_blocking(), Some(1));
        // …and a deadline pop times out (consumer stays alive) rather than
        // observing Closed.
        assert!(matches!(
            q.pop_deadline(Instant::now() + Duration::from_millis(5)),
            PopResult::TimedOut
        ));
        q.close();
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn try_wait_observes_ready_pending_and_cancelled() {
        let (slot, handle) = response_channel::<u32>();
        let handle = match handle.try_wait() {
            TryWait::Pending(h) => h,
            TryWait::Ready(_) | TryWait::Cancelled => panic!("expected pending"),
        };
        slot.complete(11);
        assert!(matches!(handle.try_wait(), TryWait::Ready(11)));

        let (slot, handle) = response_channel::<u32>();
        drop(slot);
        assert!(matches!(handle.try_wait(), TryWait::Cancelled));
    }

    #[test]
    fn response_channel_completes_and_cancels() {
        let (slot, handle) = response_channel::<u32>();
        slot.complete(5);
        assert_eq!(handle.wait(), Ok(5));

        let (slot, handle) = response_channel::<u32>();
        let handle = handle.try_take().expect_err("no response delivered yet");
        drop(slot);
        assert_eq!(handle.wait(), Err(Cancelled));

        let (slot, handle) = response_channel::<u32>();
        slot.complete(9);
        assert_eq!(handle.try_take().ok(), Some(9));
    }

    #[test]
    fn response_channel_cross_thread() {
        let (slot, handle) = response_channel::<String>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.complete("done".to_string());
        });
        assert_eq!(handle.wait().unwrap(), "done");
        t.join().unwrap();
    }
}
