//! Deterministic virtual-clock serving simulator.
//!
//! Replays the exact micro-batching policy of the threaded server —
//! bounded-queue admission, `max_batch`/`max_wait` coalescing, serial batch
//! execution — as a discrete-event simulation over integer nanoseconds. The
//! model outputs are computed for real on an [`ExecContext`] (bit-identical
//! across host thread counts by the execution layer's contract), while
//! *time* comes from a [`ServiceModel`] instead of the wall clock, so two
//! runs of the same seeded trace produce identical batch compositions,
//! latencies, and metrics — on any machine, at any host thread count.
//!
//! Two arrival models are supported, matching the `nbsmt-bench` load
//! generator: **open loop** (a pre-generated arrival trace, e.g. Poisson)
//! and **closed loop** (N clients that submit, wait for the response, think,
//! and submit again — arrivals emerge from completions).

use std::collections::VecDeque;

use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Tensor;

use crate::config::{SchedulerConfig, ServeError};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::session::{Inference, Session};

/// Deterministic service-time model for the virtual clock.
///
/// A batch of `B` requests costs
/// `batch_overhead_ns + B * macs_per_sample * ns_per_mac_x1024 / 1024 /
/// speedup` nanoseconds, where `speedup` is the session's SMT design-point
/// speedup (1 for dense, T for a T-threaded SySMT). All integer arithmetic —
/// no floats, no platform-dependent rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Nanoseconds per dense MAC, scaled by 1024 (1024 = 1 ns/MAC).
    pub ns_per_mac_x1024: u64,
    /// Fixed per-batch launch cost in nanoseconds.
    pub batch_overhead_ns: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            // 2 ns per dense MAC (0.5 GMAC/s): a deliberately modest host
            // so quick-scale sweeps show real queueing behaviour.
            ns_per_mac_x1024: 2048,
            batch_overhead_ns: 20_000,
        }
    }
}

impl ServiceModel {
    /// Virtual service time of a batch of `batch` requests on `session`.
    pub fn service_ns(&self, session: &Session, batch: usize) -> u64 {
        let macs = session.macs_per_sample() as u128 * batch as u128;
        let work = macs * self.ns_per_mac_x1024 as u128 / 1024 / session.smt().speedup() as u128;
        self.batch_overhead_ns + work.min(u128::from(u64::MAX)) as u64
    }

    /// Service time of a single request (the natural unit for choosing
    /// offered loads relative to capacity).
    pub fn single_ns(&self, session: &Session) -> u64 {
        self.service_ns(session, 1)
    }
}

/// How requests arrive at the simulated server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Open loop: a fixed trace of arrival times (ns, ascending). Request
    /// `i` uses input `i % inputs.len()`.
    Open {
        /// Ascending arrival timestamps in virtual nanoseconds.
        arrivals_ns: Vec<u64>,
    },
    /// Closed loop: `clients` clients each submit at `t = 0`, wait for
    /// their response, think, and submit again until `total_requests` have
    /// been issued overall. The queue bound is raised to at least `clients`
    /// for the run — each client holds at most one slot, so a smaller bound
    /// would permanently orphan the shed clients.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Think time between receiving a response and the next submit.
        think_ns: u64,
        /// Total requests to issue across all clients.
        total_requests: usize,
    },
}

/// One launched batch in the simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Virtual launch time [ns].
    pub launch_ns: u64,
    /// Virtual completion time [ns].
    pub finish_ns: u64,
    /// Request ids coalesced into this batch, in queue order.
    pub request_ids: Vec<u64>,
    /// Queue depth left behind after the batch was drained.
    pub queue_depth_after: usize,
}

/// The full, deterministic outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// `(request id, inference)` for every completed request, in completion
    /// order.
    pub responses: Vec<(u64, Inference)>,
    /// Ids shed by admission control, in arrival order.
    pub rejected_ids: Vec<u64>,
    /// Every launched batch, in launch order.
    pub batches: Vec<BatchRecord>,
    /// Metrics snapshot over the virtual makespan.
    pub metrics: MetricsSnapshot,
    /// Virtual time at which the last batch finished [ns].
    pub makespan_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingArrival {
    id: u64,
    time_ns: u64,
    input_index: usize,
    client: usize,
}

/// Runs the simulation: `inputs` is the request-input pool, `arrivals`
/// the arrival process, `scheduler` the batching/admission policy, and
/// `service` the virtual-clock cost model. Model outputs are computed for
/// real on `ctx`.
///
/// # Errors
///
/// Propagates session-execution failures; rejects an empty input pool or an
/// unsorted open-loop trace as [`ServeError::BadRequest`].
pub fn simulate(
    session: &Session,
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    scheduler: SchedulerConfig,
    service: ServiceModel,
) -> Result<SimOutcome, ServeError> {
    if inputs.is_empty() {
        return Err(ServeError::BadRequest("empty request-input pool".into()));
    }
    let scheduler = scheduler.normalized();
    let max_batch = scheduler.batch.max_batch;
    let max_wait = scheduler.batch.max_wait_ns;
    let mut capacity = scheduler.queue_capacity;
    if let ArrivalProcess::Closed { clients, .. } = arrivals {
        // Closed loop: each client has at most one request in flight, so a
        // queue bound below the population would orphan clients forever (a
        // shed submission is never retried — the client simply dies). Raise
        // the bound to the client count: admission control is an open-loop
        // concern; a closed loop self-regulates by construction.
        capacity = capacity.max(*clients);
    }

    // Pending arrivals, always sorted by (time, id). Open loop prefills the
    // whole trace; closed loop seeds one submission per client and grows on
    // completions.
    let mut pending: VecDeque<PendingArrival> = VecDeque::new();
    let mut next_id = 0u64;
    let mut remaining_closed = 0usize;
    let think_ns = match arrivals {
        ArrivalProcess::Open { arrivals_ns } => {
            if arrivals_ns.windows(2).any(|w| w[0] > w[1]) {
                return Err(ServeError::BadRequest(
                    "open-loop arrival trace must be ascending".into(),
                ));
            }
            for &t in arrivals_ns {
                pending.push_back(PendingArrival {
                    id: next_id,
                    time_ns: t,
                    input_index: next_id as usize % inputs.len(),
                    client: 0,
                });
                next_id += 1;
            }
            0
        }
        ArrivalProcess::Closed {
            clients,
            think_ns,
            total_requests,
        } => {
            let clients = (*clients).max(1).min(*total_requests);
            remaining_closed = total_requests.saturating_sub(clients);
            for c in 0..clients {
                pending.push_back(PendingArrival {
                    id: next_id,
                    time_ns: 0,
                    input_index: next_id as usize % inputs.len(),
                    client: c,
                });
                next_id += 1;
            }
            *think_ns
        }
    };

    let mut queue: VecDeque<PendingArrival> = VecDeque::new();
    let mut metrics = ServeMetrics::new();
    let mut responses = Vec::new();
    let mut rejected_ids = Vec::new();
    let mut batches = Vec::new();
    let mut t_free = 0u64;

    while !pending.is_empty() || !queue.is_empty() {
        if queue.is_empty() {
            // Worker idle: fast-forward to the next arrival (always admitted
            // into an empty queue).
            let first = pending.pop_front().expect("pending nonempty");
            queue.push_back(first);
        }
        let oldest = queue.front().expect("queue nonempty").time_ns;
        // The worker can launch from `open`; the batch closes at `close`
        // unless it fills earlier (mirrors the threaded scheduler's
        // first-request-anchored deadline).
        let open = t_free.max(oldest);
        let close = open.max(oldest.saturating_add(max_wait));

        // Phase 1 — decide the launch instant without mutating state: the
        // earliest time >= `open` at which max_batch requests are queued, or
        // `close`.
        let mut launch = close;
        {
            let mut len = queue.len();
            if len >= max_batch {
                launch = open;
            } else {
                for arrival in pending.iter() {
                    if arrival.time_ns > close {
                        break;
                    }
                    if len < capacity {
                        len += 1;
                    }
                    if len >= max_batch {
                        launch = open.max(arrival.time_ns);
                        break;
                    }
                }
            }
        }

        // Phase 2 — replay admission for every arrival up to `launch`
        // against the bounded queue.
        while let Some(arrival) = pending.front().copied() {
            if arrival.time_ns > launch {
                break;
            }
            pending.pop_front();
            if queue.len() < capacity {
                queue.push_back(arrival);
            } else {
                rejected_ids.push(arrival.id);
                metrics.record_rejected();
            }
        }

        // Drain and execute the batch.
        let take = queue.len().min(max_batch);
        let batch: Vec<PendingArrival> = queue.drain(..take).collect();
        let batch_inputs: Vec<&Tensor<f32>> =
            batch.iter().map(|r| &inputs[r.input_index]).collect();
        let outputs = session.infer_batch_refs(ctx, &batch_inputs)?;
        let finish = launch.saturating_add(service.service_ns(session, batch.len()));
        metrics.record_batch(batch.len(), queue.len());
        for (request, inference) in batch.iter().zip(outputs) {
            metrics.record_latency(finish.saturating_sub(request.time_ns));
            responses.push((request.id, inference));
        }
        batches.push(BatchRecord {
            launch_ns: launch,
            finish_ns: finish,
            request_ids: batch.iter().map(|r| r.id).collect(),
            queue_depth_after: queue.len(),
        });
        t_free = finish;

        // Closed loop: each completed client thinks, then submits again
        // (completions are strictly after `launch`, so these arrivals can
        // never belong to the batch that produced them).
        if remaining_closed > 0 {
            for request in &batch {
                if remaining_closed == 0 {
                    break;
                }
                remaining_closed -= 1;
                let arrival = PendingArrival {
                    id: next_id,
                    time_ns: finish.saturating_add(think_ns),
                    input_index: next_id as usize % inputs.len(),
                    client: request.client,
                };
                next_id += 1;
                // Keep `pending` sorted by (time, id); completions share one
                // finish time so a linear scan from the back is cheap.
                let pos = pending
                    .iter()
                    .rposition(|p| (p.time_ns, p.id) <= (arrival.time_ns, arrival.id))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                pending.insert(pos, arrival);
            }
        }
    }

    let makespan_ns = t_free;
    Ok(SimOutcome {
        responses,
        rejected_ids,
        batches,
        metrics: metrics.snapshot(makespan_ns),
        makespan_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchPolicy, SmtConfig};
    use crate::session::compile_session;
    use nbsmt_workloads::synthnet::quick_synthnet;

    fn test_setup() -> (Session, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(23).expect("training succeeds");
        let calib = trained.calibration_inputs(8, 301);
        let s = trained.task.image_size;
        let session = compile_session(
            "synthnet",
            &trained.model,
            &[calib],
            SmtConfig::sysmt_2t(),
            [1, s, s],
        )
        .unwrap();
        let (inputs, _) = trained.sample_requests(8, 302);
        (session, inputs)
    }

    fn policy(max_batch: usize, max_wait_ns: u64, capacity: usize) -> SchedulerConfig {
        SchedulerConfig {
            batch: BatchPolicy {
                max_batch,
                max_wait_ns,
            },
            queue_capacity: capacity,
        }
    }

    #[test]
    fn widely_spaced_arrivals_run_unbatched() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let service = ServiceModel::default();
        let gap = service.single_ns(&session) * 4;
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..6).map(|i| i * gap).collect(),
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 64),
            service,
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 6);
        assert_eq!(out.metrics.batches, 6, "spaced arrivals must not coalesce");
        assert!(out.rejected_ids.is_empty());
    }

    #[test]
    fn simultaneous_arrivals_coalesce_to_max_batch() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0; 8],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 1_000_000, 64),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].request_ids, vec![0, 1, 2, 3]);
        assert_eq!(out.batches[1].request_ids, vec![4, 5, 6, 7]);
    }

    #[test]
    fn max_wait_closes_a_partial_batch() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        // Second arrival lands after the first's wait budget: two batches.
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0, 2_000],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 1_000),
            ServiceModel {
                ns_per_mac_x1024: 0,
                batch_overhead_ns: 10,
            },
        )
        .unwrap();
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].launch_ns, 1_000);
        // And within the budget: one batch.
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0, 500],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 1_000),
            ServiceModel {
                ns_per_mac_x1024: 0,
                batch_overhead_ns: 10,
            },
        )
        .unwrap();
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].request_ids, vec![0, 1]);
    }

    #[test]
    fn overload_sheds_and_accounts_every_request() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let n = 40u64;
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..n).map(|i| i * 10).collect(),
        };
        let service = ServiceModel::default(); // far slower than arrivals
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(2, 1_000, 4),
            service,
        )
        .unwrap();
        assert!(out.metrics.rejected > 0, "overload must shed load");
        assert_eq!(out.metrics.completed + out.metrics.rejected, n);
        assert_eq!(
            out.responses.len() + out.rejected_ids.len(),
            n as usize,
            "every request is either answered or rejected"
        );
        assert!(out.metrics.max_queue_depth <= 4 + 2);
    }

    #[test]
    fn closed_loop_population_survives_a_small_queue_bound() {
        // 16 clients against a capacity-4 scheduler: the bound is raised to
        // the population so no client is shed at t=0 and orphaned — every
        // request completes.
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Closed {
            clients: 16,
            think_ns: 1_000,
            total_requests: 48,
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 10_000, 4),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 48);
        assert!(out.rejected_ids.is_empty());
    }

    #[test]
    fn closed_loop_issues_exactly_total_requests() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Closed {
            clients: 3,
            think_ns: 1_000,
            total_requests: 12,
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 10_000, 16),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 12);
        assert!(out.rejected_ids.is_empty(), "closed loop cannot overflow");
        // No client ever has two requests in flight: at most `clients`
        // requests per batch.
        for batch in &out.batches {
            assert!(batch.request_ids.len() <= 3);
        }
    }

    #[test]
    fn simulation_is_bit_deterministic_across_runs() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..16).map(|i| i * 50_000).collect(),
        };
        let run = || {
            simulate(
                &session,
                &ctx,
                &inputs,
                &arrivals,
                policy(4, 100_000, 16),
                ServiceModel::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
