//! Deterministic virtual-clock serving simulator.
//!
//! Replays the exact micro-batching policy of the threaded server —
//! bounded-queue admission, `max_batch`/`max_wait` coalescing, serial batch
//! execution — as a discrete-event simulation over integer nanoseconds. The
//! model outputs are computed for real on an [`ExecContext`] (bit-identical
//! across host thread counts by the execution layer's contract), while
//! *time* comes from a [`ServiceModel`] instead of the wall clock, so two
//! runs of the same seeded trace produce identical batch compositions,
//! latencies, and metrics — on any machine, at any host thread count.
//!
//! Three arrival models are supported, matching the `nbsmt-bench` load
//! generator: **open loop** (a pre-generated arrival trace, e.g. Poisson),
//! **closed loop** (N clients that submit, wait for the response, think,
//! and submit again — arrivals emerge from completions), and **generated**
//! (a lazy, seeded [`TrafficModel`] stream — bursty MMPP, diurnal
//! envelopes, per-user sessions — that never materializes the trace, so
//! 10^6–10^7-request runs stay constant-memory; see [`simulate_pool_stats`]
//! for the matching constant-memory outcome path).

use std::borrow::Borrow;
use std::collections::VecDeque;

use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Tensor;
use nbsmt_tensor::validate::Validate;

use crate::config::{
    AdaptivePolicy, AdaptiveState, ModeTransition, PoolConfig, RoutePolicy, SchedulerConfig,
    ServeError, BATCH_LOG_CAP, REJECTION_LOG_CAP, RESPONSE_LOG_CAP,
};
use crate::control::{ControlConfig, ControlEvent, ControlEventKind, PoolController};
use crate::faults::{pick_handoff_target, pick_replica, FaultPlan, HandoffRecord, ReplicaFaults};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::session::{Inference, Session};
use crate::trace::{layer_intervals, LayerKernel, TraceEvent, TraceRecorder, TraceStage};
use crate::traffic::{GeneratedArrivals, SizeModel, TrafficModel};

/// Deterministic service-time model for the virtual clock.
///
/// A batch of `B` requests costs
/// `batch_overhead_ns + B * macs_per_sample * ns_per_mac_x1024 / 1024 /
/// speedup` nanoseconds, where `speedup` is the session's SMT design-point
/// speedup (1 for dense, T for a T-threaded SySMT). All integer arithmetic —
/// no floats, no platform-dependent rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Nanoseconds per dense MAC, scaled by 1024 (1024 = 1 ns/MAC).
    pub ns_per_mac_x1024: u64,
    /// Fixed per-batch launch cost in nanoseconds.
    pub batch_overhead_ns: u64,
    /// Per-request work multiplier keyed by router key. [`SizeModel::Unit`]
    /// (the default) reproduces the historical uniform-size arithmetic
    /// bit-exactly; a bounded-Pareto model makes service time scale with
    /// heterogeneous request MACs.
    pub size: SizeModel,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            // 2 ns per dense MAC (0.5 GMAC/s): a deliberately modest host
            // so quick-scale sweeps show real queueing behaviour.
            ns_per_mac_x1024: 2048,
            batch_overhead_ns: 20_000,
            size: SizeModel::Unit,
        }
    }
}

impl ServiceModel {
    /// Virtual service time of a batch of `batch` unit-size requests on
    /// `session` (the historical model; ignores [`ServiceModel::size`]).
    pub fn service_ns(&self, session: &Session, batch: usize) -> u64 {
        let macs = session.macs_per_sample() as u128 * batch as u128;
        let work = macs * self.ns_per_mac_x1024 as u128 / 1024 / session.smt().speedup() as u128;
        self.batch_overhead_ns + work.min(u128::from(u64::MAX)) as u64
    }

    /// Virtual service time of a batch whose requests carry the given
    /// router keys, with each request's MACs scaled by
    /// [`ServiceModel::size`]. For [`SizeModel::Unit`] every key weighs
    /// 1024/1024 and the result is bit-identical to
    /// [`ServiceModel::service_ns`] of the same batch length — the first
    /// `/ 1024` is exact — so unit-size runs are unchanged by construction.
    /// Used identically by the simulators and the threaded pool's lockstep
    /// gate, keeping heterogeneous sizes inside the determinism contract.
    pub fn batch_ns<I: IntoIterator<Item = u64>>(&self, session: &Session, keys: I) -> u64 {
        let total_x1024: u128 = keys
            .into_iter()
            .map(|k| self.size.size_x1024(k) as u128)
            .sum();
        let work = session.macs_per_sample() as u128 * total_x1024 * self.ns_per_mac_x1024 as u128
            / 1024
            / 1024
            / session.smt().speedup() as u128;
        self.batch_overhead_ns + work.min(u128::from(u64::MAX)) as u64
    }

    /// Service time of a single request (the natural unit for choosing
    /// offered loads relative to capacity).
    pub fn single_ns(&self, session: &Session) -> u64 {
        self.service_ns(session, 1)
    }
}

/// How requests arrive at the simulated server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Open loop: a fixed trace of arrival times (ns, ascending). Request
    /// `i` uses input `i % inputs.len()`.
    Open {
        /// Ascending arrival timestamps in virtual nanoseconds.
        arrivals_ns: Vec<u64>,
    },
    /// Closed loop: `clients` clients each submit at `t = 0`, wait for
    /// their response, think, and submit again until `total_requests` have
    /// been issued overall. The queue bound is raised to at least `clients`
    /// for the run — each client holds at most one slot, so a smaller bound
    /// would permanently orphan the shed clients.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Think time between receiving a response and the next submit.
        think_ns: u64,
        /// Total requests to issue across all clients.
        total_requests: usize,
    },
    /// Generated open loop: a seeded [`TrafficModel`] streamed lazily, one
    /// arrival at a time — the trace never materializes, so 10^7-request
    /// runs cost O(1) arrival memory. Request `i` uses input
    /// `i % inputs.len()` exactly like [`ArrivalProcess::Open`]; the
    /// stream's key (the user id under [`TrafficModel::Sessions`], the
    /// request index otherwise) feeds the router and the
    /// [`SizeModel`].
    Generated {
        /// The traffic model to stream.
        model: TrafficModel,
        /// Stream seed: same seed, same arrivals, on every platform.
        seed: u64,
        /// Number of arrivals to generate.
        n: u64,
    },
}

/// One launched batch in the simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Virtual launch time [ns].
    pub launch_ns: u64,
    /// Virtual completion time [ns].
    pub finish_ns: u64,
    /// Request ids coalesced into this batch, in queue order.
    pub request_ids: Vec<u64>,
    /// Queue depth left behind after the batch was drained.
    pub queue_depth_after: usize,
}

/// The full, deterministic outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// `(request id, inference)` for every completed request, in completion
    /// order.
    pub responses: Vec<(u64, Inference)>,
    /// Ids shed by admission control, in arrival order.
    pub rejected_ids: Vec<u64>,
    /// Every launched batch, in launch order.
    pub batches: Vec<BatchRecord>,
    /// Metrics snapshot over the virtual makespan.
    pub metrics: MetricsSnapshot,
    /// Completions not retained in `responses` past
    /// [`RESPONSE_LOG_CAP`] (or not computed at all on the
    /// [`simulate_pool_stats`] path) — `metrics.completed` still counts
    /// them, closing the accounting.
    pub dropped_responses: u64,
    /// Sheds not retained in `rejected_ids` past [`REJECTION_LOG_CAP`] —
    /// `metrics.rejected` still counts them.
    pub dropped_rejections: u64,
    /// Virtual time at which the last batch finished [ns].
    pub makespan_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingArrival {
    id: u64,
    /// Router/affinity key: equal to `id` for open and closed loops, the
    /// stream key (e.g. the session's user id) for generated arrivals.
    /// Feeds [`pick_replica`] and the [`SizeModel`].
    key: u64,
    time_ns: u64,
    /// Earliest virtual time the request may launch. Equal to `time_ns` for
    /// a fresh arrival; a crash handoff re-enqueues the request with
    /// `ready_ns` at the crash instant (it cannot launch on the survivor
    /// before it exists there), while `time_ns` keeps anchoring its latency.
    ready_ns: u64,
    input_index: usize,
    client: usize,
}

/// Runs the single-session simulation: `inputs` is the request-input pool,
/// `arrivals` the arrival process, `scheduler` the batching/admission
/// policy, and `service` the virtual-clock cost model. Model outputs are
/// computed for real on `ctx`.
///
/// This is the single-replica specialization of [`simulate_pool`]: one
/// replica, a pinned single-rung ladder, and the pool outcome projected
/// down to [`SimOutcome`] — one event loop owns the scheduling semantics,
/// so the single and sharded simulators cannot drift apart.
///
/// # Errors
///
/// Propagates session-execution failures; rejects an empty input pool or an
/// unsorted open-loop trace as [`ServeError::BadRequest`].
pub fn simulate(
    session: &Session,
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    scheduler: SchedulerConfig,
    service: ServiceModel,
) -> Result<SimOutcome, ServeError> {
    let pool = PoolConfig {
        replicas: 1,
        route: RoutePolicy::RoundRobin,
        scheduler,
        adaptive: AdaptivePolicy::pinned(),
    };
    let outcome = simulate_pool(
        std::slice::from_ref(&session),
        ctx,
        inputs,
        arrivals,
        pool,
        service,
    )?;
    Ok(SimOutcome {
        responses: outcome.responses,
        rejected_ids: outcome.rejected_ids,
        batches: outcome
            .batches
            .into_iter()
            .map(|b| BatchRecord {
                launch_ns: b.launch_ns,
                finish_ns: b.finish_ns,
                request_ids: b.request_ids,
                queue_depth_after: b.queue_depth_after,
            })
            .collect(),
        metrics: outcome.metrics,
        dropped_responses: outcome.dropped_responses,
        dropped_rejections: outcome.dropped_rejections,
        makespan_ns: outcome.makespan_ns,
    })
}

struct ArrivalPlan {
    /// Pending arrivals, always sorted by `(time, id)`.
    pending: VecDeque<PendingArrival>,
    /// Lazy arrival stream for [`ArrivalProcess::Generated`]: `pending` is
    /// refilled one arrival at a time from here, so the trace never
    /// materializes.
    generator: Option<GeneratedArrivals>,
    next_id: u64,
    remaining_closed: usize,
    think_ns: u64,
}

/// The client population a closed loop needs admitted (0 for open loops) —
/// the per-queue capacity floor.
fn closed_population(arrivals: &ArrivalProcess) -> usize {
    match arrivals {
        ArrivalProcess::Open { .. } | ArrivalProcess::Generated { .. } => 0,
        ArrivalProcess::Closed { clients, .. } => *clients,
    }
}

/// Expands an arrival process into the initial pending set: the open loop
/// prefills the whole trace; the closed loop seeds one submission per client
/// and grows on completions; the generated loop installs a lazy stream the
/// event loop pulls from one arrival at a time.
fn expand_arrivals(
    arrivals: &ArrivalProcess,
    inputs_len: usize,
) -> Result<ArrivalPlan, ServeError> {
    let mut pending: VecDeque<PendingArrival> = VecDeque::new();
    let mut generator = None;
    let mut next_id = 0u64;
    let mut remaining_closed = 0usize;
    let think_ns = match arrivals {
        ArrivalProcess::Open { arrivals_ns } => {
            if arrivals_ns.windows(2).any(|w| w[0] > w[1]) {
                return Err(ServeError::BadRequest(
                    "open-loop arrival trace must be ascending".into(),
                ));
            }
            for &t in arrivals_ns {
                pending.push_back(PendingArrival {
                    id: next_id,
                    key: next_id,
                    time_ns: t,
                    ready_ns: t,
                    input_index: next_id as usize % inputs_len,
                    client: 0,
                });
                next_id += 1;
            }
            0
        }
        ArrivalProcess::Closed {
            clients,
            think_ns,
            total_requests,
        } => {
            let clients = (*clients).max(1).min(*total_requests);
            remaining_closed = total_requests.saturating_sub(clients);
            for c in 0..clients {
                pending.push_back(PendingArrival {
                    id: next_id,
                    key: next_id,
                    time_ns: 0,
                    ready_ns: 0,
                    input_index: next_id as usize % inputs_len,
                    client: c,
                });
                next_id += 1;
            }
            *think_ns
        }
        ArrivalProcess::Generated { model, seed, n } => {
            model.check().map_err(ServeError::BadRequest)?;
            generator = Some(model.generate(*seed, *n));
            0
        }
    };
    Ok(ArrivalPlan {
        pending,
        generator,
        next_id,
        remaining_closed,
        think_ns,
    })
}

/// Closed loop: each client completed in `batch` thinks for `think_ns` and
/// submits again (as a fresh pending arrival routed like any other), until
/// `remaining_closed` runs out. Completions are strictly after the batch's
/// launch, so a respawned arrival can never belong to the batch that
/// produced it. Shared by [`simulate`] and [`simulate_pool`] so the two
/// closed-loop semantics cannot drift apart.
fn respawn_closed(
    pending: &mut VecDeque<PendingArrival>,
    remaining_closed: &mut usize,
    next_id: &mut u64,
    batch: &[PendingArrival],
    finish: u64,
    think_ns: u64,
    inputs_len: usize,
) {
    for request in batch {
        if *remaining_closed == 0 {
            break;
        }
        *remaining_closed -= 1;
        let arrival = PendingArrival {
            id: *next_id,
            key: *next_id,
            time_ns: finish.saturating_add(think_ns),
            ready_ns: finish.saturating_add(think_ns),
            input_index: *next_id as usize % inputs_len,
            client: request.client,
        };
        *next_id += 1;
        insert_sorted(pending, arrival);
    }
}

/// Keeps `pending` sorted by `(time, id)`; completions share one finish
/// time so a linear scan from the back is cheap.
fn insert_sorted(pending: &mut VecDeque<PendingArrival>, arrival: PendingArrival) {
    let pos = pending
        .iter()
        .rposition(|p| (p.time_ns, p.id) <= (arrival.time_ns, arrival.id))
        .map(|p| p + 1)
        .unwrap_or(0);
    pending.insert(pos, arrival);
}

/// One launched batch in a simulated replica pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBatchRecord {
    /// Replica that executed the batch.
    pub replica: usize,
    /// Ladder rung the batch executed at.
    pub mode: usize,
    /// Virtual launch time [ns].
    pub launch_ns: u64,
    /// Virtual completion time [ns].
    pub finish_ns: u64,
    /// Request ids coalesced into this batch, in queue order.
    pub request_ids: Vec<u64>,
    /// Queue depth left behind after the batch was drained.
    pub queue_depth_after: usize,
}

/// The full, deterministic outcome of a simulated replica pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSimOutcome {
    /// `(request id, inference)` for every completed request, in
    /// event-processing order (chronological; ties break arrival-first,
    /// then lowest replica index).
    pub responses: Vec<(u64, Inference)>,
    /// Ids shed by per-replica admission control, in arrival order.
    pub rejected_ids: Vec<u64>,
    /// Every launched batch, in event-processing order.
    pub batches: Vec<PoolBatchRecord>,
    /// Every adaptive mode switch, grouped by replica in replica order
    /// (matching [`crate::pool::PoolSnapshot::transitions`]).
    pub transitions: Vec<ModeTransition>,
    /// Per-replica metrics over the virtual makespan. Rejections are
    /// attributed to the replica the router picked.
    pub per_replica: Vec<MetricsSnapshot>,
    /// Pool-level aggregate metrics over the virtual makespan.
    pub metrics: MetricsSnapshot,
    /// Every crash handoff decision, in crash order then queue order —
    /// empty without fault injection. Part of the extended lockstep
    /// contract (mirrors [`crate::pool::PoolSnapshot::handoffs`]).
    pub handoffs: Vec<HandoffRecord>,
    /// Batches launched but *not* retained in `batches` because the log hit
    /// [`BATCH_LOG_CAP`] — the log is constant-memory, this counter closes
    /// the accounting.
    pub dropped_batches: u64,
    /// Mode transitions applied but not retained in `transitions` past
    /// [`crate::config::TRANSITION_LOG_CAP`], summed over replicas.
    pub dropped_transitions: u64,
    /// Completions not retained in `responses` past [`RESPONSE_LOG_CAP`]
    /// (or whose outputs were never computed, on the
    /// [`simulate_pool_stats`] path) — `metrics.completed` still counts
    /// every one, closing the accounting at any request count.
    pub dropped_responses: u64,
    /// Sheds not retained in `rejected_ids` past [`REJECTION_LOG_CAP`] —
    /// `metrics.rejected` still counts every one.
    pub dropped_rejections: u64,
    /// Every pool-controller decision (predictive shift, scale, steal) in
    /// decision order — empty without a controller. Part of the extended
    /// lockstep contract (mirrors
    /// [`crate::pool::PoolSnapshot::control_events`]).
    pub control_events: Vec<ControlEvent>,
    /// Controller decisions applied but not retained past
    /// [`crate::config::CONTROL_LOG_CAP`].
    pub dropped_control_events: u64,
    /// Total live-replica nanoseconds over the run: `replicas × makespan`
    /// without autoscaling, the exact event-log integral with it — the cost
    /// axis autoscaling trades against sheds.
    pub replica_ns: u64,
    /// Virtual time at which the last batch finished [ns].
    pub makespan_ns: u64,
}

struct ReplicaSim {
    queue: VecDeque<PendingArrival>,
    t_free: u64,
    state: AdaptiveState,
    metrics: ServeMetrics,
    faults: ReplicaFaults,
    /// Launched batches so far (the fault plan's 1-based batch clock).
    batches: u64,
    crashed: bool,
    /// Admissions closed by a [`crate::faults::FaultKind::CloseQueue`]
    /// event (a crash closes admissions too).
    closed: bool,
}

/// Simulates a sharded replica pool: N virtual-clock replicas behind a
/// deterministic router, each switching between the `sessions` ladder rungs
/// under the pool's [`crate::config::AdaptivePolicy`]. The mirror of
/// [`crate::pool::ReplicaPool`] — same router arithmetic, same adaptive
/// state machine, virtual time instead of the wall clock.
///
/// Events are processed chronologically; an arrival that coincides with a
/// launch is admitted (and routed) first, and simultaneous launches resolve
/// lowest-replica-first. Request ids double as the router keys, matching a
/// threaded pool driven with `submit(id, …)`.
///
/// # Errors
///
/// Rejects an empty ladder, an empty input pool, or an unsorted open-loop
/// trace as [`ServeError::BadRequest`]; propagates session-execution
/// failures.
pub fn simulate_pool<S: Borrow<Session>>(
    sessions: &[S],
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
) -> Result<PoolSimOutcome, ServeError> {
    simulate_pool_faulted(sessions, ctx, inputs, arrivals, pool, service, None)
}

/// [`simulate_pool`] with an injected [`FaultPlan`]: each replica consumes
/// its slice of the plan at the same batch-lifecycle points as the threaded
/// pool's lockstep mode — straggle factors scale the service time at
/// launch; stalls, queue closes, and crashes apply after the batch's
/// latencies, closed-loop respawns, and adaptive evaluation. A crash drains
/// the replica's queue through the shared handoff rule
/// ([`pick_handoff_target`]): each orphan re-enqueues on the first eligible
/// survivor with its `ready` time at the crash instant (latency still
/// anchored at arrival), or is shed when none qualifies. The router skips
/// crashed and closed replicas via [`pick_replica`]; with every replica
/// eligible the arithmetic is exactly the fault-free router's. `None`
/// faults make this identical to [`simulate_pool`].
///
/// # Errors
///
/// Same as [`simulate_pool`].
pub fn simulate_pool_faulted<S: Borrow<Session>>(
    sessions: &[S],
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    faults: Option<&FaultPlan>,
) -> Result<PoolSimOutcome, ServeError> {
    simulate_pool_traced(sessions, ctx, inputs, arrivals, pool, service, faults, None)
}

/// [`simulate_pool_faulted`] with an optional [`TraceRecorder`]: when a
/// recorder is supplied every request leaves a submit → queue-wait →
/// service → respond span chain, and every launched batch a batch span plus
/// per-layer kernel spans (service time partitioned proportionally to each
/// layer's [`nbsmt_core::pe::PeStats`] cycles via [`layer_intervals`], with
/// the stats attached). All timestamps are virtual nanoseconds, so the
/// emitted trace is bit-identical across runs, host thread counts, and
/// backends — and byte-identical to the lockstep
/// [`crate::pool::ReplicaPool`]'s trace of the same seeded burst.
///
/// # Errors
///
/// Same as [`simulate_pool`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_pool_traced<S: Borrow<Session>>(
    sessions: &[S],
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    faults: Option<&FaultPlan>,
    recorder: Option<&TraceRecorder>,
) -> Result<PoolSimOutcome, ServeError> {
    simulate_pool_inner(
        sessions, ctx, inputs, arrivals, pool, service, None, faults, recorder, true,
    )
}

/// [`simulate_pool_traced`] with a [`PoolController`] in the loop: the
/// controller observes every admitted arrival (rolling its EWMA windows and
/// emitting predictive-shift / autoscale events at window boundaries) and
/// evaluates work stealing after every batch launch. Scale-down drains the
/// deactivated replica's queue through the crash-handoff rule, the router
/// only considers live replicas, and every batch executes at
/// `max(reactive mode, predictive floor)`. All decisions are pure functions
/// of (arrival trace, config), so the event stream in
/// [`PoolSimOutcome::control_events`] is bit-identical to the threaded
/// lockstep pool's on the same seeded burst.
///
/// # Errors
///
/// Same as [`simulate_pool`], plus any [`ControlConfig`] validation error.
#[allow(clippy::too_many_arguments)]
pub fn simulate_pool_controlled<S: Borrow<Session>>(
    sessions: &[S],
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    control: ControlConfig,
    faults: Option<&FaultPlan>,
    recorder: Option<&TraceRecorder>,
) -> Result<PoolSimOutcome, ServeError> {
    simulate_pool_inner(
        sessions,
        ctx,
        inputs,
        arrivals,
        pool,
        service,
        Some(control),
        faults,
        recorder,
        true,
    )
}

/// The constant-memory statistics variant of [`simulate_pool_controlled`]:
/// identical controller, scheduling, and fault semantics, but model outputs
/// are not computed — the controlled counterpart of
/// [`simulate_pool_stats`], for million-request control-plane sweeps.
///
/// # Errors
///
/// Same as [`simulate_pool_controlled`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_pool_controlled_stats<S: Borrow<Session>>(
    sessions: &[S],
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    control: ControlConfig,
    faults: Option<&FaultPlan>,
    recorder: Option<&TraceRecorder>,
) -> Result<PoolSimOutcome, ServeError> {
    let ctx = ExecContext::sequential();
    simulate_pool_inner(
        sessions,
        &ctx,
        inputs,
        arrivals,
        pool,
        service,
        Some(control),
        faults,
        recorder,
        false,
    )
}

/// The constant-memory statistics path for million-request sweeps:
/// identical scheduling, routing, adaptive, and fault semantics to
/// [`simulate_pool_traced`] — same batches, same virtual latencies, same
/// metrics, bit for bit — but model outputs are **not computed** (no
/// [`ExecContext`] needed) and `responses` stays empty, with every
/// completion counted in `dropped_responses`. All retained collections
/// (batch log, transition log, rejected ids, trace ring when a recorder is
/// supplied) are capped, so peak memory is flat in request count. With a
/// recorder, per-layer kernel spans are omitted (they would require real
/// execution); all other span kinds are recorded as usual.
///
/// # Errors
///
/// Same as [`simulate_pool`].
pub fn simulate_pool_stats<S: Borrow<Session>>(
    sessions: &[S],
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    faults: Option<&FaultPlan>,
    recorder: Option<&TraceRecorder>,
) -> Result<PoolSimOutcome, ServeError> {
    let ctx = ExecContext::sequential();
    simulate_pool_inner(
        sessions, &ctx, inputs, arrivals, pool, service, None, faults, recorder, false,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_pool_inner<S: Borrow<Session>>(
    sessions: &[S],
    ctx: &ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
    control: Option<ControlConfig>,
    faults: Option<&FaultPlan>,
    recorder: Option<&TraceRecorder>,
    compute_outputs: bool,
) -> Result<PoolSimOutcome, ServeError> {
    if sessions.is_empty() {
        return Err(ServeError::BadRequest(
            "replica pool needs at least one session in the ladder".into(),
        ));
    }
    if inputs.is_empty() {
        return Err(ServeError::BadRequest("empty request-input pool".into()));
    }
    pool.validate()?;
    // The controller's utilization forecast is denominated in the same
    // virtual per-rung request cost the clock runs on.
    let mut controller = control
        .map(|cfg| {
            let rung_work_ns = sessions
                .iter()
                .map(|s| service.single_ns(s.borrow()))
                .collect();
            PoolController::new(cfg, rung_work_ns, pool.replicas)
        })
        .transpose()?;
    let max_batch = pool.scheduler.batch.max_batch;
    let max_wait = pool.scheduler.batch.max_wait_ns;
    // Same closed-loop floor as the single-replica simulator, per replica:
    // hashed routing can land an entire client population on one queue.
    let capacity = pool
        .scheduler
        .queue_capacity
        .max(closed_population(arrivals));

    let ArrivalPlan {
        mut pending,
        mut generator,
        mut next_id,
        mut remaining_closed,
        think_ns,
    } = expand_arrivals(arrivals, inputs.len())?;

    let mut replicas: Vec<ReplicaSim> = (0..pool.replicas)
        .map(|r| ReplicaSim {
            queue: VecDeque::new(),
            t_free: 0,
            state: AdaptiveState::new(pool.adaptive, r, sessions.len()),
            metrics: ServeMetrics::new(),
            faults: faults.map(|p| p.for_replica(r)).unwrap_or_default(),
            batches: 0,
            crashed: false,
            closed: false,
        })
        .collect();
    let mut rr_counter = 0u64;
    let mut responses = Vec::new();
    let mut rejected_ids = Vec::new();
    let mut batches = Vec::new();
    let mut dropped_batches = 0u64;
    let mut dropped_responses = 0u64;
    let mut dropped_rejections = 0u64;
    let mut handoffs: Vec<HandoffRecord> = Vec::new();
    let reject = |ids: &mut Vec<u64>, dropped: &mut u64, id: u64| {
        if ids.len() < REJECTION_LOG_CAP {
            ids.push(id);
        } else {
            *dropped += 1;
        }
    };

    loop {
        // Generated arrivals stream in lazily, one at a time: the stream is
        // monotone, so a single-element prefix of `pending` is
        // bit-equivalent to the fully materialized trace (admission only
        // ever peeks the front) while 10^7 arrivals never exist at once.
        if pending.is_empty() {
            if let Some(arrival) = generator.as_mut().and_then(Iterator::next) {
                pending.push_back(PendingArrival {
                    id: next_id,
                    key: arrival.key,
                    time_ns: arrival.time_ns,
                    ready_ns: arrival.time_ns,
                    input_index: next_id as usize % inputs.len(),
                    client: 0,
                });
                next_id += 1;
            }
        }
        // Earliest launch any live replica could perform from its current
        // queue: a full batch launches once the worker is free and its
        // max_batch-th request is ready; a partial batch waits out the
        // oldest request's budget.
        let mut next_launch: Option<(u64, usize)> = None;
        for (r, replica) in replicas.iter().enumerate() {
            if replica.crashed {
                continue;
            }
            let Some(oldest) = replica.queue.front() else {
                continue;
            };
            let launch = if replica.queue.len() >= max_batch {
                replica.t_free.max(replica.queue[max_batch - 1].ready_ns)
            } else {
                replica.t_free.max(oldest.ready_ns.saturating_add(max_wait))
            };
            if next_launch.is_none_or(|(best, _)| launch < best) {
                next_launch = Some((launch, r));
            }
        }

        // Arrivals at or before that launch are routed and admitted first
        // (mirrors the threaded pool, where submission precedes the drain).
        // Crashed and admission-closed replicas are not routable; with no
        // faults the eligible set is every replica and the arithmetic is
        // the original router's.
        if let Some(arrival) = pending.front().copied() {
            if next_launch.is_none_or(|(launch, _)| arrival.time_ns <= launch) {
                pending.pop_front();
                // The controller observes every admitted arrival before it
                // is routed: estimator windows roll here, and any
                // predictive-shift / autoscale decisions apply before the
                // routing decision — the threaded lockstep gate calls the
                // controller at the identical point.
                if let Some(ctrl) = controller.as_mut() {
                    for event in ctrl.on_arrival(arrival.time_ns) {
                        let live_after = ctrl.live();
                        apply_scale_event(
                            event,
                            live_after,
                            &mut replicas,
                            &mut handoffs,
                            recorder,
                            capacity,
                        );
                    }
                }
                let live = controller
                    .as_ref()
                    .map_or(replicas.len(), PoolController::live);
                let eligible: Vec<(usize, usize)> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(i, rep)| *i < live && !rep.crashed && !rep.closed)
                    .map(|(i, rep)| (i, rep.queue.len()))
                    .collect();
                let tick = rr_counter;
                if pool.route == RoutePolicy::RoundRobin {
                    rr_counter += 1;
                }
                match pick_replica(pool.route, arrival.key, tick, &eligible) {
                    Some(target) => {
                        let replica = &mut replicas[target];
                        if replica.queue.len() < capacity {
                            if let Some(rec) = recorder {
                                rec.record(
                                    TraceEvent::new(TraceStage::Submit, target, arrival.time_ns, 0)
                                        .request(arrival.id),
                                );
                            }
                            replica.queue.push_back(arrival);
                        } else {
                            reject(&mut rejected_ids, &mut dropped_rejections, arrival.id);
                            replica.metrics.record_rejected();
                        }
                    }
                    None => {
                        // Every replica dead or closed: the submission is
                        // shed; attribute it to replica 0's counters (the
                        // pool-level aggregate is what fault benches read).
                        reject(&mut rejected_ids, &mut dropped_rejections, arrival.id);
                        replicas[0].metrics.record_rejected();
                    }
                }
                continue;
            }
        }

        let Some((launch, r)) = next_launch else {
            break; // no queued work and no pending arrivals
        };

        // Launch on replica `r`. An active straggle window scales the
        // service time; the batch index is the replica's 1-based fault
        // clock.
        let batch_index = replicas[r].batches + 1;
        let take = replicas[r].queue.len().min(max_batch);
        let batch: Vec<PendingArrival> = replicas[r].queue.drain(..take).collect();
        // The predictive floor raises the reactive rung; the reactive state
        // machine itself keeps observing unmodified, staying the fallback.
        let reactive_mode = replicas[r].state.mode();
        let mode = controller
            .as_ref()
            .map_or(reactive_mode, |c| c.effective_mode(reactive_mode));
        let session: &Session = sessions[mode].borrow();
        let (outputs, kernels): (Option<Vec<Inference>>, Vec<LayerKernel>) = if compute_outputs {
            let batch_inputs: Vec<&Tensor<f32>> =
                batch.iter().map(|req| &inputs[req.input_index]).collect();
            match recorder {
                Some(_) => {
                    let (outs, kernels) = session.infer_batch_traced(ctx, &batch_inputs)?;
                    (Some(outs), kernels)
                }
                None => (
                    Some(session.infer_batch_refs(ctx, &batch_inputs)?),
                    Vec::new(),
                ),
            }
        } else {
            (None, Vec::new())
        };
        let factor = replicas[r].faults.service_factor_x1024(batch_index);
        let base_ns = service.batch_ns(session, batch.iter().map(|req| req.key));
        let service_ns = (base_ns as u128 * factor as u128 / 1024).min(u128::from(u64::MAX)) as u64;
        let finish = launch.saturating_add(service_ns);
        let depth_after = replicas[r].queue.len();
        let replica = &mut replicas[r];
        replica.metrics.record_batch(batch.len(), depth_after);
        replica.metrics.record_mode_batch(mode);
        for request in &batch {
            replica
                .metrics
                .record_stage_split(launch.saturating_sub(request.time_ns), service_ns);
            replica
                .metrics
                .record_latency(finish.saturating_sub(request.time_ns));
        }
        match outputs {
            Some(outs) => {
                for (request, inference) in batch.iter().zip(outs) {
                    if responses.len() < RESPONSE_LOG_CAP {
                        responses.push((request.id, inference));
                    } else {
                        dropped_responses += 1;
                    }
                }
            }
            None => dropped_responses += batch.len() as u64,
        }
        if let Some(rec) = recorder {
            rec.record(
                TraceEvent::new(TraceStage::Batch, r, launch, service_ns)
                    .batch(batch_index)
                    .mode(mode)
                    .batch_size(batch.len()),
            );
            let weights: Vec<u64> = kernels.iter().map(|k| k.stats.cycles).collect();
            for (kernel, (span_start, span_dur)) in kernels
                .iter()
                .zip(layer_intervals(launch, service_ns, &weights))
            {
                rec.record(
                    TraceEvent::new(TraceStage::Kernel, r, span_start, span_dur)
                        .batch(batch_index)
                        .mode(mode)
                        .layer(kernel.layer)
                        .stats(kernel.stats),
                );
            }
            for request in &batch {
                rec.record(
                    TraceEvent::new(
                        TraceStage::QueueWait,
                        r,
                        request.time_ns,
                        launch.saturating_sub(request.time_ns),
                    )
                    .request(request.id)
                    .batch(batch_index),
                );
                rec.record(
                    TraceEvent::new(TraceStage::Service, r, launch, service_ns)
                        .request(request.id)
                        .batch(batch_index)
                        .mode(mode),
                );
                rec.record(
                    TraceEvent::new(TraceStage::Respond, r, finish, 0)
                        .request(request.id)
                        .batch(batch_index),
                );
            }
        }
        if batches.len() < BATCH_LOG_CAP {
            batches.push(PoolBatchRecord {
                replica: r,
                mode,
                launch_ns: launch,
                finish_ns: finish,
                request_ids: batch.iter().map(|req| req.id).collect(),
                queue_depth_after: depth_after,
            });
        } else {
            dropped_batches += 1;
        }
        replica.t_free = finish;

        // Closed loop: completed clients think, then re-submit through the
        // router like any other arrival.
        respawn_closed(
            &mut pending,
            &mut remaining_closed,
            &mut next_id,
            &batch,
            finish,
            think_ns,
            inputs.len(),
        );

        // Adaptive evaluation after the batch's latencies landed — the
        // switch, if any, applies from the replica's next batch on.
        let p95 = replica.metrics.latency.quantile(0.95);
        if replica.state.observe_batch(depth_after, p95).is_some() {
            replica.metrics.record_transition();
        }

        // Post-batch fault effects, strictly after the adaptive evaluation
        // (the threaded lockstep gate applies the identical order).
        replica.batches = batch_index;
        let post = replica.faults.after_batch(batch_index);
        if post.stall_ns > 0 {
            replica.t_free = replica.t_free.saturating_add(post.stall_ns);
            replica.metrics.record_stall();
        }
        if post.close_queue {
            replica.closed = true;
        }
        if post.crashed {
            replica.crashed = true;
            replica.closed = true;
            replica.metrics.record_crash();
            let crash_time = replica.t_free;
            let orphans: Vec<PendingArrival> = replica.queue.drain(..).collect();
            let mut cursor = (r + 1) % replicas.len();
            let live = controller
                .as_ref()
                .map_or(replicas.len(), PoolController::live);
            for orphan in orphans {
                let states: Vec<(bool, usize)> = replicas
                    .iter()
                    .enumerate()
                    .map(|(i, rep)| (i < live && !rep.crashed && !rep.closed, rep.queue.len()))
                    .collect();
                let target = pick_handoff_target(r, &mut cursor, &states, capacity);
                handoffs.push(HandoffRecord {
                    from_replica: r,
                    at_batch: batch_index,
                    key: orphan.key,
                    to_replica: target,
                });
                match target {
                    Some(t) => {
                        replicas[t].queue.push_back(PendingArrival {
                            ready_ns: crash_time,
                            ..orphan
                        });
                        replicas[r].metrics.record_handoff();
                    }
                    None => replicas[r].metrics.record_handoff_shed(),
                }
            }
        }

        // Controller steal pass, strictly after the batch's fault effects:
        // up to `max_steal` not-yet-batched requests move from the deepest
        // to the shallowest live queue (the lockstep gate runs the identical
        // pass at the identical point).
        if let Some(ctrl) = controller.as_mut() {
            let depths: Vec<(usize, usize)> = replicas
                .iter()
                .enumerate()
                .take(ctrl.live())
                .filter(|(_, rep)| !rep.crashed && !rep.closed)
                .map(|(i, rep)| (i, rep.queue.len()))
                .collect();
            if let Some(event) = ctrl.steal_check(launch, &depths, capacity) {
                if let ControlEventKind::Steal { from, to, moved } = event.kind {
                    let split = replicas[from].queue.len() - moved;
                    let stolen = replicas[from].queue.split_off(split);
                    for request in stolen {
                        // A stolen request cannot launch on the thief before
                        // the steal instant; latency stays anchored at its
                        // arrival.
                        replicas[to].queue.push_back(PendingArrival {
                            ready_ns: request.ready_ns.max(event.at_ns),
                            ..request
                        });
                    }
                    replicas[0].metrics.record_steal(moved);
                    if let Some(rec) = recorder {
                        rec.record(TraceEvent::new(TraceStage::Control, 0, event.at_ns, 0));
                    }
                }
            }
        }
    }

    let makespan_ns = replicas.iter().map(|r| r.t_free).max().unwrap_or(0);
    let (control_events, dropped_control_events, replica_ns) = match controller {
        Some(mut ctrl) => {
            let replica_ns = ctrl.finalize_replica_ns(makespan_ns);
            let (events, dropped) = ctrl.into_events();
            (events, dropped, replica_ns)
        }
        None => (
            Vec::new(),
            0,
            (pool.replicas as u64).saturating_mul(makespan_ns),
        ),
    };
    let mut total = ServeMetrics::new();
    let mut per_replica = Vec::new();
    let mut transitions = Vec::new();
    let mut dropped_transitions = 0u64;
    for replica in replicas {
        total.merge(&replica.metrics);
        per_replica.push(replica.metrics.snapshot(makespan_ns));
        dropped_transitions += replica.state.dropped_transitions();
        transitions.extend(replica.state.into_transitions());
    }
    Ok(PoolSimOutcome {
        responses,
        rejected_ids,
        batches,
        transitions,
        per_replica,
        metrics: total.snapshot(makespan_ns),
        handoffs,
        dropped_batches,
        dropped_transitions,
        dropped_responses,
        dropped_rejections,
        control_events,
        dropped_control_events,
        replica_ns,
        makespan_ns,
    })
}

/// Applies one predictive-shift or scale decision inside the event loop:
/// counters land on replica 0 (the pool-level aggregate is what control
/// benches read), an instant [`TraceStage::Control`] span marks the
/// decision, and a scale-down drains the deactivated replica's queue
/// through the crash-handoff rule — each orphan re-enqueues on the first
/// eligible live survivor with its `ready` time at the decision instant, or
/// is shed when none qualifies, so permits reconcile exactly as they do for
/// crashes. Steal events never reach here; they are applied at the launch
/// site where the queue depths were sampled.
fn apply_scale_event(
    event: ControlEvent,
    live_after: usize,
    replicas: &mut [ReplicaSim],
    handoffs: &mut Vec<HandoffRecord>,
    recorder: Option<&TraceRecorder>,
    capacity: usize,
) {
    if let Some(rec) = recorder {
        rec.record(TraceEvent::new(TraceStage::Control, 0, event.at_ns, 0));
    }
    match event.kind {
        ControlEventKind::PredictiveShift { .. } => {
            replicas[0].metrics.record_predictive_shift();
        }
        ControlEventKind::ScaleUp { .. } => replicas[0].metrics.record_scale_up(),
        ControlEventKind::ScaleDown { to: deact, .. } => {
            replicas[0].metrics.record_scale_down();
            let at_batch = replicas[deact].batches;
            let orphans: Vec<PendingArrival> = replicas[deact].queue.drain(..).collect();
            let mut cursor = (deact + 1) % replicas.len();
            for orphan in orphans {
                let states: Vec<(bool, usize)> = replicas
                    .iter()
                    .enumerate()
                    .map(|(i, rep)| {
                        (
                            i < live_after && !rep.crashed && !rep.closed,
                            rep.queue.len(),
                        )
                    })
                    .collect();
                let target = pick_handoff_target(deact, &mut cursor, &states, capacity);
                handoffs.push(HandoffRecord {
                    from_replica: deact,
                    at_batch,
                    key: orphan.key,
                    to_replica: target,
                });
                match target {
                    Some(t) => {
                        replicas[t].queue.push_back(PendingArrival {
                            ready_ns: orphan.ready_ns.max(event.at_ns),
                            ..orphan
                        });
                        replicas[deact].metrics.record_handoff();
                    }
                    None => replicas[deact].metrics.record_handoff_shed(),
                }
            }
        }
        // `on_arrival` only emits shift and scale decisions.
        ControlEventKind::Steal { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{route_hash, BatchPolicy, SmtConfig};
    use crate::session::compile_session;
    use nbsmt_workloads::synthnet::quick_synthnet;
    use std::sync::Arc;

    fn test_setup() -> (Session, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(23).expect("training succeeds");
        let calib = trained.calibration_inputs(8, 301);
        let s = trained.task.image_size;
        let session = compile_session(
            "synthnet",
            &trained.model,
            &[calib],
            SmtConfig::sysmt_2t(),
            [1, s, s],
        )
        .unwrap();
        let (inputs, _) = trained.sample_requests(8, 302);
        (session, inputs)
    }

    fn policy(max_batch: usize, max_wait_ns: u64, capacity: usize) -> SchedulerConfig {
        SchedulerConfig {
            batch: BatchPolicy {
                max_batch,
                max_wait_ns,
            },
            queue_capacity: capacity,
        }
    }

    #[test]
    fn widely_spaced_arrivals_run_unbatched() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let service = ServiceModel::default();
        let gap = service.single_ns(&session) * 4;
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..6).map(|i| i * gap).collect(),
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 64),
            service,
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 6);
        assert_eq!(out.metrics.batches, 6, "spaced arrivals must not coalesce");
        assert!(out.rejected_ids.is_empty());
    }

    #[test]
    fn simultaneous_arrivals_coalesce_to_max_batch() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0; 8],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 1_000_000, 64),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].request_ids, vec![0, 1, 2, 3]);
        assert_eq!(out.batches[1].request_ids, vec![4, 5, 6, 7]);
    }

    #[test]
    fn max_wait_closes_a_partial_batch() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        // Second arrival lands after the first's wait budget: two batches.
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0, 2_000],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 1_000),
            ServiceModel {
                ns_per_mac_x1024: 0,
                batch_overhead_ns: 10,
                size: SizeModel::Unit,
            },
        )
        .unwrap();
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].launch_ns, 1_000);
        // And within the budget: one batch.
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0, 500],
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(8, 1_000, 1_000),
            ServiceModel {
                ns_per_mac_x1024: 0,
                batch_overhead_ns: 10,
                size: SizeModel::Unit,
            },
        )
        .unwrap();
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].request_ids, vec![0, 1]);
    }

    #[test]
    fn overload_sheds_and_accounts_every_request() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let n = 40u64;
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..n).map(|i| i * 10).collect(),
        };
        let service = ServiceModel::default(); // far slower than arrivals
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(2, 1_000, 4),
            service,
        )
        .unwrap();
        assert!(out.metrics.rejected > 0, "overload must shed load");
        assert_eq!(out.metrics.completed + out.metrics.rejected, n);
        assert_eq!(
            out.responses.len() + out.rejected_ids.len(),
            n as usize,
            "every request is either answered or rejected"
        );
        assert!(out.metrics.max_queue_depth <= 4 + 2);
    }

    #[test]
    fn closed_loop_population_survives_a_small_queue_bound() {
        // 16 clients against a capacity-4 scheduler: the bound is raised to
        // the population so no client is shed at t=0 and orphaned — every
        // request completes.
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Closed {
            clients: 16,
            think_ns: 1_000,
            total_requests: 48,
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 10_000, 4),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 48);
        assert!(out.rejected_ids.is_empty());
    }

    #[test]
    fn closed_loop_issues_exactly_total_requests() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Closed {
            clients: 3,
            think_ns: 1_000,
            total_requests: 12,
        };
        let out = simulate(
            &session,
            &ctx,
            &inputs,
            &arrivals,
            policy(4, 10_000, 16),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 12);
        assert!(out.rejected_ids.is_empty(), "closed loop cannot overflow");
        // No client ever has two requests in flight: at most `clients`
        // requests per batch.
        for batch in &out.batches {
            assert!(batch.request_ids.len() <= 3);
        }
    }

    fn ladder_setup() -> (Vec<Arc<Session>>, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(23).expect("training succeeds");
        let mut registry = crate::registry::ModelRegistry::new();
        registry
            .register_synthnet("synthnet", &trained, 301)
            .unwrap();
        let ladder = registry
            .compile_ladder(
                "synthnet",
                &[
                    SmtConfig::Dense,
                    SmtConfig::sysmt_2t(),
                    SmtConfig::sysmt_4t(),
                ],
            )
            .unwrap();
        let (inputs, _) = trained.sample_requests(8, 302);
        (ladder, inputs)
    }

    fn pool_cfg(replicas: usize, route: RoutePolicy, scheduler: SchedulerConfig) -> PoolConfig {
        PoolConfig {
            replicas,
            route,
            scheduler,
            adaptive: crate::config::AdaptivePolicy::pinned(),
        }
    }

    #[test]
    fn pool_of_one_matches_the_single_replica_simulator() {
        // A 1-replica pinned pool must be behaviourally identical to the
        // original single-session simulator: same launches, same batches,
        // same latencies, same sheds.
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let scheduler = policy(3, 40_000, 4);
        for arrivals in [
            ArrivalProcess::Open {
                arrivals_ns: (0..24).map(|i| i * 17_000).collect(),
            },
            ArrivalProcess::Open {
                arrivals_ns: vec![0; 16],
            },
            ArrivalProcess::Closed {
                clients: 5,
                think_ns: 30_000,
                total_requests: 20,
            },
        ] {
            let single = simulate(
                &session,
                &ctx,
                &inputs,
                &arrivals,
                scheduler,
                ServiceModel::default(),
            )
            .unwrap();
            let pooled = simulate_pool(
                &[Arc::new(session.clone())],
                &ctx,
                &inputs,
                &arrivals,
                pool_cfg(1, RoutePolicy::RoundRobin, scheduler),
                ServiceModel::default(),
            )
            .unwrap();
            assert_eq!(pooled.batches.len(), single.batches.len());
            for (p, s) in pooled.batches.iter().zip(single.batches.iter()) {
                assert_eq!(p.request_ids, s.request_ids);
                assert_eq!(p.launch_ns, s.launch_ns);
                assert_eq!(p.finish_ns, s.finish_ns);
                assert_eq!(p.queue_depth_after, s.queue_depth_after);
                assert_eq!((p.replica, p.mode), (0, 0));
            }
            assert_eq!(pooled.responses, single.responses);
            assert_eq!(pooled.rejected_ids, single.rejected_ids);
            assert_eq!(pooled.makespan_ns, single.makespan_ns);
            assert!(pooled.transitions.is_empty(), "pinned pool never switches");
        }
    }

    #[test]
    fn round_robin_pool_splits_a_burst_across_replicas() {
        let (ladder, inputs) = ladder_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: vec![0; 8],
        };
        let out = simulate_pool(
            &ladder,
            &ctx,
            &inputs,
            &arrivals,
            pool_cfg(2, RoutePolicy::RoundRobin, policy(4, 1_000_000, 64)),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 8);
        assert_eq!(out.batches.len(), 2, "each replica coalesces its half");
        // Round-robin interleaves ids: evens on replica 0, odds on 1.
        let by_replica: Vec<Vec<u64>> = (0..2)
            .map(|r| {
                out.batches
                    .iter()
                    .filter(|b| b.replica == r)
                    .flat_map(|b| b.request_ids.clone())
                    .collect()
            })
            .collect();
        assert_eq!(by_replica[0], vec![0, 2, 4, 6]);
        assert_eq!(by_replica[1], vec![1, 3, 5, 7]);
        // And both replicas report their own metrics.
        assert_eq!(out.per_replica.len(), 2);
        assert!(out.per_replica.iter().all(|m| m.completed == 4));
    }

    #[test]
    fn hashed_routing_is_sticky_per_key() {
        let (ladder, inputs) = ladder_setup();
        let ctx = ExecContext::sequential();
        // The same id set twice: each id must land on the same replica both
        // times (affinity), regardless of interleaving.
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..16).map(|i| i * 200_000).collect(),
        };
        let out = simulate_pool(
            &ladder,
            &ctx,
            &inputs,
            &arrivals,
            pool_cfg(4, RoutePolicy::Hashed, policy(2, 1_000, 64)),
            ServiceModel::default(),
        )
        .unwrap();
        for batch in &out.batches {
            for &id in &batch.request_ids {
                assert_eq!(
                    batch.replica,
                    (route_hash(id) % 4) as usize,
                    "id {id} must follow its hash"
                );
            }
        }
    }

    #[test]
    fn adaptive_pool_sheds_less_than_pinned_dense_under_overload() {
        let (ladder, inputs) = ladder_setup();
        let ctx = ExecContext::sequential();
        let service = ServiceModel::default();
        // Offered far beyond one dense replica's service rate.
        let gap = service.single_ns(&ladder[0]) / 4;
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..64).map(|i| i * gap).collect(),
        };
        let scheduler = policy(4, 100_000, 8);
        let pinned = simulate_pool(
            &ladder[..1],
            &ctx,
            &inputs,
            &arrivals,
            pool_cfg(1, RoutePolicy::RoundRobin, scheduler),
            service,
        )
        .unwrap();
        let adaptive = simulate_pool(
            &ladder,
            &ctx,
            &inputs,
            &arrivals,
            PoolConfig {
                adaptive: crate::config::AdaptivePolicy {
                    depth_high: 4,
                    depth_low: 1,
                    p95_high_ns: 0,
                    eval_every_batches: 1,
                },
                ..pool_cfg(1, RoutePolicy::RoundRobin, scheduler)
            },
            service,
        )
        .unwrap();
        assert!(
            pinned.metrics.rejected > 0,
            "dense-only must shed at 4x load"
        );
        assert!(
            adaptive.metrics.rejected < pinned.metrics.rejected,
            "adaptive ({} shed) must shed less than pinned dense ({} shed)",
            adaptive.metrics.rejected,
            pinned.metrics.rejected
        );
        assert!(
            adaptive.metrics.mode_transitions > 0,
            "overload must drive the ladder"
        );
        // The trade is visible in the mode histogram: some batches ran
        // above rung 0.
        let above: u64 = adaptive.metrics.batches_per_mode.iter().skip(1).sum();
        assert!(above > 0);
        // Accounting closes for both runs.
        assert_eq!(pinned.metrics.completed + pinned.metrics.rejected, 64);
        assert_eq!(adaptive.metrics.completed + adaptive.metrics.rejected, 64);
    }

    #[test]
    fn closed_loop_pool_completes_every_request() {
        let (ladder, inputs) = ladder_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Closed {
            clients: 6,
            think_ns: 1_000,
            total_requests: 30,
        };
        let out = simulate_pool(
            &ladder,
            &ctx,
            &inputs,
            &arrivals,
            // Capacity 4 is below the 6-client population: the closed-loop
            // capacity floor must still absorb every in-flight request.
            pool_cfg(3, RoutePolicy::LeastOutstanding, policy(4, 10_000, 4)),
            ServiceModel::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.completed, 30);
        assert!(out.rejected_ids.is_empty(), "closed loop cannot overflow");
        let per_replica_total: u64 = out.per_replica.iter().map(|m| m.completed).sum();
        assert_eq!(per_replica_total, 30);
    }

    #[test]
    fn simulation_is_bit_deterministic_across_runs() {
        let (session, inputs) = test_setup();
        let ctx = ExecContext::sequential();
        let arrivals = ArrivalProcess::Open {
            arrivals_ns: (0..16).map(|i| i * 50_000).collect(),
        };
        let run = || {
            simulate(
                &session,
                &ctx,
                &inputs,
                &arrivals,
                policy(4, 100_000, 16),
                ServiceModel::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
