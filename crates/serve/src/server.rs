//! The long-lived threaded server: bounded queue → micro-batching scheduler
//! → session, on the real clock.
//!
//! One scheduler thread owns the batch loop: it blocks for the first queued
//! request, keeps the batch open until `max_batch` requests arrived or the
//! first request has waited `max_wait_ns`, executes the coalesced batch on
//! the session, and completes every request's [`ResponseHandle`]. Admission
//! control is the bounded queue itself — `submit` never blocks and returns a
//! typed [`SubmitError`] under overload.
//!
//! For deterministic, replayable scheduling (tests, the `repro serve`
//! sweep), use the virtual-clock simulator in [`crate::sim`] instead: it
//! runs the same policy arithmetic without real-time jitter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Tensor;
use nbsmt_tensor::validate::Validate;

use crate::config::{SchedulerConfig, ServeError, SubmitError};
use crate::faults::{FaultPlan, ReplicaFaults};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::queue::{response_channel, BoundedQueue, ResponseHandle, ResponseSlot};
use crate::session::{Inference, Session};
use crate::sim::ServiceModel;
use crate::trace::{layer_intervals, BatchTraceCtx, TraceEvent, TraceRecorder, TraceStage};

/// Result delivered to each request's [`ResponseHandle`].
pub type RequestResult = Result<Inference, ServeError>;

struct QueuedRequest {
    key: u64,
    input: Tensor<f32>,
    submitted: Instant,
    slot: ResponseSlot<RequestResult>,
}

/// A queued request as the batch executor sees it — implemented by the
/// single-session server's and the replica pool's request types so both
/// schedulers share one [`execute_batch`].
pub(crate) trait BatchItem {
    fn key(&self) -> u64;
    fn input(&self) -> &Tensor<f32>;
    fn submitted(&self) -> Instant;
    fn into_slot(self) -> ResponseSlot<RequestResult>;
}

impl BatchItem for QueuedRequest {
    fn key(&self) -> u64 {
        self.key
    }
    fn input(&self) -> &Tensor<f32> {
        &self.input
    }
    fn submitted(&self) -> Instant {
        self.submitted
    }
    fn into_slot(self) -> ResponseSlot<RequestResult> {
        self.slot
    }
}

/// A running serving instance for one session.
pub struct Server {
    queue: Arc<BoundedQueue<QueuedRequest>>,
    rejected: Arc<AtomicU64>,
    seq: Arc<AtomicU64>,
    worker: Option<JoinHandle<ServeMetrics>>,
    started: Instant,
}

/// Cheap cloneable submission handle.
#[derive(Clone)]
pub struct Client {
    queue: Arc<BoundedQueue<QueuedRequest>>,
    rejected: Arc<AtomicU64>,
    seq: Arc<AtomicU64>,
}

impl Client {
    /// Submits one request; returns immediately with a waitable handle.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under overload, [`SubmitError::Closed`]
    /// after shutdown began.
    pub fn submit(&self, input: Tensor<f32>) -> Result<ResponseHandle<RequestResult>, SubmitError> {
        let (slot, handle) = response_channel();
        let key = self.seq.fetch_add(1, Ordering::Relaxed);
        let submitted = Instant::now();
        let queued = QueuedRequest {
            key,
            input,
            submitted,
            slot,
        };
        match self.queue.try_push(queued) {
            Ok(()) => Ok(handle),
            Err(e) => {
                // Only admission-control rejections count as shed load; a
                // submit racing shutdown (`Closed`) was never offered to the
                // queue bound.
                if matches!(e, SubmitError::QueueFull { .. }) {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

impl Server {
    /// Starts a server: spawns the scheduler thread over `session`,
    /// executing batches on `ctx`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid `config` as [`ServeError::Config`] — the same
    /// typed validation the replica pool and the virtual-clock simulator
    /// apply, so a bad config cannot slip through one driver and not
    /// another.
    pub fn start(
        session: Arc<Session>,
        config: SchedulerConfig,
        ctx: ExecContext,
    ) -> Result<Server, ServeError> {
        Server::start_with_recorder(session, config, ctx, None)
    }

    /// [`Server::start`] with a shared [`TraceRecorder`]: every admitted
    /// request leaves a submit → queue-wait → service → respond span chain
    /// and every batch a batch span plus per-layer kernel spans, all
    /// timestamped on the recorder's wall [`crate::trace::Clock`] — the
    /// same schema the deterministic simulator emits on virtual time.
    ///
    /// # Errors
    ///
    /// Same as [`Server::start`].
    pub fn start_traced(
        session: Arc<Session>,
        config: SchedulerConfig,
        ctx: ExecContext,
        recorder: Arc<TraceRecorder>,
    ) -> Result<Server, ServeError> {
        Server::start_with_recorder(session, config, ctx, Some(recorder))
    }

    /// [`Server::start`] with `plan`'s replica-0 schedule injected for real
    /// — the single-session counterpart of
    /// [`crate::pool::ReplicaPool::start_with_faults`]. Straggle windows
    /// sleep out the extra service time the factor implies over `service`'s
    /// size-aware nominal cost, stalls sleep, a queue close half-closes
    /// admissions (queued work still drains), and a crash kills the
    /// scheduler: with no surviving replica to hand off to, every queued
    /// orphan sheds (its dropped slot cancels the client's handle, so no
    /// caller ever hangs on a dead server).
    ///
    /// # Errors
    ///
    /// Same as [`Server::start`].
    pub fn start_with_faults(
        session: Arc<Session>,
        config: SchedulerConfig,
        ctx: ExecContext,
        plan: &FaultPlan,
        service: ServiceModel,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let worker_queue = Arc::clone(&queue);
        let faults = plan.for_replica(0);
        let worker = std::thread::Builder::new()
            .name(format!("nbsmt-serve-{}", session.name()))
            .spawn(move || {
                scheduler_loop_faulted(&worker_queue, &session, &config, &ctx, &faults, service)
            })
            .expect("spawning the scheduler thread succeeds");
        Ok(Server {
            queue,
            rejected: Arc::new(AtomicU64::new(0)),
            seq: Arc::new(AtomicU64::new(0)),
            worker: Some(worker),
            started: Instant::now(),
        })
    }

    fn start_with_recorder(
        session: Arc<Session>,
        config: SchedulerConfig,
        ctx: ExecContext,
        recorder: Option<Arc<TraceRecorder>>,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let worker_queue = Arc::clone(&queue);
        let worker = std::thread::Builder::new()
            .name(format!("nbsmt-serve-{}", session.name()))
            .spawn(move || {
                scheduler_loop(&worker_queue, &session, &config, &ctx, recorder.as_deref())
            })
            .expect("spawning the scheduler thread succeeds");
        Ok(Server {
            queue,
            rejected: Arc::new(AtomicU64::new(0)),
            seq: Arc::new(AtomicU64::new(0)),
            worker: Some(worker),
            started: Instant::now(),
        })
    }

    /// A new submission handle.
    pub fn client(&self) -> Client {
        Client {
            queue: Arc::clone(&self.queue),
            rejected: Arc::clone(&self.rejected),
            seq: Arc::clone(&self.seq),
        }
    }

    /// Current queue depth (approximate under concurrency).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stops accepting work, drains the queue, joins the scheduler, and
    /// returns the final metrics snapshot (wall-clock window).
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.queue.close();
        let mut metrics = self
            .worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("scheduler thread exits cleanly");
        metrics.rejected += self.rejected.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        metrics.snapshot(elapsed)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn scheduler_loop(
    queue: &BoundedQueue<QueuedRequest>,
    session: &Session,
    config: &SchedulerConfig,
    ctx: &ExecContext,
    recorder: Option<&TraceRecorder>,
) -> ServeMetrics {
    let mut metrics = ServeMetrics::new();
    let max_batch = config.batch.max_batch;
    let max_wait = Duration::from_nanos(config.batch.max_wait_ns);
    let mut batch_index = 0u64;
    while let Some(first) = queue.pop_blocking() {
        // Keep the batch open until it fills or the first request's wait
        // budget is spent. Requests already queued behind `first` are
        // claimed in one lock; only the remainder waits on the deadline.
        let deadline = first.submitted + max_wait;
        let batch = queue.collect_batch(first, max_batch, deadline);
        metrics.record_batch(batch.len(), queue.len());
        batch_index += 1;
        let trace = recorder.map(|rec| BatchTraceCtx {
            recorder: rec,
            replica: 0,
            batch_index,
            mode: 0,
        });
        execute_batch(session, ctx, batch, &mut metrics, trace.as_ref());
    }
    metrics
}

/// [`scheduler_loop`] with a [`ReplicaFaults`] schedule applied for real:
/// the same batch loop plus the 1-based batch clock the fault cursor
/// consumes — identical semantics to the replica pool's live faulted
/// worker, minus the handoff (a lone server shes every orphan on crash).
fn scheduler_loop_faulted(
    queue: &BoundedQueue<QueuedRequest>,
    session: &Session,
    config: &SchedulerConfig,
    ctx: &ExecContext,
    faults: &ReplicaFaults,
    service: ServiceModel,
) -> ServeMetrics {
    let mut metrics = ServeMetrics::new();
    let max_batch = config.batch.max_batch;
    let max_wait = Duration::from_nanos(config.batch.max_wait_ns);
    let mut batch_index = 0u64;
    while let Some(first) = queue.pop_blocking() {
        batch_index += 1;
        let deadline = first.submitted + max_wait;
        let batch = queue.collect_batch(first, max_batch, deadline);
        let batch_keys: Vec<u64> = batch.iter().map(|r| r.key).collect();
        metrics.record_batch(batch.len(), queue.len());
        execute_batch(session, ctx, batch, &mut metrics, None);
        let factor = faults.service_factor_x1024(batch_index);
        if factor > 1024 {
            // The straggler pads the batch with the *extra* time the factor
            // implies over the service model's size-aware nominal cost.
            let extra = (service.batch_ns(session, batch_keys.iter().copied()) as u128
                * (factor - 1024) as u128
                / 1024)
                .min(u128::from(u64::MAX)) as u64;
            std::thread::sleep(Duration::from_nanos(extra));
        }
        let post = faults.after_batch(batch_index);
        if post.stall_ns > 0 {
            metrics.record_stall();
            std::thread::sleep(Duration::from_nanos(post.stall_ns));
        }
        if post.close_queue {
            queue.close_admissions();
        }
        if post.crashed {
            queue.close_admissions();
            metrics.record_crash();
            for _orphan in queue.drain_up_to(usize::MAX) {
                // No survivor exists: the orphan sheds, and dropping its
                // slot cancels the client's handle.
                metrics.record_handoff_shed();
            }
            break;
        }
    }
    metrics
}

/// Executes one coalesced batch and completes every member's response slot
/// — shared by the single-session scheduler and the replica-pool workers.
/// With a [`BatchTraceCtx`] the batch leaves the full wall-clock span chain
/// (queue-wait, batch, per-layer kernels, service, respond) on the shared
/// recorder.
pub(crate) fn execute_batch<R: BatchItem>(
    session: &Session,
    ctx: &ExecContext,
    batch: Vec<R>,
    metrics: &mut ServeMetrics,
    trace: Option<&BatchTraceCtx<'_>>,
) {
    let inputs: Vec<&Tensor<f32>> = batch.iter().map(BatchItem::input).collect();
    let exec_start = Instant::now();
    let result = match trace {
        Some(_) => session.infer_batch_traced(ctx, &inputs),
        None => session
            .infer_batch_refs(ctx, &inputs)
            .map(|out| (out, Vec::new())),
    };
    match result {
        Ok((responses, kernels)) => {
            let done = Instant::now();
            if let Some(t) = trace {
                let clock = t.recorder.clock();
                let start_ns = clock.instant_ns(exec_start);
                let done_ns = clock.instant_ns(done);
                let dur_ns = done_ns.saturating_sub(start_ns);
                t.recorder.record(
                    TraceEvent::new(TraceStage::Batch, t.replica, start_ns, dur_ns)
                        .batch(t.batch_index)
                        .mode(t.mode)
                        .batch_size(batch.len()),
                );
                let weights: Vec<u64> = kernels.iter().map(|k| k.stats.cycles).collect();
                for (kernel, (span_start, span_dur)) in kernels
                    .iter()
                    .zip(layer_intervals(start_ns, dur_ns, &weights))
                {
                    t.recorder.record(
                        TraceEvent::new(TraceStage::Kernel, t.replica, span_start, span_dur)
                            .batch(t.batch_index)
                            .mode(t.mode)
                            .layer(kernel.layer)
                            .stats(kernel.stats),
                    );
                }
                for request in &batch {
                    let submit_ns = clock.instant_ns(request.submitted());
                    t.recorder.record(
                        TraceEvent::new(TraceStage::Submit, t.replica, submit_ns, 0)
                            .request(request.key()),
                    );
                    t.recorder.record(
                        TraceEvent::new(
                            TraceStage::QueueWait,
                            t.replica,
                            submit_ns,
                            start_ns.saturating_sub(submit_ns),
                        )
                        .request(request.key())
                        .batch(t.batch_index),
                    );
                    t.recorder.record(
                        TraceEvent::new(TraceStage::Service, t.replica, start_ns, dur_ns)
                            .request(request.key())
                            .batch(t.batch_index)
                            .mode(t.mode),
                    );
                    t.recorder.record(
                        TraceEvent::new(TraceStage::Respond, t.replica, done_ns, 0)
                            .request(request.key())
                            .batch(t.batch_index),
                    );
                }
            }
            for (request, response) in batch.into_iter().zip(responses) {
                let wait = exec_start
                    .saturating_duration_since(request.submitted())
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                let service = done
                    .saturating_duration_since(exec_start)
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                metrics.record_stage_split(wait, service);
                let latency = done
                    .saturating_duration_since(request.submitted())
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                metrics.record_latency(latency);
                request.into_slot().complete(Ok(response));
            }
        }
        Err(e) => {
            // A malformed request poisons only its own batch; every member
            // learns the error and the server keeps serving.
            for request in batch {
                request.into_slot().complete(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchPolicy, SmtConfig};
    use crate::session::compile_session;
    use nbsmt_workloads::synthnet::quick_synthnet;

    fn test_session() -> (Arc<Session>, Vec<Tensor<f32>>) {
        let trained = quick_synthnet(19).expect("training succeeds");
        let calib = trained.calibration_inputs(8, 900);
        let s = trained.task.image_size;
        let session = compile_session(
            "synthnet",
            &trained.model,
            &[calib],
            SmtConfig::sysmt_2t(),
            [1, s, s],
        )
        .unwrap();
        let (inputs, _) = trained.sample_requests(16, 901);
        (Arc::new(session), inputs)
    }

    #[test]
    fn serves_requests_end_to_end() {
        let (session, inputs) = test_session();
        let server = Server::start(
            session,
            SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait_ns: 1_000_000,
                },
                queue_capacity: 32,
            },
            ExecContext::sequential(),
        )
        .expect("config is valid");
        let client = server.client();
        let handles: Vec<_> = inputs
            .iter()
            .map(|i| client.submit(i.clone()).expect("queue has room"))
            .collect();
        for handle in handles {
            let inference = handle
                .wait()
                .expect("not cancelled")
                .expect("no model error");
            assert!(!inference.logits.is_empty());
        }
        let snapshot = server.shutdown();
        assert_eq!(snapshot.completed, 16);
        assert_eq!(snapshot.rejected, 0);
        assert!(snapshot.batches >= 4, "max_batch 4 ⇒ at least 4 batches");
        assert!(snapshot.p99_ns >= snapshot.p50_ns);
        assert!(snapshot.throughput_rps > 0.0);
    }

    #[test]
    fn overload_rejects_with_typed_error() {
        let (session, inputs) = test_session();
        let server = Server::start(
            session,
            SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 1,
                    max_wait_ns: 0,
                },
                queue_capacity: 1,
            },
            ExecContext::sequential(),
        )
        .expect("config is valid");
        let client = server.client();
        let mut accepted = Vec::new();
        let mut rejected = 0usize;
        // Burst far past the queue bound; some must shed.
        for _ in 0..20 {
            for input in &inputs {
                match client.submit(input.clone()) {
                    Ok(h) => accepted.push(h),
                    Err(SubmitError::QueueFull { capacity }) => {
                        assert_eq!(capacity, 1);
                        rejected += 1;
                    }
                    Err(SubmitError::Closed) => unreachable!("server is running"),
                }
            }
        }
        for handle in accepted {
            let _ = handle.wait().expect("accepted requests complete");
        }
        let snapshot = server.shutdown();
        assert!(rejected > 0, "burst must overflow a capacity-1 queue");
        assert_eq!(snapshot.rejected, rejected as u64);
        assert!(snapshot.completed >= 1);
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let (session, _) = test_session();
        let result = Server::start(
            session,
            SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 0,
                    max_wait_ns: 0,
                },
                queue_capacity: 8,
            },
            ExecContext::sequential(),
        );
        assert!(matches!(
            result.map(|_| ()),
            Err(ServeError::Config(crate::config::ConfigError::ZeroBatch))
        ));
    }

    #[test]
    fn crash_plan_sheds_orphans_and_cancels_handles() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};

        let (session, inputs) = test_session();
        // The server dies after its second batch; everything still queued at
        // that instant must shed by cancelling its handle — no caller hangs.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            replica: 0,
            at_batch: 2,
            kind: FaultKind::Crash,
        }]);
        let server = Server::start_with_faults(
            session,
            SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait_ns: 1_000_000,
                },
                queue_capacity: 32,
            },
            ExecContext::sequential(),
            &plan,
            ServiceModel::default(),
        )
        .expect("config is valid");
        let client = server.client();
        let handles: Vec<_> = inputs
            .iter()
            .map(|i| client.submit(i.clone()).expect("queue has room"))
            .collect();
        let mut completed = 0u64;
        let mut cancelled = 0u64;
        for handle in handles {
            match handle.wait() {
                Ok(result) => {
                    result.expect("no model error");
                    completed += 1;
                }
                Err(_) => cancelled += 1,
            }
        }
        let snapshot = server.shutdown();
        assert_eq!(snapshot.crashes, 1, "the planned crash fires exactly once");
        assert_eq!(snapshot.completed, completed);
        assert_eq!(snapshot.handoff_shed, cancelled, "every orphan sheds");
        assert_eq!(completed + cancelled, 16, "no request is lost track of");
        assert!(
            completed >= 2,
            "both pre-crash batches complete (got {completed})"
        );
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let (session, inputs) = test_session();
        let server = Server::start(
            session,
            SchedulerConfig::default(),
            ExecContext::sequential(),
        )
        .expect("config is valid");
        let client = server.client();
        let _ = server.shutdown();
        assert_eq!(
            client.submit(inputs[0].clone()).map(|_| ()),
            Err(SubmitError::Closed)
        );
    }
}
