//! Deterministic end-to-end tracing for the serving stack.
//!
//! A [`TraceRecorder`] is a bounded, constant-memory ring buffer of
//! structured [`TraceEvent`]s covering the whole request path: submit →
//! queue wait → batch formation → session dispatch → per-layer kernel
//! execution (with NB-SMT [`PeStats`] squeeze/collision counters attached
//! per layer) → response. Every scheduler driver emits the same schema; the
//! only difference is where timestamps come from:
//!
//! * The virtual-clock simulator ([`crate::sim::simulate_pool_traced`]) and
//!   the lockstep [`crate::pool::ReplicaPool`] stamp events with
//!   [`ServiceModel`]-derived virtual nanoseconds, so the two drivers emit
//!   **bit-identical traces** for the same seeded burst — the tracing
//!   extension of the lockstep determinism contract.
//! * The wall-clock server and free-running pool stamp events through
//!   [`Clock::wall`], real elapsed nanoseconds since the recorder's epoch.
//!
//! Worker threads record concurrently, so insertion order is not
//! deterministic under parallelism; [`TraceRecorder::snapshot`] therefore
//! returns events in a **canonical order** (start time, replica, batch,
//! stage, layer, request), which is what makes the exported byte stream
//! comparable across host thread counts and GEMM backends. The ring bound
//! keeps memory constant: once `capacity` events are held, each new event
//! overwrites the oldest and the explicit `dropped` counter ticks —
//! determinism of the *exported* trace is only guaranteed while nothing was
//! dropped.
//!
//! [`ServiceModel`]: crate::sim::ServiceModel

use std::sync::Mutex;
use std::time::Instant;

use nbsmt_core::pe::PeStats;

/// Default ring capacity: 64Ki events (a few MiB), enough for every
/// committed spec while keeping the recorder strictly constant-memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Where a recorder's wall-clock timestamps come from. Virtual-clock
/// drivers bypass the clock entirely and stamp events with model time, so
/// the same recorder type serves both worlds.
#[derive(Debug, Clone, Copy)]
pub enum Clock {
    /// Real time: nanoseconds elapsed since the recorder's creation epoch.
    Wall {
        /// The instant `now_ns` measures from.
        epoch: Instant,
    },
    /// Virtual time: the driver supplies [`crate::sim::ServiceModel`]
    /// nanoseconds explicitly; [`Clock::now_ns`] always reads 0.
    Virtual,
}

impl Clock {
    /// A wall clock anchored at the current instant.
    pub fn wall() -> Clock {
        Clock::Wall {
            epoch: Instant::now(),
        }
    }

    /// The virtual clock: timestamps are supplied by the driver.
    pub fn virtual_clock() -> Clock {
        Clock::Virtual
    }

    /// True when timestamps are driver-supplied virtual nanoseconds.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual)
    }

    /// Nanoseconds since the epoch (0 under the virtual clock).
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall { epoch } => epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Clock::Virtual => 0,
        }
    }

    /// Maps an [`Instant`] (e.g. a request's submission time) onto this
    /// clock's timeline; 0 for instants at or before the epoch, and 0 under
    /// the virtual clock.
    pub fn instant_ns(&self, at: Instant) -> u64 {
        match self {
            Clock::Wall { epoch } => at
                .saturating_duration_since(*epoch)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
            Clock::Virtual => 0,
        }
    }
}

/// The span taxonomy of the request path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// Instant: a request was admitted and routed (arrival time).
    Submit,
    /// Span: admission → batch launch, per request.
    QueueWait,
    /// Span: one coalesced batch, launch → finish.
    Batch,
    /// Span: one layer's kernel execution inside a batch, with its
    /// [`PeStats`] attached.
    Kernel,
    /// Span: batch launch → response, per request (the in-service time).
    Service,
    /// Instant: the request's response completed.
    Respond,
    /// Instant: a pool-controller decision (scale, steal, or predictive
    /// shift) was applied; see [`crate::control::ControlEvent`] for the
    /// structured record.
    Control,
}

impl TraceStage {
    /// Stable display name (the Chrome-trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceStage::Submit => "submit",
            TraceStage::QueueWait => "queue_wait",
            TraceStage::Batch => "batch",
            TraceStage::Kernel => "kernel",
            TraceStage::Service => "service",
            TraceStage::Respond => "respond",
            TraceStage::Control => "control",
        }
    }

    /// Pipeline rank used by the canonical event order.
    pub fn rank(&self) -> u8 {
        match self {
            TraceStage::Submit => 0,
            TraceStage::QueueWait => 1,
            TraceStage::Batch => 2,
            TraceStage::Kernel => 3,
            TraceStage::Service => 4,
            TraceStage::Respond => 5,
            TraceStage::Control => 6,
        }
    }

    /// True for zero-duration instant events (submit/respond/control
    /// markers).
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            TraceStage::Submit | TraceStage::Respond | TraceStage::Control
        )
    }
}

/// One structured trace event. Spans carry a duration; instants have
/// `dur_ns == 0`. Optional fields identify what the span belongs to:
/// requests carry `request`, batch-scoped spans carry `batch`/`mode`, and
/// kernel spans additionally carry `layer` and the layer's [`PeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which pipeline stage this event records.
    pub stage: TraceStage,
    /// Replica (or scheduler) index the event occurred on.
    pub replica: usize,
    /// Request key/id, for request-scoped stages.
    pub request: Option<u64>,
    /// Replica-local 1-based batch index, for batch-scoped stages.
    pub batch: Option<u64>,
    /// Ladder rung the batch executed at.
    pub mode: Option<usize>,
    /// Compute-layer index, for kernel spans.
    pub layer: Option<usize>,
    /// Span start (ns on the recorder's timeline).
    pub start_ns: u64,
    /// Span duration (0 for instants).
    pub dur_ns: u64,
    /// Number of requests coalesced, for batch spans.
    pub batch_size: Option<usize>,
    /// NB-SMT PE counters for kernel spans (zeroed for dense layers).
    pub stats: Option<PeStats>,
}

impl TraceEvent {
    /// A bare event for `stage` on `replica` spanning
    /// `[start_ns, start_ns + dur_ns)`; attach identities with the builder
    /// methods.
    pub fn new(stage: TraceStage, replica: usize, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            stage,
            replica,
            request: None,
            batch: None,
            mode: None,
            layer: None,
            start_ns,
            dur_ns,
            batch_size: None,
            stats: None,
        }
    }

    /// Attaches the request key.
    pub fn request(mut self, key: u64) -> TraceEvent {
        self.request = Some(key);
        self
    }

    /// Attaches the replica-local 1-based batch index.
    pub fn batch(mut self, index: u64) -> TraceEvent {
        self.batch = Some(index);
        self
    }

    /// Attaches the ladder rung.
    pub fn mode(mut self, mode: usize) -> TraceEvent {
        self.mode = Some(mode);
        self
    }

    /// Attaches the compute-layer index.
    pub fn layer(mut self, layer: usize) -> TraceEvent {
        self.layer = Some(layer);
        self
    }

    /// Attaches the batch size.
    pub fn batch_size(mut self, size: usize) -> TraceEvent {
        self.batch_size = Some(size);
        self
    }

    /// Attaches the layer's PE counters.
    pub fn stats(mut self, stats: PeStats) -> TraceEvent {
        self.stats = Some(stats);
        self
    }

    /// The canonical sort key: chronological, then replica, then batch,
    /// then pipeline stage, then layer, then request. Worker threads may
    /// record in any interleaving; sorting by this key recovers one
    /// deterministic order for identical event sets.
    fn sort_key(&self) -> (u64, usize, u64, u8, usize, u64, u64) {
        (
            self.start_ns,
            self.replica,
            self.batch.unwrap_or(0),
            self.stage.rank(),
            self.layer.unwrap_or(0),
            self.request.unwrap_or(0),
            self.dur_ns,
        )
    }
}

/// One layer's kernel execution as a traced forward pass reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerKernel {
    /// Compute-layer index within the model.
    pub layer: usize,
    /// GEMM output rows (the batch's sample count for dense layers).
    pub rows: usize,
    /// GEMM output columns.
    pub cols: usize,
    /// PE counters for the layer ([`PeStats::default`] on dense layers,
    /// which never enter the NB-SMT array).
    pub stats: PeStats,
}

/// A frozen, canonically ordered view of a recorder's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Events in canonical order (see [`TraceEvent::sort_key`] docs).
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
    /// The ring capacity the recorder was built with.
    pub capacity: usize,
}

struct Ring {
    events: Vec<TraceEvent>,
    /// Oldest slot once the ring is full (next to be overwritten).
    head: usize,
    dropped: u64,
}

/// Bounded, internally synchronized trace-event recorder. Share it as
/// `Arc<TraceRecorder>` across scheduler workers; recording is one short
/// mutex-guarded ring write.
pub struct TraceRecorder {
    clock: Clock,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    /// A recorder over `clock` holding at most `capacity` events (clamped
    /// to at least 1).
    pub fn new(clock: Clock, capacity: usize) -> TraceRecorder {
        let capacity = capacity.max(1);
        TraceRecorder {
            clock,
            capacity,
            ring: Mutex::new(Ring {
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// A virtual-clock recorder at the default capacity — what the
    /// deterministic drivers use.
    pub fn virtual_clock() -> TraceRecorder {
        TraceRecorder::new(Clock::virtual_clock(), DEFAULT_TRACE_CAPACITY)
    }

    /// A wall-clock recorder (epoch = now) at the default capacity.
    pub fn wall_clock() -> TraceRecorder {
        TraceRecorder::new(Clock::wall(), DEFAULT_TRACE_CAPACITY)
    }

    /// The recorder's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, overwriting the oldest held event when full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let head = ring.head;
            ring.events[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock").events.len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring lock").dropped
    }

    /// Freezes the recorder's contents into a canonically ordered snapshot
    /// (the recorder keeps recording afterwards).
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock().expect("trace ring lock");
        // Reassemble arrival order (oldest first) before the canonical
        // sort, so ties beyond the key stay in a reproducible order when
        // nothing was dropped.
        let mut events: Vec<TraceEvent> = ring.events[ring.head..].to_vec();
        events.extend_from_slice(&ring.events[..ring.head]);
        events.sort_by_key(TraceEvent::sort_key);
        TraceSnapshot {
            events,
            dropped: ring.dropped,
            capacity: self.capacity,
        }
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("clock", &self.clock)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Splits a batch's service interval `[start_ns, start_ns + dur_ns)` into
/// one sub-interval per layer, proportional to `weights` (per-layer PE
/// cycle counts). Pure integer arithmetic: cumulative rounding makes the
/// intervals contiguous and the last one end exactly at `start + dur`, so
/// the virtual-clock drivers and the wall-clock drivers partition
/// identically. An all-zero weight vector splits equally.
pub fn layer_intervals(start_ns: u64, dur_ns: u64, weights: &[u64]) -> Vec<(u64, u64)> {
    if weights.is_empty() {
        return Vec::new();
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let uniform = total == 0;
    let total = if uniform {
        weights.len() as u128
    } else {
        total
    };
    let mut out = Vec::with_capacity(weights.len());
    let mut cum: u128 = 0;
    let mut prev_end = start_ns;
    for &w in weights {
        cum += if uniform { 1 } else { w as u128 };
        let end = start_ns.saturating_add((dur_ns as u128 * cum / total) as u64);
        out.push((prev_end, end.saturating_sub(prev_end)));
        prev_end = end;
    }
    out
}

/// Everything [`crate::server::execute_batch`] needs to emit wall-clock
/// trace events for one batch: the shared recorder plus the batch's
/// identity on its replica.
pub(crate) struct BatchTraceCtx<'a> {
    pub recorder: &'a TraceRecorder,
    pub replica: usize,
    pub batch_index: u64,
    pub mode: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(stage: TraceStage, replica: usize, start: u64) -> TraceEvent {
        TraceEvent::new(stage, replica, start, 10)
    }

    #[test]
    fn ring_fills_wraps_and_counts_drops_exactly() {
        let rec = TraceRecorder::new(Clock::virtual_clock(), 4);
        assert!(rec.is_empty());
        for i in 0..4u64 {
            rec.record(event(TraceStage::Batch, 0, i).batch(i + 1));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 0);
        // Two more: the two oldest events are overwritten, one drop each.
        for i in 4..6u64 {
            rec.record(event(TraceStage::Batch, 0, i).batch(i + 1));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 2);
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.capacity, 4);
        let starts: Vec<u64> = snap.events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4, 5], "oldest two must be gone");
        // Wrapping all the way around keeps the bound and the count exact.
        for i in 6..104u64 {
            rec.record(event(TraceStage::Batch, 0, i));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 100);
    }

    #[test]
    fn snapshot_order_is_canonical_not_insertion() {
        let rec = TraceRecorder::new(Clock::virtual_clock(), 64);
        // Insert deliberately out of order, as racing workers would.
        rec.record(event(TraceStage::Respond, 1, 500).request(7));
        rec.record(event(TraceStage::Kernel, 0, 100).batch(1).layer(2));
        rec.record(event(TraceStage::Submit, 0, 0).request(3));
        rec.record(event(TraceStage::Kernel, 0, 100).batch(1).layer(0));
        rec.record(event(TraceStage::Batch, 0, 100).batch(1));
        rec.record(event(TraceStage::QueueWait, 0, 100).batch(1).request(3));
        let snap = rec.snapshot();
        let order: Vec<(u64, &'static str, usize)> = snap
            .events
            .iter()
            .map(|e| (e.start_ns, e.stage.name(), e.layer.unwrap_or(0)))
            .collect();
        assert_eq!(
            order,
            vec![
                (0, "submit", 0),
                (100, "queue_wait", 0),
                (100, "batch", 0),
                (100, "kernel", 0),
                (100, "kernel", 2),
                (500, "respond", 0),
            ]
        );
    }

    #[test]
    fn layer_intervals_are_contiguous_and_exact() {
        // Weighted: intervals tile [1000, 1000 + 700) exactly.
        let spans = layer_intervals(1000, 700, &[1, 2, 4]);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].0, 1000);
        let mut cursor = 1000;
        for &(start, dur) in &spans {
            assert_eq!(start, cursor, "intervals must be contiguous");
            cursor = start + dur;
        }
        assert_eq!(cursor, 1700, "last interval must end exactly at finish");
        // Heavier layers get proportionally longer spans.
        assert!(spans[2].1 > spans[0].1);
        // All-zero weights split equally.
        let equal = layer_intervals(0, 900, &[0, 0, 0]);
        assert_eq!(equal, vec![(0, 300), (300, 300), (600, 300)]);
        assert!(layer_intervals(0, 100, &[]).is_empty());
    }

    #[test]
    fn wall_clock_maps_instants_onto_its_epoch() {
        let clock = Clock::wall();
        assert!(!clock.is_virtual());
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a, "wall clock must be monotone");
        // An instant before the epoch clamps to 0.
        let past = Instant::now();
        let later = Clock::wall();
        let _ = later.instant_ns(past); // must not panic (saturates)
        assert!(Clock::virtual_clock().is_virtual());
        assert_eq!(Clock::virtual_clock().now_ns(), 0);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let rec = TraceRecorder::new(Clock::virtual_clock(), 0);
        assert_eq!(rec.capacity(), 1);
        rec.record(event(TraceStage::Submit, 0, 1));
        rec.record(event(TraceStage::Submit, 0, 2));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.snapshot().events[0].start_ns, 2);
    }
}
