//! Deterministic fault injection for the replica pool.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic schedule of
//! [`FaultEvent`]s — replica crashes, stalls, straggler windows, and
//! mid-flight queue closes — generated from a [`FaultConfig`] (validated
//! through the workspace `Validate` trait) or hand-authored via
//! [`FaultPlan::from_events`]. The *same* plan is injected into both
//! scheduler drivers: the threaded [`crate::pool::ReplicaPool`] (lockstep
//! mode via `start_lockstep`, live mode via `start_with_faults`) and the
//! discrete-event [`crate::sim::simulate_pool_faulted`]. Because every
//! fault fires at a replica-local *batch index* rather than at a wall-clock
//! instant, the schedule replays bit-identically under the lockstep
//! determinism contract — every incident is a seed, and every seed is a
//! permanent regression test ([`chaos_corpus`]).
//!
//! The client-side countermeasures live here too: [`FaultClient`] wraps a
//! [`PoolClient`] with retry-with-exponential-backoff on [`SubmitError`] or
//! replica-death cancellation, and optional request hedging — a duplicate
//! submit after a latency-derived delay, first response wins, the loser
//! cancelled through the existing drop-safe response handles.

use std::time::{Duration, Instant};

use nbsmt_tensor::tensor::Tensor;
use nbsmt_tensor::validate::Validate;

use crate::config::{ConfigError, RoutePolicy};
use crate::pool::PoolClient;
use crate::queue::{Cancelled, TryWait};
use crate::server::RequestResult;

/// What goes wrong when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The replica dies after completing the batch: its queue is drained and
    /// handed off to the surviving replicas (or shed when none can take it),
    /// and it never launches again.
    Crash,
    /// The replica freezes for a fixed duration after the batch (virtual
    /// nanoseconds in the simulator and the lockstep pool, a real sleep in
    /// the live pool).
    Stall {
        /// How long the replica is frozen [ns].
        duration_ns: u64,
    },
    /// The replica serves slowly for a window of batches: service time is
    /// multiplied by `factor_x1024 / 1024` for batches
    /// `at_batch .. at_batch + window_batches`.
    Straggle {
        /// Service-time multiplier, scaled by 1024 (1024 = 1×, ≥ 1024).
        factor_x1024: u64,
        /// Number of consecutive batches the slowdown covers (≥ 1).
        window_batches: u64,
    },
    /// The replica's queue stops admitting new work after the batch; queued
    /// requests still drain and the worker stays alive.
    CloseQueue,
}

/// One scheduled fault: `kind` fires on `replica` relative to its 1-based
/// `at_batch`-th launched batch (a [`FaultKind::Straggle`] covers the window
/// *starting at* that batch; every other kind fires *after* it completes).
/// A replica that never reaches `at_batch` never experiences the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Replica the fault targets.
    pub replica: usize,
    /// 1-based replica-local batch index the fault is anchored to.
    pub at_batch: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Seeded fault-schedule generator configuration, validated through the
/// workspace [`Validate`] trait — both scheduler drivers and the bench
/// spec layer reject the same bad values with the same typed
/// [`ConfigError`]s.
///
/// Rates are per-mille probabilities (0–1000) drawn independently per
/// `(replica, batch)` coordinate from a splitmix64 stream of `seed`; at most
/// one event is generated per coordinate, and a crash ends generation for
/// its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the deterministic event stream.
    pub seed: u64,
    /// Batch horizon per replica: events are generated for batch indices
    /// `1..=horizon_batches` (≥ 1).
    pub horizon_batches: u64,
    /// Per-mille crash probability per (replica, batch) coordinate (≤ 1000).
    pub crash_per_mille: u64,
    /// Per-mille stall probability per coordinate (≤ 1000).
    pub stall_per_mille: u64,
    /// Stall duration [ns] (≥ 1).
    pub stall_ns: u64,
    /// Per-mille straggle-window probability per coordinate (≤ 1000).
    pub straggle_per_mille: u64,
    /// Straggle service-time multiplier, scaled by 1024 (≥ 1024 = 1×).
    pub straggle_factor_x1024: u64,
    /// Straggle window length in batches (≥ 1).
    pub straggle_window_batches: u64,
    /// Per-mille queue-close probability per coordinate (≤ 1000).
    pub close_per_mille: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 2024,
            horizon_batches: 32,
            crash_per_mille: 0,
            stall_per_mille: 0,
            stall_ns: 200_000,
            straggle_per_mille: 0,
            straggle_factor_x1024: 4096,
            straggle_window_batches: 4,
            close_per_mille: 0,
        }
    }
}

impl Validate for FaultConfig {
    type Error = ConfigError;

    fn validate(&self) -> Result<(), ConfigError> {
        for rate in [
            self.crash_per_mille,
            self.stall_per_mille,
            self.straggle_per_mille,
            self.close_per_mille,
        ] {
            if rate > 1000 {
                return Err(ConfigError::FaultRateOutOfRange { rate });
            }
        }
        if self.horizon_batches == 0 {
            return Err(ConfigError::ZeroFaultHorizon);
        }
        if self.stall_ns == 0 {
            return Err(ConfigError::ZeroStallDuration);
        }
        if self.straggle_window_batches == 0 {
            return Err(ConfigError::ZeroStraggleWindow);
        }
        if self.straggle_factor_x1024 < 1024 {
            return Err(ConfigError::StraggleFactorBelowUnit {
                factor_x1024: self.straggle_factor_x1024,
            });
        }
        Ok(())
    }
}

/// A deterministic, replayable schedule of [`FaultEvent`]s for a pool.
///
/// Generated from a seed ([`FaultPlan::generate`]) or hand-authored
/// ([`FaultPlan::from_events`]); the same plan drives the threaded pool and
/// the virtual-clock simulator to bit-identical failure behaviour under the
/// lockstep contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// The per-mille draw for a `(seed, replica, batch)` coordinate — one
/// splitmix64 finalizer application, platform-independent.
fn fault_draw(seed: u64, replica: usize, batch: u64) -> u64 {
    let coord = (replica as u64).wrapping_shl(32) ^ batch;
    crate::config::route_hash(seed ^ crate::config::route_hash(coord)) % 1000
}

impl FaultPlan {
    /// Generates the deterministic schedule for `replicas` replicas: the same
    /// `(config, replicas)` always yields the same plan, on any platform.
    ///
    /// # Errors
    ///
    /// Rejects an invalid `config` with its typed [`ConfigError`].
    pub fn generate(config: &FaultConfig, replicas: usize) -> Result<FaultPlan, ConfigError> {
        config.validate()?;
        let crash_lt = config.crash_per_mille;
        let stall_lt = crash_lt + config.stall_per_mille;
        let straggle_lt = stall_lt + config.straggle_per_mille;
        let close_lt = straggle_lt + config.close_per_mille;
        let mut events = Vec::new();
        for replica in 0..replicas {
            for at_batch in 1..=config.horizon_batches {
                let draw = fault_draw(config.seed, replica, at_batch);
                let kind = if draw < crash_lt {
                    Some(FaultKind::Crash)
                } else if draw < stall_lt {
                    Some(FaultKind::Stall {
                        duration_ns: config.stall_ns,
                    })
                } else if draw < straggle_lt {
                    Some(FaultKind::Straggle {
                        factor_x1024: config.straggle_factor_x1024,
                        window_batches: config.straggle_window_batches,
                    })
                } else if draw < close_lt {
                    Some(FaultKind::CloseQueue)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    events.push(FaultEvent {
                        replica,
                        at_batch,
                        kind,
                    });
                    if kind == FaultKind::Crash {
                        break; // a dead replica generates nothing further
                    }
                }
            }
        }
        Ok(FaultPlan { events })
    }

    /// A hand-authored plan (the chaos-corpus path). Events may be given in
    /// any order; they are sorted by `(replica, at_batch)`.
    pub fn from_events(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| (e.replica, e.at_batch));
        FaultPlan { events }
    }

    /// A plan with no events — both drivers behave exactly as if no fault
    /// machinery were present.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled events, sorted by `(replica, at_batch)` for generated
    /// and hand-authored plans alike.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The per-replica event cursor a scheduler driver consumes.
    pub fn for_replica(&self, replica: usize) -> ReplicaFaults {
        ReplicaFaults {
            events: self
                .events
                .iter()
                .filter(|e| e.replica == replica)
                .copied()
                .collect(),
        }
    }
}

/// What a replica must apply after completing a batch: the aggregate of
/// every [`FaultEvent`] anchored at that batch index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PostBatch {
    /// The replica dies now: drain the queue, hand off, never launch again.
    pub crashed: bool,
    /// Total stall time to insert before the next launch [ns].
    pub stall_ns: u64,
    /// Admissions close now; queued work still drains.
    pub close_queue: bool,
}

impl PostBatch {
    /// Whether anything fires at this batch.
    pub fn is_noop(&self) -> bool {
        !self.crashed && self.stall_ns == 0 && !self.close_queue
    }
}

/// One replica's view of a [`FaultPlan`]: the pure lookups both scheduler
/// drivers call at the same points of the batch lifecycle — service-time
/// factor at launch, post-batch effects after completion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicaFaults {
    events: Vec<FaultEvent>,
}

impl ReplicaFaults {
    /// Service-time multiplier (×1024) for the replica's 1-based
    /// `batch_index`-th batch: the maximum factor over every straggle window
    /// covering it, or 1024 (1×) when none does.
    pub fn service_factor_x1024(&self, batch_index: u64) -> u64 {
        let mut factor = 1024u64;
        for event in &self.events {
            if let FaultKind::Straggle {
                factor_x1024,
                window_batches,
            } = event.kind
            {
                if event.at_batch <= batch_index
                    && batch_index < event.at_batch.saturating_add(window_batches)
                {
                    factor = factor.max(factor_x1024);
                }
            }
        }
        factor
    }

    /// The aggregate post-batch effect after the replica's 1-based
    /// `batch_index`-th batch completes.
    pub fn after_batch(&self, batch_index: u64) -> PostBatch {
        let mut post = PostBatch::default();
        for event in &self.events {
            if event.at_batch != batch_index {
                continue;
            }
            match event.kind {
                FaultKind::Crash => post.crashed = true,
                FaultKind::Stall { duration_ns } => {
                    post.stall_ns = post.stall_ns.saturating_add(duration_ns);
                }
                FaultKind::CloseQueue => post.close_queue = true,
                FaultKind::Straggle { .. } => {} // applied at launch, not after
            }
        }
        post
    }

    /// Whether this replica has any scheduled events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One in-queue request re-routed (or shed) when its replica crashed —
/// recorded identically by the threaded pool and the simulator, so handoff
/// decisions are part of the extended lockstep contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffRecord {
    /// The replica that crashed.
    pub from_replica: usize,
    /// The crashed replica's 1-based batch count at the moment of death.
    pub at_batch: u64,
    /// The request's key (threaded pool) / id (simulator).
    pub key: u64,
    /// The surviving replica that took the request, or `None` when every
    /// survivor was dead, closed, or full and the request was shed.
    pub to_replica: Option<usize>,
}

/// The pure routing decision shared by [`crate::pool::ReplicaPool`]'s router
/// and the simulator: picks among the `eligible` replicas — `(index, queue
/// length)` pairs in ascending index order, restricted to alive, open
/// replicas — or returns `None` when none is eligible. With every replica
/// eligible this reproduces the original fault-free router arithmetic
/// exactly (round-robin `tick % n`, `route_hash(key) % n`, least-outstanding
/// min by `(len, index)`).
pub fn pick_replica(
    policy: RoutePolicy,
    key: u64,
    rr_tick: u64,
    eligible: &[(usize, usize)],
) -> Option<usize> {
    if eligible.is_empty() {
        return None;
    }
    let n = eligible.len() as u64;
    let slot = match policy {
        RoutePolicy::RoundRobin => (rr_tick % n) as usize,
        RoutePolicy::Hashed => (crate::config::route_hash(key) % n) as usize,
        RoutePolicy::LeastOutstanding => eligible
            .iter()
            .enumerate()
            .min_by_key(|(_, &(index, len))| (len, index))
            .map(|(slot, _)| slot)
            .expect("eligible is non-empty"),
        RoutePolicy::PowerOfTwo => {
            // Two independent seeded probes of the eligible set; the
            // shallower queue wins, ties break to the lower slot (hence the
            // lower replica index — eligible is in ascending index order).
            let a = (crate::config::route_hash(key) % n) as usize;
            let b = (crate::config::route_hash(key ^ crate::config::P2C_SALT) % n) as usize;
            if (eligible[b].1, b) < (eligible[a].1, a) {
                b
            } else {
                a
            }
        }
    };
    Some(eligible[slot].0)
}

/// The pure handoff rule shared by both drivers: starting from the rotating
/// `cursor`, the first replica that is not the crashed one, is eligible
/// (alive and admitting), and has room takes the request; the cursor
/// advances past the pick so consecutive orphans spread out. `states[i]` is
/// `(eligible, queue length)` for replica `i`. Returns `None` — shed — when
/// no replica qualifies.
pub fn pick_handoff_target(
    from: usize,
    cursor: &mut usize,
    states: &[(bool, usize)],
    capacity: usize,
) -> Option<usize> {
    let n = states.len();
    for k in 0..n {
        let idx = (*cursor + k) % n;
        if idx == from {
            continue;
        }
        let (eligible, len) = states[idx];
        if eligible && len < capacity {
            *cursor = (idx + 1) % n;
            return Some(idx);
        }
    }
    None
}

/// The committed chaos-regression corpus: seed-named schedules, each
/// encoding one incident class as a permanent, replayable regression test.
/// All schedules target a 2-replica pool (the `fault_schedules.rs` and
/// `serve_determinism.rs` fixtures).
pub fn chaos_corpus() -> Vec<(&'static str, FaultPlan)> {
    vec![
        // Incident: a replica dies while its queue still holds most of a
        // burst — the drain/handoff path must re-route every orphan to the
        // survivor with permits reconciled exactly.
        (
            "crash-during-drain",
            FaultPlan::from_events(vec![FaultEvent {
                replica: 1,
                at_batch: 1,
                kind: FaultKind::Crash,
            }]),
        ),
        // Incident: a replica freezes right as queue pressure is driving the
        // adaptive ladder up — escalation must resume, not wedge, after the
        // stall. The 50ms freeze dominates real host execution time, so a
        // live pool's hedging client sees it as an unambiguous straggler.
        (
            "stall-at-escalation",
            FaultPlan::from_events(vec![FaultEvent {
                replica: 0,
                at_batch: 2,
                kind: FaultKind::Stall {
                    duration_ns: 50_000_000,
                },
            }]),
        ),
        // Incident: fleet-wide slowdown (thermal throttling) — every replica
        // serves 4× slow for a window; nothing crashes, nothing sheds, p95
        // balloons and the adaptive pool escalates on it.
        (
            "all-replicas-straggle",
            FaultPlan::from_events(vec![
                FaultEvent {
                    replica: 0,
                    at_batch: 1,
                    kind: FaultKind::Straggle {
                        factor_x1024: 4096,
                        window_batches: 8,
                    },
                },
                FaultEvent {
                    replica: 1,
                    at_batch: 1,
                    kind: FaultKind::Straggle {
                        factor_x1024: 4096,
                        window_batches: 8,
                    },
                },
            ]),
        ),
        // Incident: a replica dies while hedged duplicates are in flight —
        // the hedge must win on the survivor and the loser's cancellation
        // must not leak a permit.
        (
            "crash-with-hedge-in-flight",
            FaultPlan::from_events(vec![FaultEvent {
                replica: 0,
                at_batch: 2,
                kind: FaultKind::Crash,
            }]),
        ),
        // Incident: cascading failure — the second crash finds no survivor,
        // so its whole queue sheds; every shed must surface as a typed
        // cancellation, never a hang.
        (
            "double-crash-cascade",
            FaultPlan::from_events(vec![
                FaultEvent {
                    replica: 1,
                    at_batch: 1,
                    kind: FaultKind::Crash,
                },
                FaultEvent {
                    replica: 0,
                    at_batch: 4,
                    kind: FaultKind::Crash,
                },
            ]),
        ),
        // Incident: the only survivor has closed admissions when a crash
        // tries to hand off — handoff must respect the close and shed
        // rather than sneak past admission control.
        (
            "closed-survivor-sheds",
            FaultPlan::from_events(vec![
                FaultEvent {
                    replica: 1,
                    at_batch: 1,
                    kind: FaultKind::CloseQueue,
                },
                FaultEvent {
                    replica: 0,
                    at_batch: 2,
                    kind: FaultKind::Crash,
                },
            ]),
        ),
    ]
}

/// Retry policy of the [`FaultClient`]: up to `max_retries` re-submissions
/// with exponential backoff starting at `backoff_base_ns` and doubling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-submissions after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff sleep [ns]; doubles each retry.
    pub backoff_base_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ns: 50_000,
        }
    }
}

/// Hedging policy of the [`FaultClient`]: when the primary response has not
/// arrived `delay_ns` after submission, a duplicate is submitted under a
/// derived key and the first response wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// How long to wait on the primary before hedging [ns] — typically
    /// derived from an observed or simulated p95.
    pub delay_ns: u64,
}

/// Client-side countermeasure counters (separate from the pool's
/// [`crate::metrics::ServeMetrics`] — these are the *client's* view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultClientStats {
    /// Submission attempts (first tries + retries).
    pub attempts: u64,
    /// Re-submissions after a typed rejection or a cancellation.
    pub retries: u64,
    /// Hedge duplicates submitted.
    pub hedges: u64,
    /// Calls won by the hedge (it responded before the primary).
    pub hedge_wins: u64,
    /// Calls that received a response.
    pub completed: u64,
    /// Calls abandoned after the retry budget.
    pub failed: u64,
}

/// A fault-tolerant client over a [`PoolClient`]: retry with exponential
/// backoff on typed submit errors and replica-death cancellations, plus
/// optional straggler hedging. The hedge's loser is cancelled simply by
/// dropping its drop-safe [`crate::queue::ResponseHandle`].
pub struct FaultClient {
    client: PoolClient,
    retry: RetryPolicy,
    hedge: Option<HedgePolicy>,
    stats: FaultClientStats,
}

impl FaultClient {
    /// Wraps `client` with the given countermeasures.
    pub fn new(client: PoolClient, retry: RetryPolicy, hedge: Option<HedgePolicy>) -> Self {
        FaultClient {
            client,
            retry,
            hedge,
            stats: FaultClientStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultClientStats {
        self.stats
    }

    /// Submits `key`/`input` and blocks for the response, applying retry and
    /// hedging. Returns `None` when the retry budget is exhausted (every
    /// attempt was rejected or cancelled).
    pub fn call(&mut self, key: u64, input: &Tensor<f32>) -> Option<RequestResult> {
        let mut backoff = self.retry.backoff_base_ns.max(1);
        for attempt in 0..=self.retry.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(Duration::from_nanos(backoff));
                backoff = backoff.saturating_mul(2);
            }
            self.stats.attempts += 1;
            let handle = match self.client.submit(key, input.clone()) {
                Ok(handle) => handle,
                // QueueFull or Closed: back off and retry — a crashed
                // replica's close resolves to a survivor on the next pick.
                Err(_) => continue,
            };
            match self.wait_hedged(key, input, handle) {
                Ok(result) => {
                    self.stats.completed += 1;
                    return Some(result);
                }
                // Cancelled mid-flight (replica death shed the request):
                // retry the whole call.
                Err(Cancelled) => continue,
            }
        }
        self.stats.failed += 1;
        None
    }

    /// Waits for `primary`, hedging after the configured delay: the
    /// duplicate goes out under `key | 1 << 63` (a distinct routing key),
    /// the first response wins, and the losing handle is dropped —
    /// cancellation-safe by construction.
    fn wait_hedged(
        &mut self,
        key: u64,
        input: &Tensor<f32>,
        primary: crate::queue::ResponseHandle<RequestResult>,
    ) -> Result<RequestResult, Cancelled> {
        let Some(hedge) = self.hedge else {
            return primary.wait();
        };
        // Poll at ~1/20 of the hedge delay (bounded to 20µs..1ms): the poll
        // only has to resolve *whether to hedge*, and many clients spinning
        // on a fine interval contend with the replica workers for CPU —
        // slowing down the very responses being waited on.
        let poll = Duration::from_nanos((hedge.delay_ns / 20).clamp(20_000, 1_000_000));
        let deadline = Instant::now() + Duration::from_nanos(hedge.delay_ns);
        let mut primary = primary;
        while Instant::now() < deadline {
            match primary.try_wait() {
                TryWait::Ready(result) => return Ok(result),
                TryWait::Cancelled => return Err(Cancelled),
                TryWait::Pending(handle) => primary = handle,
            }
            std::thread::sleep(poll);
        }
        // Past the hedge delay: duplicate the request. A rejected hedge
        // submit degrades to plain waiting on the primary.
        let Ok(hedged) = self.client.submit(key | 1 << 63, input.clone()) else {
            return primary.wait();
        };
        self.stats.hedges += 1;
        let mut primary = Some(primary);
        let mut hedged = Some(hedged);
        loop {
            if let Some(handle) = primary.take() {
                match handle.try_wait() {
                    TryWait::Ready(result) => return Ok(result), // hedge dropped
                    TryWait::Cancelled => {}
                    TryWait::Pending(handle) => primary = Some(handle),
                }
            }
            if let Some(handle) = hedged.take() {
                match handle.try_wait() {
                    TryWait::Ready(result) => {
                        self.stats.hedge_wins += 1;
                        return Ok(result); // primary dropped
                    }
                    TryWait::Cancelled => {}
                    TryWait::Pending(handle) => hedged = Some(handle),
                }
            }
            if primary.is_none() && hedged.is_none() {
                return Err(Cancelled); // both legs died with the replica
            }
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(crash: u64, stall: u64, straggle: u64, close: u64) -> FaultConfig {
        FaultConfig {
            seed: 7,
            crash_per_mille: crash,
            stall_per_mille: stall,
            straggle_per_mille: straggle,
            close_per_mille: close,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_generates_the_identical_plan() {
        let config = rates(40, 80, 120, 20);
        let a = FaultPlan::generate(&config, 4).unwrap();
        let b = FaultPlan::generate(&config, 4).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "these rates over a 32-batch horizon fire");
        // A different seed changes the schedule.
        let other = FaultPlan::generate(&FaultConfig { seed: 8, ..config }, 4).unwrap();
        assert_ne!(a, other);
        // Zero rates generate nothing.
        let quiet = FaultPlan::generate(&rates(0, 0, 0, 0), 4).unwrap();
        assert!(quiet.is_empty());
    }

    #[test]
    fn generation_stops_at_a_crash_per_replica() {
        let config = FaultConfig {
            seed: 3,
            crash_per_mille: 1000, // every coordinate crashes
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, 3).unwrap();
        // Exactly one event per replica: the batch-1 crash ends its stream.
        assert_eq!(plan.events().len(), 3);
        for (replica, event) in plan.events().iter().enumerate() {
            assert_eq!(event.replica, replica);
            assert_eq!(event.at_batch, 1);
            assert_eq!(event.kind, FaultKind::Crash);
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        assert_eq!(FaultConfig::default().validate(), Ok(()));
        assert_eq!(
            rates(1001, 0, 0, 0).validate(),
            Err(ConfigError::FaultRateOutOfRange { rate: 1001 })
        );
        assert_eq!(
            FaultConfig {
                horizon_batches: 0,
                ..FaultConfig::default()
            }
            .validate(),
            Err(ConfigError::ZeroFaultHorizon)
        );
        assert_eq!(
            FaultConfig {
                stall_ns: 0,
                ..FaultConfig::default()
            }
            .validate(),
            Err(ConfigError::ZeroStallDuration)
        );
        assert_eq!(
            FaultConfig {
                straggle_window_batches: 0,
                ..FaultConfig::default()
            }
            .validate(),
            Err(ConfigError::ZeroStraggleWindow)
        );
        assert_eq!(
            FaultConfig {
                straggle_factor_x1024: 512,
                ..FaultConfig::default()
            }
            .validate(),
            Err(ConfigError::StraggleFactorBelowUnit { factor_x1024: 512 })
        );
        // generate() is an entry point too: it must refuse the same values.
        assert!(FaultPlan::generate(&rates(0, 2000, 0, 0), 2).is_err());
    }

    #[test]
    fn replica_cursor_answers_factor_windows_and_post_batch_effects() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                replica: 0,
                at_batch: 3,
                kind: FaultKind::Straggle {
                    factor_x1024: 2048,
                    window_batches: 2,
                },
            },
            FaultEvent {
                replica: 0,
                at_batch: 4,
                kind: FaultKind::Stall { duration_ns: 1_000 },
            },
            FaultEvent {
                replica: 0,
                at_batch: 5,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                replica: 1,
                at_batch: 1,
                kind: FaultKind::CloseQueue,
            },
        ]);
        let r0 = plan.for_replica(0);
        assert_eq!(r0.service_factor_x1024(2), 1024);
        assert_eq!(r0.service_factor_x1024(3), 2048);
        assert_eq!(r0.service_factor_x1024(4), 2048);
        assert_eq!(r0.service_factor_x1024(5), 1024, "window closed");
        assert!(r0.after_batch(3).is_noop(), "straggle has no post effect");
        assert_eq!(r0.after_batch(4).stall_ns, 1_000);
        assert!(r0.after_batch(5).crashed);
        let r1 = plan.for_replica(1);
        assert!(r1.after_batch(1).close_queue);
        assert!(plan.for_replica(2).is_empty());
    }

    #[test]
    fn pick_replica_matches_the_fault_free_router_arithmetic() {
        let all: Vec<(usize, usize)> = vec![(0, 5), (1, 2), (2, 2), (3, 9)];
        // Round-robin: tick % n over the full set.
        for tick in 0..8u64 {
            assert_eq!(
                pick_replica(RoutePolicy::RoundRobin, 0, tick, &all),
                Some((tick % 4) as usize)
            );
        }
        // Hashed: route_hash(key) % n.
        for key in 0..16u64 {
            assert_eq!(
                pick_replica(RoutePolicy::Hashed, key, 0, &all),
                Some((crate::config::route_hash(key) % 4) as usize)
            );
        }
        // Least outstanding: min by (len, index) — ties to the lower index.
        assert_eq!(
            pick_replica(RoutePolicy::LeastOutstanding, 0, 0, &all),
            Some(1)
        );
        // Power of two: the shallower of the two seeded probes, ties to the
        // lower slot.
        for key in 0..16u64 {
            let a = (crate::config::route_hash(key) % 4) as usize;
            let b = (crate::config::route_hash(key ^ crate::config::P2C_SALT) % 4) as usize;
            let want = if (all[b].1, b) < (all[a].1, a) { b } else { a };
            assert_eq!(
                pick_replica(RoutePolicy::PowerOfTwo, key, 0, &all),
                Some(want)
            );
        }
        // Restricting eligibility re-indexes the slot arithmetic.
        let survivors = vec![(1, 2), (3, 9)];
        assert_eq!(
            pick_replica(RoutePolicy::RoundRobin, 0, 3, &survivors),
            Some(3)
        );
        assert_eq!(pick_replica(RoutePolicy::RoundRobin, 0, 0, &[]), None);
    }

    #[test]
    fn handoff_rotates_skips_ineligible_and_sheds_when_full() {
        // 4 replicas; replica 1 crashed (from). Replica 2 dead, replica 3
        // full: only replica 0 can take work.
        let states = vec![(true, 0), (true, 0), (false, 0), (true, 4)];
        let mut cursor = 2; // (from + 1) % 4
        assert_eq!(pick_handoff_target(1, &mut cursor, &states, 4), Some(0));
        assert_eq!(cursor, 1, "cursor advances past the pick");
        // Nobody eligible: shed.
        let dead = vec![(false, 0), (true, 0), (false, 0), (false, 0)];
        let mut cursor = 2;
        assert_eq!(pick_handoff_target(1, &mut cursor, &dead, 4), None);
        // Rotation spreads consecutive orphans over survivors.
        let spread = vec![(true, 0), (true, 0), (true, 0), (true, 0)];
        let mut cursor = 2;
        assert_eq!(pick_handoff_target(1, &mut cursor, &spread, 4), Some(2));
        assert_eq!(pick_handoff_target(1, &mut cursor, &spread, 4), Some(3));
        assert_eq!(pick_handoff_target(1, &mut cursor, &spread, 4), Some(0));
        assert_eq!(pick_handoff_target(1, &mut cursor, &spread, 4), Some(2));
    }

    #[test]
    fn chaos_corpus_schedules_are_named_and_two_replica_scoped() {
        let corpus = chaos_corpus();
        assert_eq!(corpus.len(), 6);
        let mut names: Vec<&str> = corpus.iter().map(|(name, _)| *name).collect();
        names.dedup();
        assert_eq!(names.len(), 6, "schedule names must be unique");
        for (name, plan) in &corpus {
            assert!(!plan.is_empty(), "{name} must schedule something");
            for event in plan.events() {
                assert!(event.replica < 2, "{name} targets a 2-replica pool");
                assert!(event.at_batch >= 1, "{name}: batch indices are 1-based");
            }
        }
    }
}
