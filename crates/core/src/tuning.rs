//! Per-layer thread tuning: trading speedup for accuracy.
//!
//! Section V-B of the paper observes that some layers contribute much more
//! error than others when executed with NB-SMT. SySMT is tunable, so those
//! layers can be slowed down — a 4-threaded model may run its highest-MSE
//! layers with two threads (Table V), or a 2-threaded model may run them
//! with one thread (the GoogLeNet and MLPerf operating points). Layers are
//! ranked by recorded MSE; ties are broken towards the beginning of the
//! network, exactly as described in the paper.

use serde::{Deserialize, Serialize};

use crate::metrics::{model_speedup, LayerSchedule};
use crate::ThreadCount;

/// Per-layer profile used to drive tuning decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Position of the layer in the network (0 = first).
    pub index: usize,
    /// MAC operations of the layer for a single input.
    pub mac_ops: u64,
    /// Recorded MSE of the layer under the fast (many-thread) configuration.
    pub mse: f64,
}

/// A per-layer thread assignment for a whole model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadAssignment {
    threads: Vec<usize>,
}

impl ThreadAssignment {
    /// Creates a uniform assignment of `threads` to `layers` layers.
    pub fn uniform(layers: usize, threads: ThreadCount) -> Self {
        ThreadAssignment {
            threads: vec![threads.count(); layers],
        }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Returns `true` when no layers are covered.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Threads assigned to layer `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn threads_for(&self, i: usize) -> usize {
        self.threads[i]
    }

    /// Sets the thread count of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set(&mut self, i: usize, threads: usize) {
        self.threads[i] = threads;
    }

    /// Iterates over the per-layer thread counts.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.threads.iter().copied()
    }

    /// Number of layers running slower than `fast` threads.
    pub fn slowed_layers(&self, fast: usize) -> usize {
        self.threads.iter().filter(|&&t| t < fast).count()
    }
}

/// Ranks layers by recorded MSE, highest first; ties are broken towards the
/// start of the network (lower index first), per §V-B.
pub fn rank_layers_by_mse(profiles: &[LayerProfile]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    order.sort_by(|&a, &b| {
        profiles[b]
            .mse
            .partial_cmp(&profiles[a].mse)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(profiles[a].index.cmp(&profiles[b].index))
    });
    order
}

/// Builds the Table V style operating point: all layers run with
/// `fast` threads except the `slowdown_count` highest-MSE layers, which run
/// with `slow` threads.
pub fn slow_down_top_mse_layers(
    profiles: &[LayerProfile],
    fast: ThreadCount,
    slow: ThreadCount,
    slowdown_count: usize,
) -> ThreadAssignment {
    let mut assignment = ThreadAssignment::uniform(profiles.len(), fast);
    let ranked = rank_layers_by_mse(profiles);
    for &layer in ranked.iter().take(slowdown_count) {
        assignment.set(layer, slow.count());
    }
    assignment
}

/// Architectural speedup of an assignment over the single-threaded baseline.
///
/// # Panics
///
/// Panics when the assignment and profile lengths differ.
pub fn assignment_speedup(profiles: &[LayerProfile], assignment: &ThreadAssignment) -> f64 {
    assert_eq!(profiles.len(), assignment.len(), "length mismatch");
    let layers: Vec<LayerSchedule> = profiles
        .iter()
        .zip(assignment.iter())
        .map(|(p, threads)| LayerSchedule {
            mac_ops: p.mac_ops,
            threads,
        })
        .collect();
    model_speedup(&layers)
}

/// One point of the accuracy-versus-speedup trade-off sweep (Fig. 10 /
/// Table V): how many layers were slowed down, and the resulting speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningPoint {
    /// Number of layers forced to the slow thread count.
    pub slowed_layers: usize,
    /// Architectural speedup over the 1-threaded baseline.
    pub speedup: f64,
    /// The per-layer assignment.
    pub assignment: ThreadAssignment,
}

/// Sweeps the number of slowed-down layers from 0 to `max_slowdowns`,
/// producing one [`TuningPoint`] per step (the x-axis of Fig. 10).
pub fn tuning_sweep(
    profiles: &[LayerProfile],
    fast: ThreadCount,
    slow: ThreadCount,
    max_slowdowns: usize,
) -> Vec<TuningPoint> {
    let max_slowdowns = max_slowdowns.min(profiles.len());
    (0..=max_slowdowns)
        .map(|count| {
            let assignment = slow_down_top_mse_layers(profiles, fast, slow, count);
            TuningPoint {
                slowed_layers: count,
                speedup: assignment_speedup(profiles, &assignment),
                assignment,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<LayerProfile> {
        vec![
            LayerProfile {
                index: 0,
                mac_ops: 100,
                mse: 0.5,
            },
            LayerProfile {
                index: 1,
                mac_ops: 400,
                mse: 2.0,
            },
            LayerProfile {
                index: 2,
                mac_ops: 300,
                mse: 2.0,
            },
            LayerProfile {
                index: 3,
                mac_ops: 200,
                mse: 0.1,
            },
        ]
    }

    #[test]
    fn ranking_is_by_mse_then_index() {
        let order = rank_layers_by_mse(&profiles());
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn uniform_assignment() {
        let a = ThreadAssignment::uniform(3, ThreadCount::Four);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|t| t == 4));
        assert_eq!(a.slowed_layers(4), 0);
    }

    #[test]
    fn slow_down_top_mse_layers_picks_highest() {
        let a = slow_down_top_mse_layers(&profiles(), ThreadCount::Four, ThreadCount::Two, 2);
        assert_eq!(a.threads_for(1), 2);
        assert_eq!(a.threads_for(2), 2);
        assert_eq!(a.threads_for(0), 4);
        assert_eq!(a.threads_for(3), 4);
        assert_eq!(a.slowed_layers(4), 2);
    }

    #[test]
    fn assignment_speedup_matches_manual_computation() {
        let p = profiles();
        let a = slow_down_top_mse_layers(&p, ThreadCount::Four, ThreadCount::Two, 1);
        // Layer 1 (400 macs) at 2T, the rest at 4T:
        // total = 1000, scaled = 100/4 + 400/2 + 300/4 + 200/4 = 25+200+75+50 = 350
        let s = assignment_speedup(&p, &a);
        assert!((s - 1000.0 / 350.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_speedup_is_monotonically_decreasing() {
        let p = profiles();
        let sweep = tuning_sweep(&p, ThreadCount::Four, ThreadCount::Two, 4);
        assert_eq!(sweep.len(), 5);
        assert!((sweep[0].speedup - 4.0).abs() < 1e-9);
        for w in sweep.windows(2) {
            assert!(w[1].speedup <= w[0].speedup + 1e-12);
        }
        // Slowing every layer down to 2T gives exactly 2x.
        assert!((sweep[4].speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_clamped_to_layer_count() {
        let p = profiles();
        let sweep = tuning_sweep(&p, ThreadCount::Four, ThreadCount::Two, 100);
        assert_eq!(sweep.len(), p.len() + 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assignment_speedup_rejects_mismatch() {
        let a = ThreadAssignment::uniform(2, ThreadCount::Two);
        assignment_speedup(&profiles(), &a);
    }
}
