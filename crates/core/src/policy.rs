//! Resource-sharing policies: which forms of sparsity and data-width
//! variability the SySMT PE exploits before falling back to lossy precision
//! reduction.
//!
//! Table III of the paper evaluates the following options for the 2-threaded
//! SySMT (the same knobs apply to 4 threads):
//!
//! * **S** — exploit 8-bit sparsity: a thread with a zero operand releases
//!   the MAC unit to the other thread (Fig. 2b),
//! * **A** (**W**) — exploit activation (weight) data-width: a thread whose
//!   activation (weight) already fits in 4 bits takes the error-free LSB
//!   path; otherwise its activation (weight) is reduced on demand (Fig. 2c),
//! * **Aw** (**aW**) — additionally consider the *other* operand's width and
//!   swap which operand enters the 4-bit multiplier port when that avoids a
//!   reduction (Fig. 2d),
//! * combinations such as **S+A** (used for most models) and **S+W** (used
//!   for ResNet-50, which is more robust to weight reduction).

use serde::{Deserialize, Serialize};

/// Which operand a policy reduces when a thread collision forces a precision
/// reduction, and whether the other operand's width is considered first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidthMode {
    /// Never check data width: on a collision the primary operand is always
    /// rounded to its 4-bit MSBs (the "S"-only behaviour).
    None,
    /// Check the activation width; reduce the activation when it does not
    /// fit (option **A**).
    Activation,
    /// Check the weight width; reduce the weight when it does not fit
    /// (option **W**).
    Weight,
    /// Check the activation width first, then try swapping the weight into
    /// the 4-bit port before reducing the activation (option **Aw**).
    ActivationThenSwap,
    /// Check the weight width first, then try swapping the activation into
    /// the 4-bit port before reducing the weight (option **aW**).
    WeightThenSwap,
}

impl WidthMode {
    /// Returns `true` when the mode reduces activations on a miss.
    pub fn reduces_activation(self) -> bool {
        matches!(
            self,
            WidthMode::None | WidthMode::Activation | WidthMode::ActivationThenSwap
        )
    }

    /// Returns `true` when the mode considers the secondary operand before
    /// reducing (the swap variants of Fig. 2d).
    pub fn allows_swap(self) -> bool {
        matches!(
            self,
            WidthMode::ActivationThenSwap | WidthMode::WeightThenSwap
        )
    }
}

/// A complete sharing policy: the sparsity flag plus the width mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharingPolicy {
    /// Exploit 8-bit sparsity (zero operands release the MAC).
    pub exploit_sparsity: bool,
    /// Data-width handling on thread collisions.
    pub width: WidthMode,
}

impl SharingPolicy {
    /// **S**: sparsity only.
    pub const S: SharingPolicy = SharingPolicy {
        exploit_sparsity: true,
        width: WidthMode::None,
    };
    /// **A**: activation data-width only.
    pub const A: SharingPolicy = SharingPolicy {
        exploit_sparsity: false,
        width: WidthMode::Activation,
    };
    /// **W**: weight data-width only.
    pub const W: SharingPolicy = SharingPolicy {
        exploit_sparsity: false,
        width: WidthMode::Weight,
    };
    /// **Aw**: activation and weight data-width, reducing activations.
    pub const AW: SharingPolicy = SharingPolicy {
        exploit_sparsity: false,
        width: WidthMode::ActivationThenSwap,
    };
    /// **aW**: activation and weight data-width, reducing weights.
    pub const A_W: SharingPolicy = SharingPolicy {
        exploit_sparsity: false,
        width: WidthMode::WeightThenSwap,
    };
    /// **S+A**: the default policy used for most models in the paper.
    pub const S_A: SharingPolicy = SharingPolicy {
        exploit_sparsity: true,
        width: WidthMode::Activation,
    };
    /// **S+W**: the policy used for ResNet-50.
    pub const S_W: SharingPolicy = SharingPolicy {
        exploit_sparsity: true,
        width: WidthMode::Weight,
    };
    /// **S+Aw**.
    pub const S_AW: SharingPolicy = SharingPolicy {
        exploit_sparsity: true,
        width: WidthMode::ActivationThenSwap,
    };
    /// **S+aW**.
    pub const S_A_W: SharingPolicy = SharingPolicy {
        exploit_sparsity: true,
        width: WidthMode::WeightThenSwap,
    };
    /// The pure precision-reduction baseline (no sparsity, no width checks):
    /// every collision rounds the activations. Equivalent to the worst-case
    /// whole-model A4W8 quantization of Fig. 7.
    pub const NAIVE: SharingPolicy = SharingPolicy {
        exploit_sparsity: false,
        width: WidthMode::None,
    };

    /// All the named policies from Table III (activation family).
    pub fn table3_activation_family() -> Vec<(&'static str, SharingPolicy)> {
        vec![
            ("S", Self::S),
            ("A", Self::A),
            ("Aw", Self::AW),
            ("S+A", Self::S_A),
            ("S+Aw", Self::S_AW),
        ]
    }

    /// All the named policies from Table III (weight family, used for
    /// ResNet-50).
    pub fn table3_weight_family() -> Vec<(&'static str, SharingPolicy)> {
        vec![
            ("S", Self::S),
            ("W", Self::W),
            ("aW", Self::A_W),
            ("S+W", Self::S_W),
            ("S+aW", Self::S_A_W),
        ]
    }

    /// Short label for the policy ("S+A", …).
    pub fn label(&self) -> &'static str {
        match (self.exploit_sparsity, self.width) {
            (true, WidthMode::None) => "S",
            (false, WidthMode::Activation) => "A",
            (false, WidthMode::Weight) => "W",
            (false, WidthMode::ActivationThenSwap) => "Aw",
            (false, WidthMode::WeightThenSwap) => "aW",
            (true, WidthMode::Activation) => "S+A",
            (true, WidthMode::Weight) => "S+W",
            (true, WidthMode::ActivationThenSwap) => "S+Aw",
            (true, WidthMode::WeightThenSwap) => "S+aW",
            (false, WidthMode::None) => "naive",
        }
    }
}

impl Default for SharingPolicy {
    /// The paper's default operating policy, S+A.
    fn default() -> Self {
        Self::S_A
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for (name, p) in SharingPolicy::table3_activation_family() {
            assert_eq!(p.label(), name);
        }
        for (name, p) in SharingPolicy::table3_weight_family() {
            assert_eq!(p.label(), name);
        }
        assert_eq!(SharingPolicy::NAIVE.label(), "naive");
        assert_eq!(SharingPolicy::default().label(), "S+A");
    }

    #[test]
    fn width_mode_predicates() {
        assert!(WidthMode::None.reduces_activation());
        assert!(WidthMode::Activation.reduces_activation());
        assert!(!WidthMode::Weight.reduces_activation());
        assert!(WidthMode::ActivationThenSwap.allows_swap());
        assert!(WidthMode::WeightThenSwap.allows_swap());
        assert!(!WidthMode::Activation.allows_swap());
    }

    #[test]
    fn families_have_five_members() {
        assert_eq!(SharingPolicy::table3_activation_family().len(), 5);
        assert_eq!(SharingPolicy::table3_weight_family().len(), 5);
    }
}
