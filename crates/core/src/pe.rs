//! The NB-SMT processing element logic (Algorithm 1 of the paper and its
//! 4-threaded extension).
//!
//! Each cycle the PE receives one activation/weight pair per thread, checks
//! the computation demand against the flexible multiplier's capability, and
//! decides per thread whether it runs at full precision, takes an error-free
//! 4-bit LSB slot, has an operand swapped into the 4-bit port, or is lossily
//! reduced to its rounded 4-bit MSBs. The shared partial-sum register
//! accumulates all contributions (output sharing, Fig. 3c).

use serde::{Deserialize, Serialize};

use nbsmt_quant::reduce::{
    fits_nibble_signed, fits_nibble_unsigned, round_to_nibble_signed, round_to_nibble_unsigned,
};

use crate::fmul::{DualLane, FlexMultiplier, FlexMultiplier4, QuadLane};
use crate::policy::{SharingPolicy, WidthMode};

/// One thread's operand pair for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadInput {
    /// Unsigned 8-bit activation.
    pub x: u8,
    /// Signed 8-bit weight.
    pub w: i8,
}

impl ThreadInput {
    /// Creates a thread input.
    pub fn new(x: u8, w: i8) -> Self {
        ThreadInput { x, w }
    }

    /// A thread whose product is zero does not need the MAC unit.
    pub fn needs_mac(&self) -> bool {
        self.x != 0 && self.w != 0
    }

    /// Exact product of the pair.
    pub fn exact_product(&self) -> i64 {
        self.x as i64 * self.w as i64
    }
}

/// How a thread's operands were handled in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadOutcome {
    /// The thread had a zero operand and was skipped (no MAC needed).
    Idle,
    /// The thread used the full 8b-8b multiplier — exact result.
    FullPrecision,
    /// The thread used a 4-bit slot but its operands already fit — exact
    /// result via the LSB path or an operand swap.
    NarrowExact,
    /// The thread's operand(s) were rounded to their 4-bit MSBs — its
    /// contribution is approximate.
    Reduced,
}

/// Per-cycle statistics emitted by the PE logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Number of threads that needed the MAC this cycle.
    pub active_threads: u32,
    /// Number of threads whose operands were lossily reduced.
    pub reduced_threads: u32,
    /// Whether the PE performed any multiplication this cycle.
    pub busy: bool,
}

/// Accumulated statistics over a sequence of cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles in which at least one thread needed the MAC.
    pub busy_cycles: u64,
    /// Cycles in which more threads needed the MAC than it could serve at
    /// full precision (thread collisions).
    pub collision_cycles: u64,
    /// Individual thread-slots that were lossily reduced.
    pub reduced_thread_slots: u64,
    /// Individual thread-slots that needed the MAC.
    pub active_thread_slots: u64,
}

impl PeStats {
    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PeStats) {
        self.cycles += other.cycles;
        self.busy_cycles += other.busy_cycles;
        self.collision_cycles += other.collision_cycles;
        self.reduced_thread_slots += other.reduced_thread_slots;
        self.active_thread_slots += other.active_thread_slots;
    }

    /// Fraction of cycles with at least one active thread.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of active thread slots that had to be reduced.
    pub fn reduction_rate(&self) -> f64 {
        if self.active_thread_slots == 0 {
            0.0
        } else {
            self.reduced_thread_slots as f64 / self.active_thread_slots as f64
        }
    }

    /// Fraction of busy cycles in which more threads demanded the MAC than
    /// it serves at full precision — the squeeze pressure a serving trace
    /// attaches to each kernel span.
    pub fn collision_rate(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.collision_cycles as f64 / self.busy_cycles as f64
        }
    }
}

/// Result of one PE cycle: the per-thread integer contributions (already
/// shifted onto the 8-bit grid) and what happened to each thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleResult<const T: usize> {
    /// Contribution of each thread to the shared partial sum.
    pub products: [i64; T],
    /// Outcome classification per thread.
    pub outcomes: [ThreadOutcome; T],
    /// Cycle statistics.
    pub stats: CycleStats,
}

impl<const T: usize> CycleResult<T> {
    /// Sum of all thread contributions (what enters the shared psum).
    pub fn total(&self) -> i64 {
        self.products.iter().sum()
    }
}

/// How one thread occupies a 4b-8b lane of the flexible multiplier during a
/// two-way collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LanePlan {
    /// The activation nibble enters the narrow port; the weight keeps its
    /// full 8 bits. This is the native Eq. 4 lane.
    ActivationNarrow(DualLane),
    /// The weight (a signed nibble) enters the narrow port and the unsigned
    /// activation keeps its full 8 bits — the swapped wiring of Fig. 2d and
    /// the W-family policies. `shift` is set when the nibble carries the
    /// weight's rounded MSBs.
    WeightNarrow { x: u8, w_nibble: i8, shift: bool },
}

impl LanePlan {
    /// The integer product this lane produces.
    fn product(&self, fmul: &FlexMultiplier) -> i64 {
        match *self {
            LanePlan::ActivationNarrow(lane) => fmul.mul_dual([
                lane,
                DualLane {
                    x_nibble: 0,
                    w: 0,
                    shift: false,
                },
            ])[0] as i64,
            LanePlan::WeightNarrow { x, w_nibble, shift } => {
                // A 4b(signed) × 8b(unsigned) multiplier with the roles of the
                // ports swapped.
                let p = x as i64 * w_nibble as i64;
                if shift {
                    p << 4
                } else {
                    p
                }
            }
        }
    }
}

/// The 2-threaded SySMT PE logic (Algorithm 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtPe2 {
    policy: SharingPolicy,
    fmul: FlexMultiplier,
}

impl SmtPe2 {
    /// Creates a 2-threaded PE with the given sharing policy.
    pub fn new(policy: SharingPolicy) -> Self {
        SmtPe2 {
            policy,
            fmul: FlexMultiplier::new(),
        }
    }

    /// The PE's sharing policy.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// Executes one cycle with two thread inputs.
    pub fn cycle(&self, threads: [ThreadInput; 2]) -> CycleResult<2> {
        let needs: [bool; 2] = [threads[0].needs_mac(), threads[1].needs_mac()];
        let active = needs.iter().filter(|&&b| b).count() as u32;

        // Sparsity exploitation: with S enabled, threads that do not need the
        // MAC free it; with S disabled every thread is treated as demanding.
        let effective_active = if self.policy.exploit_sparsity {
            active
        } else {
            2
        };

        let mut products = [0i64; 2];
        let mut outcomes = [ThreadOutcome::Idle; 2];
        let mut reduced = 0u32;

        if effective_active <= 1 {
            // No structural hazard: the single active thread (if any) uses the
            // whole 8b-8b multiplier.
            for t in 0..2 {
                if needs[t] {
                    products[t] = self.fmul.mul_single(threads[t].x, threads[t].w) as i64;
                    outcomes[t] = ThreadOutcome::FullPrecision;
                }
            }
        } else {
            // Thread collision (or S disabled): both threads squeeze into the
            // two 4b-8b lanes.
            for t in 0..2 {
                let (plan, outcome) = plan_dual_lane(&threads[t], self.policy.width);
                products[t] = plan.product(&self.fmul);
                outcomes[t] = if !threads[t].needs_mac() {
                    // With S disabled a zero-product thread still occupies a
                    // lane, but its contribution is exactly zero.
                    ThreadOutcome::NarrowExact
                } else {
                    outcome
                };
                if outcomes[t] == ThreadOutcome::Reduced {
                    reduced += 1;
                }
            }
        }

        CycleResult {
            products,
            outcomes,
            stats: CycleStats {
                active_threads: active,
                reduced_threads: reduced,
                busy: active > 0,
            },
        }
    }
}

/// The 4-threaded SySMT PE logic (§IV-C2, 4T extension).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtPe4 {
    policy: SharingPolicy,
    fmul2: FlexMultiplier,
    fmul4: FlexMultiplier4,
}

impl SmtPe4 {
    /// Creates a 4-threaded PE with the given sharing policy.
    pub fn new(policy: SharingPolicy) -> Self {
        SmtPe4 {
            policy,
            fmul2: FlexMultiplier::new(),
            fmul4: FlexMultiplier4::new(),
        }
    }

    /// The PE's sharing policy.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// Executes one cycle with four thread inputs.
    pub fn cycle(&self, threads: [ThreadInput; 4]) -> CycleResult<4> {
        let needs: [bool; 4] = [
            threads[0].needs_mac(),
            threads[1].needs_mac(),
            threads[2].needs_mac(),
            threads[3].needs_mac(),
        ];
        let active = needs.iter().filter(|&&b| b).count() as u32;
        let effective_active = if self.policy.exploit_sparsity {
            active
        } else {
            4
        };

        let mut products = [0i64; 4];
        let mut outcomes = [ThreadOutcome::Idle; 4];
        let mut reduced = 0u32;

        match effective_active {
            0 | 1 => {
                for t in 0..4 {
                    if needs[t] {
                        products[t] = self.fmul2.mul_single(threads[t].x, threads[t].w) as i64;
                        outcomes[t] = ThreadOutcome::FullPrecision;
                    }
                }
            }
            2 => {
                // Exactly two demanding threads: handled like the 2-threaded
                // collision, each taking one 4b-8b lane.
                for t in 0..4 {
                    if !needs[t] {
                        continue;
                    }
                    let (plan, outcome) = plan_dual_lane(&threads[t], self.policy.width);
                    products[t] = plan.product(&self.fmul2);
                    outcomes[t] = outcome;
                    if outcome == ThreadOutcome::Reduced {
                        reduced += 1;
                    }
                }
            }
            _ => {
                // Three or four demanding threads (or S disabled): every
                // thread's activation *and* weight are reduced to 4 bits
                // according to their effective data width.
                let mut lanes = [QuadLane {
                    x_nibble: 0,
                    w_nibble: 0,
                    x_shift: false,
                    w_shift: false,
                }; 4];
                let mut lossy_flags = [false; 4];
                for t in 0..4 {
                    if self.policy.exploit_sparsity && !needs[t] {
                        continue;
                    }
                    let (lane, lossy) = plan_quad_lane(&threads[t], self.policy.width);
                    lanes[t] = lane;
                    lossy_flags[t] = lossy;
                }
                let outs = self.fmul4.mul_quad(lanes);
                for t in 0..4 {
                    if self.policy.exploit_sparsity && !needs[t] {
                        continue;
                    }
                    products[t] = outs[t] as i64;
                    outcomes[t] = if !threads[t].needs_mac() {
                        ThreadOutcome::NarrowExact
                    } else if lossy_flags[t] {
                        ThreadOutcome::Reduced
                    } else {
                        ThreadOutcome::NarrowExact
                    };
                    if outcomes[t] == ThreadOutcome::Reduced {
                        reduced += 1;
                    }
                }
            }
        }

        CycleResult {
            products,
            outcomes,
            stats: CycleStats {
                active_threads: active,
                reduced_threads: reduced,
                busy: active > 0,
            },
        }
    }
}

/// Plans how one thread occupies a 4b-8b lane according to the width mode,
/// returning the lane plan and the thread outcome.
fn plan_dual_lane(input: &ThreadInput, mode: WidthMode) -> (LanePlan, ThreadOutcome) {
    let activation_narrow_exact = || {
        (
            LanePlan::ActivationNarrow(DualLane {
                x_nibble: input.x & 0x0F,
                w: input.w,
                shift: false,
            }),
            ThreadOutcome::NarrowExact,
        )
    };
    let activation_reduced = || {
        let nibble = round_to_nibble_unsigned(input.x);
        let outcome = if nibble as u32 * 16 == input.x as u32 {
            ThreadOutcome::NarrowExact
        } else {
            ThreadOutcome::Reduced
        };
        (
            LanePlan::ActivationNarrow(DualLane {
                x_nibble: nibble,
                w: input.w,
                shift: true,
            }),
            outcome,
        )
    };
    let weight_narrow_exact = || {
        (
            LanePlan::WeightNarrow {
                x: input.x,
                w_nibble: input.w,
                shift: false,
            },
            ThreadOutcome::NarrowExact,
        )
    };
    let weight_reduced = || {
        let nibble = round_to_nibble_signed(input.w);
        let outcome = if nibble as i32 * 16 == input.w as i32 {
            ThreadOutcome::NarrowExact
        } else {
            ThreadOutcome::Reduced
        };
        (
            LanePlan::WeightNarrow {
                x: input.x,
                w_nibble: nibble,
                shift: true,
            },
            outcome,
        )
    };

    match mode {
        WidthMode::None => activation_reduced(),
        WidthMode::Activation => {
            if fits_nibble_unsigned(input.x) {
                activation_narrow_exact()
            } else {
                activation_reduced()
            }
        }
        WidthMode::Weight => {
            if fits_nibble_signed(input.w) {
                weight_narrow_exact()
            } else {
                weight_reduced()
            }
        }
        WidthMode::ActivationThenSwap => {
            if fits_nibble_unsigned(input.x) {
                activation_narrow_exact()
            } else if fits_nibble_signed(input.w) {
                weight_narrow_exact()
            } else {
                activation_reduced()
            }
        }
        WidthMode::WeightThenSwap => {
            if fits_nibble_signed(input.w) {
                weight_narrow_exact()
            } else if fits_nibble_unsigned(input.x) {
                activation_narrow_exact()
            } else {
                weight_reduced()
            }
        }
    }
}

/// Plans one thread's 4b-4b lane for a three- or four-way collision,
/// returning the lane and whether it is lossy.
fn plan_quad_lane(input: &ThreadInput, mode: WidthMode) -> (QuadLane, bool) {
    let check_width = !matches!(mode, WidthMode::None);
    // Activation side.
    let (x_nibble, x_shift, x_lossy) = if check_width && fits_nibble_unsigned(input.x) {
        (input.x & 0x0F, false, false)
    } else {
        let nib = round_to_nibble_unsigned(input.x);
        (nib, true, nib as u32 * 16 != input.x as u32)
    };
    // Weight side.
    let (w_nibble, w_shift, w_lossy) = if check_width && fits_nibble_signed(input.w) {
        (input.w, false, false)
    } else {
        let nib = round_to_nibble_signed(input.w);
        (nib, true, nib as i32 * 16 != input.w as i32)
    };
    (
        QuadLane {
            x_nibble,
            w_nibble,
            x_shift,
            w_shift,
        },
        x_lossy || w_lossy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(threads: &[ThreadInput]) -> i64 {
        threads.iter().map(|t| t.exact_product()).sum()
    }

    #[test]
    fn thread_input_helpers() {
        assert!(!ThreadInput::new(0, 5).needs_mac());
        assert!(!ThreadInput::new(5, 0).needs_mac());
        assert!(ThreadInput::new(5, 5).needs_mac());
        assert_eq!(ThreadInput::new(10, -3).exact_product(), -30);
    }

    #[test]
    fn pe2_idle_when_both_threads_idle() {
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let r = pe.cycle([ThreadInput::new(0, 5), ThreadInput::new(7, 0)]);
        assert_eq!(r.total(), 0);
        assert!(!r.stats.busy);
        assert_eq!(r.outcomes, [ThreadOutcome::Idle, ThreadOutcome::Idle]);
    }

    #[test]
    fn pe2_single_active_thread_is_exact() {
        // Fig. 2b: one thread has a zero operand, the other uses the full
        // 8b-8b multiplier with no error.
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let threads = [ThreadInput::new(0, 23), ThreadInput::new(178, -14)];
        let r = pe.cycle(threads);
        assert_eq!(r.total(), 178 * -14);
        assert_eq!(r.outcomes[0], ThreadOutcome::Idle);
        assert_eq!(r.outcomes[1], ThreadOutcome::FullPrecision);
        assert_eq!(r.stats.active_threads, 1);
        assert_eq!(r.stats.reduced_threads, 0);
    }

    #[test]
    fn pe2_narrow_threads_collide_without_error() {
        // Fig. 2c: both activations fit in 4 bits, so the collision is
        // error-free via the LSB path.
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let threads = [ThreadInput::new(14, 23), ThreadInput::new(2, -14)];
        let r = pe.cycle(threads);
        assert_eq!(r.total(), exact(&threads));
        assert_eq!(r.outcomes[0], ThreadOutcome::NarrowExact);
        assert_eq!(r.outcomes[1], ThreadOutcome::NarrowExact);
        assert_eq!(r.stats.reduced_threads, 0);
    }

    #[test]
    fn pe2_collision_reduces_wide_activations() {
        // Fig. 2a: both activations are wide, so both are rounded to their
        // 4-bit MSBs and the result is approximate.
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let threads = [ThreadInput::new(46, 23), ThreadInput::new(178, 121)];
        let r = pe.cycle(threads);
        // thread 0: round(46/16)=3 -> 3*23 << 4 = 1104 (exact 1058)
        // thread 1: round(178/16)=11 -> 11*121 << 4 = 21296 (exact 21538)
        assert_eq!(r.products[0], 1104);
        assert_eq!(r.products[1], (11 * 121) << 4);
        assert_eq!(r.stats.reduced_threads, 2);
        assert_eq!(r.outcomes[0], ThreadOutcome::Reduced);
        // The approximation error is bounded by 8 * |w| per thread.
        assert!((r.total() - exact(&threads)).abs() <= 8 * (23 + 121));
    }

    #[test]
    fn pe2_collision_with_multiple_of_16_is_exact() {
        // An activation that is an exact multiple of 16 loses nothing when
        // its MSBs are used.
        let pe = SmtPe2::new(SharingPolicy::S_A);
        let threads = [ThreadInput::new(48, 23), ThreadInput::new(178, 5)];
        let r = pe.cycle(threads);
        assert_eq!(r.products[0], 48 * 23);
        assert_eq!(r.outcomes[0], ThreadOutcome::NarrowExact);
    }

    #[test]
    fn pe2_swap_policy_avoids_reduction_when_weight_is_narrow() {
        // Fig. 2d: the first thread's activation is wide but its weight fits
        // in 4 bits, so Aw swaps the weight into the narrow port.
        let pe = SmtPe2::new(SharingPolicy::S_AW);
        let threads = [ThreadInput::new(178, 7), ThreadInput::new(200, 100)];
        let r = pe.cycle(threads);
        assert_eq!(r.products[0], 178 * 7, "swapped thread must be exact");
        assert_eq!(r.outcomes[0], ThreadOutcome::NarrowExact);
        assert_eq!(r.outcomes[1], ThreadOutcome::Reduced);

        // Under plain S+A the same inputs would have reduced thread 0 too.
        let plain = SmtPe2::new(SharingPolicy::S_A);
        let rp = plain.cycle(threads);
        assert_eq!(rp.stats.reduced_threads, 2);
    }

    #[test]
    fn pe2_weight_policy_reduces_weights() {
        let pe = SmtPe2::new(SharingPolicy::S_W);
        let threads = [ThreadInput::new(178, 100), ThreadInput::new(200, 3)];
        let r = pe.cycle(threads);
        // Thread 1 weight fits -> exact; thread 0 weight reduced to round(100/16)=6*16=96.
        assert_eq!(r.products[1], 200 * 3);
        assert_eq!(r.products[0], 178 * 6 * 16);
        assert_eq!(r.stats.reduced_threads, 1);
    }

    #[test]
    fn pe2_weight_swap_is_exact_for_large_activations() {
        // The swapped port carries the full unsigned activation, including
        // values above 127.
        let pe = SmtPe2::new(SharingPolicy::S_W);
        let threads = [ThreadInput::new(255, -8), ThreadInput::new(254, 7)];
        let r = pe.cycle(threads);
        assert_eq!(r.products[0], 255 * -8);
        assert_eq!(r.products[1], 254 * 7);
        assert_eq!(r.stats.reduced_threads, 0);
    }

    #[test]
    fn pe2_sparsity_disabled_treats_every_cycle_as_collision() {
        let pe = SmtPe2::new(SharingPolicy::A);
        // One thread is idle, but without S the other is still squeezed.
        let threads = [ThreadInput::new(0, 23), ThreadInput::new(178, 5)];
        let r = pe.cycle(threads);
        // Thread 1 is wide, so it gets reduced even though the MAC was free.
        assert_eq!(r.outcomes[1], ThreadOutcome::Reduced);
        assert_eq!(r.products[1], (11 * 5) << 4);
        // Thread 0 contributes exactly zero either way.
        assert_eq!(r.products[0], 0);
    }

    #[test]
    fn pe2_naive_policy_always_reduces() {
        let pe = SmtPe2::new(SharingPolicy::NAIVE);
        let threads = [ThreadInput::new(9, 23), ThreadInput::new(5, 5)];
        let r = pe.cycle(threads);
        // Even narrow activations are rounded: 9 -> round(9/16)=1 -> 1*23<<4.
        assert_eq!(r.products[0], 23 << 4);
        assert_eq!(r.stats.reduced_threads, 2);
    }

    #[test]
    fn pe4_single_and_dual_active_threads_match_pe2_behaviour() {
        let pe = SmtPe4::new(SharingPolicy::S_A);
        // One active thread.
        let r = pe.cycle([
            ThreadInput::new(0, 1),
            ThreadInput::new(200, -100),
            ThreadInput::new(3, 0),
            ThreadInput::new(0, 0),
        ]);
        assert_eq!(r.total(), 200 * -100);
        assert_eq!(r.outcomes[1], ThreadOutcome::FullPrecision);

        // Two active threads, both narrow: exact.
        let threads = [
            ThreadInput::new(14, 23),
            ThreadInput::new(0, 55),
            ThreadInput::new(2, -14),
            ThreadInput::new(99, 0),
        ];
        let r = pe.cycle(threads);
        assert_eq!(r.total(), 14 * 23 + 2 * -14);
        assert_eq!(r.stats.active_threads, 2);
        assert_eq!(r.stats.reduced_threads, 0);
    }

    #[test]
    fn pe4_quad_collision_reduces_both_operand_sides() {
        let pe = SmtPe4::new(SharingPolicy::S_A);
        let threads = [
            ThreadInput::new(46, 100),
            ThreadInput::new(178, -100),
            ThreadInput::new(15, 7),
            ThreadInput::new(200, 3),
        ];
        let r = pe.cycle(threads);
        assert_eq!(r.stats.active_threads, 4);
        // Thread 2 is narrow on both sides: exact.
        assert_eq!(r.products[2], 15 * 7);
        assert_eq!(r.outcomes[2], ThreadOutcome::NarrowExact);
        // Thread 0: x 46 -> 3 (MSB), w 100 -> 6 (MSB) => 3*6*256 = 4608 vs exact 4600.
        assert_eq!(r.products[0], 3 * 6 * 256);
        assert_eq!(r.outcomes[0], ThreadOutcome::Reduced);
        // Thread 3: x 200 -> 13 (MSB), w 3 narrow => 13*3*16 = 624 vs 600.
        assert_eq!(r.products[3], 13 * 3 * 16);
        // Total error stays bounded.
        assert!((r.total() - exact(&threads)).abs() < 8 * 400);
    }

    #[test]
    fn pe4_three_way_collision_uses_quad_path() {
        let pe = SmtPe4::new(SharingPolicy::S_A);
        let threads = [
            ThreadInput::new(46, 100),
            ThreadInput::new(178, -100),
            ThreadInput::new(15, 7),
            ThreadInput::new(0, 3),
        ];
        let r = pe.cycle(threads);
        assert_eq!(r.stats.active_threads, 3);
        // The idle thread contributes nothing.
        assert_eq!(r.products[3], 0);
        assert_eq!(r.outcomes[3], ThreadOutcome::Idle);
        // Even the thread whose activation is wide but weight narrow gets the
        // quad treatment (paper: "a collision of three threads is treated
        // similarly").
        assert_eq!(r.products[0], 3 * 6 * 256);
    }

    #[test]
    fn pe4_error_is_never_worse_than_whole_model_a4w4() {
        // For any operand pair, the 4T reduction error is at most the error
        // of statically reducing both operands to rounded nibbles.
        let pe = SmtPe4::new(SharingPolicy::S_A);
        let samples: [(u8, i8); 6] = [
            (46, 100),
            (178, -100),
            (15, 7),
            (200, 3),
            (255, -128),
            (17, 17),
        ];
        for &(x, w) in &samples {
            let threads = [ThreadInput::new(x, w); 4];
            let r = pe.cycle(threads);
            let static_nib =
                round_to_nibble_unsigned(x) as i64 * 16 * round_to_nibble_signed(w) as i64 * 16;
            let exact = x as i64 * w as i64;
            assert!(
                (r.products[0] - exact).abs() <= (static_nib - exact).abs() + 1,
                "x={x} w={w}"
            );
        }
    }

    #[test]
    fn cycle_result_total_sums_products() {
        let r: CycleResult<2> = CycleResult {
            products: [5, -3],
            outcomes: [ThreadOutcome::FullPrecision, ThreadOutcome::FullPrecision],
            stats: CycleStats::default(),
        };
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn pe_stats_accumulate_and_derive_rates() {
        let mut a = PeStats {
            cycles: 10,
            busy_cycles: 5,
            collision_cycles: 2,
            reduced_thread_slots: 3,
            active_thread_slots: 12,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert!((a.utilization() - 0.5).abs() < 1e-12);
        assert!((a.reduction_rate() - 0.25).abs() < 1e-12);
        assert_eq!(PeStats::default().utilization(), 0.0);
        assert_eq!(PeStats::default().reduction_rate(), 0.0);
    }

    /// The swapped (weight-in-narrow-port) lane must be exact for every
    /// activation value and every narrow weight.
    #[test]
    fn weight_narrow_lane_is_exact_for_all_activations() {
        for x in 0..=255u8 {
            for w in -8i8..=7 {
                if w == 0 {
                    continue;
                }
                let (plan, outcome) = plan_dual_lane(&ThreadInput::new(x, w), WidthMode::Weight);
                assert_eq!(outcome, ThreadOutcome::NarrowExact);
                assert_eq!(
                    plan.product(&FlexMultiplier::new()),
                    x as i64 * w as i64,
                    "x={x} w={w}"
                );
            }
        }
    }
}
