//! Algorithmic fast path for the NB-SMT matmul emulation.
//!
//! The event-walking path ([`crate::matmul::NbSmtMatmul::execute_event_with`])
//! simulates every PE cycle: for each output element and reduction step it
//! plans both lanes, multiplies through the flexible multiplier, and
//! classifies the outcome. That is the oracle, but it prices every MAC at a
//! full PE-event dispatch.
//!
//! This module computes the **identical** result — output matrix *and*
//! [`PeStats`] aggregates, bit for bit — from sparsity structure instead:
//!
//! 1. The exact base product `Σ x·w` is computed by the integer GEMM kernels
//!    of the execution layer (SIMD / packed / blocked — whatever the caller's
//!    [`ExecContext`] is configured with).
//! 2. Per weight row, 64-bit column bitmasks record which weights are
//!    nonzero (`wnz`), fit a signed nibble (`wfit`), and are lossy under
//!    MSB rounding (`wrl`, i.e. `round(w)·16 ≠ w`). Collision structure is
//!    then popcount algebra over these masks: a cycle's demanding threads at
//!    column `j` are exactly the threads whose activation is nonzero and
//!    whose `wnz` bit is set.
//! 3. Squeezed thread-slots contribute an integer *delta* — the difference
//!    between the reduced-precision product the PE produces and the exact
//!    product already inside the base GEMM. Deltas are only nonzero at lossy
//!    slots, so the correction loop touches `O(collisions)` columns instead
//!    of `O(n·k)` events.
//!
//! The mapping from the PE dispatch (see `pe.rs`) to masks, for each thread
//! `t` with activation `x` at reduction position `p`:
//!
//! * **2T, S on**: dual-lane squeeze happens iff both threads demand the MAC
//!   (`a₀ & a₁`); a lone demanding thread runs full precision (no delta).
//! * **2T, S off**: every cycle squeezes, so each demanding thread is
//!   squeezed wherever it is active (`aₜ`).
//! * **4T, S on**: exactly-2 demanding → dual-lane for those two;
//!   ≥3 demanding → 4b×4b quad lanes for the demanding threads.
//! * **4T, S off**: quad lanes every cycle; non-demanding threads contribute
//!   exactly zero and are never counted as reduced, so restricting the masks
//!   to demanding threads is still exact.
//!
//! Dual-lane deltas follow `plan_dual_lane`: the activation-narrow lane
//! replaces `x` with `round(x)·16` (delta `(round(x)·16 − x)·w`, `Reduced`
//! iff that differs), the weight-narrow lane replaces `w` with `round(w)·16`
//! (delta `x·(round(w)·16 − w)`). Quad deltas follow `plan_quad_lane`:
//! both sides reduce independently (`X̃·W̃ − x·w`), with the width check
//! keeping sides that already fit a nibble exact.

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_quant::reduce::{
    fits_nibble_signed, fits_nibble_unsigned, round_to_nibble_signed, round_to_nibble_unsigned,
};
use nbsmt_tensor::exec::{ExecContext, PackedRhs};

use crate::pe::PeStats;
use crate::policy::{SharingPolicy, WidthMode};
use crate::ThreadCount;

/// Per-weight-row column bitmasks and precomputed rounded weights, built
/// once per `execute` call and shared read-only by every row tile.
pub(crate) struct WeightTables {
    /// Words per row: `ceil(n / 64)`.
    nw: usize,
    /// Bit `j` of row `p`: `w[p,j] != 0`.
    wnz: Vec<u64>,
    /// Bit `j` of row `p`: `w[p,j]` fits a signed nibble.
    wfit: Vec<u64>,
    /// Bit `j` of row `p`: `round(w[p,j])·16 != w[p,j]` (lossy if reduced).
    wrl: Vec<u64>,
    /// `round(w[p,j])·16` for every weight (row-major, `k × n`).
    wr16: Vec<i32>,
    /// Popcount of `wnz` per row (baseline busy-slot counting).
    wnz_count: Vec<u64>,
}

impl WeightTables {
    pub(crate) fn new(w: &QuantWeightMatrix) -> Self {
        let (k, n) = (w.rows(), w.cols());
        let wv = w.values().as_slice();
        let nw = n.div_ceil(64);
        let mut wnz = vec![0u64; k * nw];
        let mut wfit = vec![0u64; k * nw];
        let mut wrl = vec![0u64; k * nw];
        let mut wr16 = vec![0i32; k * n];
        let mut wnz_count = vec![0u64; k];
        for p in 0..k {
            for j in 0..n {
                let v = wv[p * n + j];
                let word = p * nw + j / 64;
                let bit = 1u64 << (j % 64);
                if v != 0 {
                    wnz[word] |= bit;
                }
                if fits_nibble_signed(v) {
                    wfit[word] |= bit;
                }
                let r16 = round_to_nibble_signed(v) as i32 * 16;
                if r16 != v as i32 {
                    wrl[word] |= bit;
                }
                wr16[p * n + j] = r16;
            }
            wnz_count[p] = wnz[p * nw..(p + 1) * nw]
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum();
        }
        WeightTables {
            nw,
            wnz,
            wfit,
            wrl,
            wr16,
            wnz_count,
        }
    }

    fn wnz_row(&self, p: usize) -> &[u64] {
        &self.wnz[p * self.nw..(p + 1) * self.nw]
    }

    fn wfit_row(&self, p: usize) -> &[u64] {
        &self.wfit[p * self.nw..(p + 1) * self.nw]
    }

    fn wrl_row(&self, p: usize) -> &[u64] {
        &self.wrl[p * self.nw..(p + 1) * self.nw]
    }
}

/// Iterates the set bits of `word` (offset by `wi * 64`), calling `f(j)`.
#[inline]
fn for_each_bit(mut word: u64, wi: usize, mut f: impl FnMut(usize)) {
    while word != 0 {
        let j = wi * 64 + word.trailing_zeros() as usize;
        word &= word - 1;
        f(j);
    }
}

/// Emulates output rows `row_start .. row_start + nrows` through the fast
/// path. `base` must be a 1-thread context (the caller already owns the
/// row-tile fan-out); `pack` optionally supplies pre-packed weights for the
/// base GEMM.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rows_fast(
    base: &ExecContext,
    tables: &WeightTables,
    threads: ThreadCount,
    policy: SharingPolicy,
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
    pack: Option<&PackedRhs<i8>>,
    row_start: usize,
    nrows: usize,
    out: &mut [f32],
) -> PeStats {
    let (k, n) = (x.cols(), w.cols());
    let xv = x.values().as_slice();
    let wv = w.values().as_slice();

    // Exact base product through the configured integer kernel.
    let mut acc = vec![0i64; nrows * n];
    let a_rows = &xv[row_start * k..(row_start + nrows) * k];
    match pack {
        Some(pack) => base.gemm_u8i8_prepacked(nrows, a_rows, pack, &mut acc),
        None => base.gemm_u8i8(nrows, k, n, a_rows, wv, &mut acc),
    }

    let mut stats = PeStats::default();
    match threads {
        ThreadCount::One => {
            // Baseline: no squeezing, stats are pure popcount algebra.
            stats.cycles = (nrows * n * k) as u64;
            for r in 0..nrows {
                let arow = &xv[(row_start + r) * k..(row_start + r + 1) * k];
                let mut busy = 0u64;
                for (p, &xval) in arow.iter().enumerate() {
                    if xval != 0 {
                        busy += tables.wnz_count[p];
                    }
                }
                stats.busy_cycles += busy;
                stats.active_thread_slots += busy;
            }
        }
        ThreadCount::Two => {
            rows_two_fast(
                tables, policy, xv, wv, k, n, row_start, nrows, &mut acc, &mut stats,
            );
        }
        ThreadCount::Four => {
            rows_four_fast(
                tables, policy, xv, wv, k, n, row_start, nrows, &mut acc, &mut stats,
            );
        }
    }

    for r in 0..nrows {
        for j in 0..n {
            out[r * n + j] = acc[r * n + j] as f32 * x.scale() * w.scale(j);
        }
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn rows_two_fast(
    tables: &WeightTables,
    policy: SharingPolicy,
    xv: &[u8],
    wv: &[i8],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    acc: &mut [i64],
    stats: &mut PeStats,
) {
    let nw = tables.nw;
    let half = k.div_ceil(2);
    stats.cycles = (nrows * n) as u64 * half as u64;
    let zero_row = vec![0u64; nw];
    let mut sq = vec![0u64; nw];
    for r in 0..nrows {
        let arow = &xv[(row_start + r) * k..(row_start + r + 1) * k];
        let acc_row = &mut acc[r * n..(r + 1) * n];
        for s in 0..half {
            let p0 = s;
            let p1 = half + s;
            let x0 = arow[p0];
            let x1 = if p1 < k { arow[p1] } else { 0 };
            let m0 = if x0 != 0 {
                tables.wnz_row(p0)
            } else {
                &zero_row[..]
            };
            let m1 = if x1 != 0 && p1 < k {
                tables.wnz_row(p1)
            } else {
                &zero_row[..]
            };
            for wi in 0..nw {
                let (a0, a1) = (m0[wi], m1[wi]);
                stats.busy_cycles += (a0 | a1).count_ones() as u64;
                stats.collision_cycles += (a0 & a1).count_ones() as u64;
                stats.active_thread_slots += (a0.count_ones() + a1.count_ones()) as u64;
                sq[wi] = a0 & a1;
            }
            // Squeeze set per thread: collisions only with S, every active
            // slot without it (the PE always splits its lanes then).
            if policy.exploit_sparsity {
                dual_deltas(tables, policy.width, x0, p0, &sq, wv, n, acc_row, stats);
                if p1 < k {
                    dual_deltas(tables, policy.width, x1, p1, &sq, wv, n, acc_row, stats);
                }
            } else {
                dual_deltas(tables, policy.width, x0, p0, m0, wv, n, acc_row, stats);
                if p1 < k {
                    dual_deltas(tables, policy.width, x1, p1, m1, wv, n, acc_row, stats);
                }
            }
        }
    }
}

/// Applies one thread's dual-lane (4b×8b) squeeze over the columns in
/// `mask`: adjusts `acc` by the reduced-minus-exact delta and counts the
/// `Reduced` outcomes, mirroring `plan_dual_lane` exactly.
#[allow(clippy::too_many_arguments)]
fn dual_deltas(
    tables: &WeightTables,
    mode: WidthMode,
    x: u8,
    p: usize,
    mask: &[u64],
    wv: &[i8],
    n: usize,
    acc: &mut [i64],
    stats: &mut PeStats,
) {
    if x == 0 {
        return;
    }
    let x_fits = fits_nibble_unsigned(x);
    // Activation-narrow lane with the rounded MSB nibble: delta per column
    // is `(round(x)·16 − x) · w`, `Reduced` iff the rounding is lossy.
    let act_reduced = |filter_wfit: bool, acc: &mut [i64], stats: &mut PeStats| {
        let d = round_to_nibble_unsigned(x) as i64 * 16 - x as i64;
        if d == 0 {
            return;
        }
        for (wi, &mword) in mask.iter().enumerate().take(tables.nw) {
            let mut word = mword;
            if filter_wfit {
                word &= !tables.wfit_row(p)[wi];
            }
            stats.reduced_thread_slots += word.count_ones() as u64;
            for_each_bit(word, wi, |j| {
                acc[j] += d * wv[p * n + j] as i64;
            });
        }
    };
    // Weight-narrow lane for weights that do not fit a nibble: delta per
    // column is `x · (round(w)·16 − w)`, `Reduced` iff lossy (`wrl`).
    let weight_reduced = |acc: &mut [i64], stats: &mut PeStats| {
        for (wi, &mword) in mask.iter().enumerate().take(tables.nw) {
            let candidates = mword & !tables.wfit_row(p)[wi];
            let lossy = candidates & tables.wrl_row(p)[wi];
            stats.reduced_thread_slots += lossy.count_ones() as u64;
            for_each_bit(lossy, wi, |j| {
                acc[j] += x as i64 * (tables.wr16[p * n + j] as i64 - wv[p * n + j] as i64);
            });
        }
    };
    match mode {
        WidthMode::None => act_reduced(false, acc, stats),
        WidthMode::Activation => {
            if !x_fits {
                act_reduced(false, acc, stats);
            }
        }
        WidthMode::ActivationThenSwap => {
            // x fits → exact everywhere; else columns whose weight fits a
            // nibble swap to the exact weight-narrow lane, the rest reduce
            // the activation.
            if !x_fits {
                act_reduced(true, acc, stats);
            }
        }
        WidthMode::Weight => weight_reduced(acc, stats),
        WidthMode::WeightThenSwap => {
            // w fits → exact; else x fits → exact swap; else reduce weight.
            if !x_fits {
                weight_reduced(acc, stats);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rows_four_fast(
    tables: &WeightTables,
    policy: SharingPolicy,
    xv: &[u8],
    wv: &[i8],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    acc: &mut [i64],
    stats: &mut PeStats,
) {
    let nw = tables.nw;
    let seg = k.div_ceil(4);
    stats.cycles = (nrows * n) as u64 * seg as u64;
    let zero_row = vec![0u64; nw];
    // Per-thread squeeze masks for this cycle: dual-lane and quad-lane.
    let mut dual = [
        vec![0u64; nw],
        vec![0u64; nw],
        vec![0u64; nw],
        vec![0u64; nw],
    ];
    let mut quad = [
        vec![0u64; nw],
        vec![0u64; nw],
        vec![0u64; nw],
        vec![0u64; nw],
    ];
    for r in 0..nrows {
        let arow = &xv[(row_start + r) * k..(row_start + r + 1) * k];
        let acc_row = &mut acc[r * n..(r + 1) * n];
        for s in 0..seg {
            let mut xs = [0u8; 4];
            let mut masks: [&[u64]; 4] = [&zero_row; 4];
            for t in 0..4 {
                let p = t * seg + s;
                if p < k {
                    xs[t] = arow[p];
                    if xs[t] != 0 {
                        masks[t] = tables.wnz_row(p);
                    }
                }
            }
            for wi in 0..nw {
                let [a0, a1, a2, a3] = [masks[0][wi], masks[1][wi], masks[2][wi], masks[3][wi]];
                let any = a0 | a1 | a2 | a3;
                // ≥2 and ≥3 demanding threads via pairwise/triple unions.
                let pair = (a0 & a1) | (a0 & a2) | (a0 & a3) | (a1 & a2) | (a1 & a3) | (a2 & a3);
                let tri = (a0 & a1 & a2) | (a0 & a1 & a3) | (a0 & a2 & a3) | (a1 & a2 & a3);
                stats.busy_cycles += any.count_ones() as u64;
                stats.collision_cycles += pair.count_ones() as u64;
                stats.active_thread_slots +=
                    (a0.count_ones() + a1.count_ones() + a2.count_ones() + a3.count_ones()) as u64;
                if policy.exploit_sparsity {
                    // Exactly 2 demanding → dual lanes; ≥3 → quad lanes;
                    // 0/1 → full precision (no delta).
                    let exactly2 = pair & !tri;
                    for t in 0..4 {
                        dual[t][wi] = exactly2 & masks[t][wi];
                        quad[t][wi] = tri & masks[t][wi];
                    }
                } else {
                    // S off: every cycle is a ≥3-way squeeze; non-demanding
                    // threads contribute exactly zero, so masking to the
                    // demanding ones is still exact.
                    for t in 0..4 {
                        dual[t][wi] = 0;
                        quad[t][wi] = masks[t][wi];
                    }
                }
            }
            for t in 0..4 {
                let p = t * seg + s;
                if p >= k || xs[t] == 0 {
                    continue;
                }
                if policy.exploit_sparsity {
                    dual_deltas(
                        tables,
                        policy.width,
                        xs[t],
                        p,
                        &dual[t],
                        wv,
                        n,
                        acc_row,
                        stats,
                    );
                }
                quad_deltas(tables, policy, xs[t], p, &quad[t], wv, n, acc_row, stats);
            }
        }
    }
}

/// Applies one thread's quad-lane (4b×4b) squeeze over the columns in
/// `mask`, mirroring `plan_quad_lane`: both operand sides reduce to nibbles
/// independently, and a side that already fits stays exact when the width
/// check is enabled (`mode != None`).
#[allow(clippy::too_many_arguments)]
fn quad_deltas(
    tables: &WeightTables,
    policy: SharingPolicy,
    x: u8,
    p: usize,
    mask: &[u64],
    wv: &[i8],
    n: usize,
    acc: &mut [i64],
    stats: &mut PeStats,
) {
    let check = policy.width != WidthMode::None;
    let x_exact = check && fits_nibble_unsigned(x);
    let xr16 = round_to_nibble_unsigned(x) as i64 * 16;
    let xt = if x_exact { x as i64 } else { xr16 };
    if xt != x as i64 {
        // Lossy activation side: every squeezed column is `Reduced`; the
        // weight side still picks exact-vs-rounded per column.
        let wfit_row = tables.wfit_row(p);
        for wi in 0..tables.nw {
            let word = mask[wi];
            stats.reduced_thread_slots += word.count_ones() as u64;
            let fits = wfit_row[wi];
            for_each_bit(word, wi, |j| {
                let wval = wv[p * n + j] as i64;
                let wt = if check && (fits >> (j % 64)) & 1 == 1 {
                    wval
                } else {
                    tables.wr16[p * n + j] as i64
                };
                acc[j] += xt * wt - x as i64 * wval;
            });
        }
    } else {
        // Exact activation side: only columns whose weight rounds lossily
        // contribute a delta (and count as `Reduced`).
        for (wi, &mword) in mask.iter().enumerate().take(tables.nw) {
            let mut lossy = mword & tables.wrl_row(p)[wi];
            if check {
                lossy &= !tables.wfit_row(p)[wi];
            }
            stats.reduced_thread_slots += lossy.count_ones() as u64;
            for_each_bit(lossy, wi, |j| {
                acc[j] += x as i64 * (tables.wr16[p * n + j] as i64 - wv[p * n + j] as i64);
            });
        }
    }
}
