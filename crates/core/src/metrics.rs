//! Error and utilization metrics for NB-SMT executions.
//!
//! These are the quantities plotted in the paper's evaluation: per-layer MSE
//! between the NB-SMT output and the error-free quantized output (Fig. 8),
//! utilization improvement over the conventional array together with the
//! analytic `1 + sparsity` curve of Eq. 8 (Fig. 9), and the architectural
//! speedup obtained from per-layer thread assignments (Tables IV–V, Fig. 10).

use serde::{Deserialize, Serialize};

use nbsmt_tensor::tensor::Matrix;

/// Per-layer error metrics of an NB-SMT execution against the error-free
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerError {
    /// Mean squared error between the NB-SMT output and the reference.
    pub mse: f64,
    /// MSE normalized by the reference signal power (relative error).
    pub relative_mse: f64,
    /// Maximum absolute element-wise error.
    pub max_abs_error: f64,
}

/// Computes [`LayerError`] between an NB-SMT output and the reference output.
///
/// # Panics
///
/// Panics when the two matrices have different dimensions.
pub fn layer_error(nbsmt: &Matrix<f32>, reference: &Matrix<f32>) -> LayerError {
    assert_eq!(nbsmt.rows(), reference.rows(), "row mismatch");
    assert_eq!(nbsmt.cols(), reference.cols(), "column mismatch");
    let n = nbsmt.as_slice().len();
    if n == 0 {
        return LayerError {
            mse: 0.0,
            relative_mse: 0.0,
            max_abs_error: 0.0,
        };
    }
    let mut sq = 0.0f64;
    let mut sig = 0.0f64;
    let mut max_abs = 0.0f64;
    for (a, b) in nbsmt.as_slice().iter().zip(reference.as_slice()) {
        let d = (*a - *b) as f64;
        sq += d * d;
        sig += (*b as f64) * (*b as f64);
        if d.abs() > max_abs {
            max_abs = d.abs();
        }
    }
    let mse = sq / n as f64;
    LayerError {
        mse,
        relative_mse: if sig == 0.0 { 0.0 } else { sq / sig },
        max_abs_error: max_abs,
    }
}

/// The analytic utilization-gain curve of Eq. 8: with activation sparsity `s`
/// and independent threads, a 2-threaded PE improves utilization by `1 + s`.
pub fn analytic_utilization_gain_2t(sparsity: f64) -> f64 {
    1.0 + sparsity.clamp(0.0, 1.0)
}

/// Generalization of Eq. 7/8 to `t` threads: utilization of a `t`-threaded PE
/// is `1 - (1 - r)^t` where `r = 1 - s`, so the gain over one thread is
/// `(1 - s^t) / (1 - s)` (and `t` when `s == 1`).
pub fn analytic_utilization_gain(sparsity: f64, threads: usize) -> f64 {
    let s = sparsity.clamp(0.0, 1.0);
    if threads <= 1 {
        return 1.0;
    }
    if (1.0 - s).abs() < 1e-12 {
        return threads as f64;
    }
    (1.0 - s.powi(threads as i32)) / (1.0 - s)
}

/// One layer's contribution to a whole-model run: how many MAC operations it
/// holds and how many threads it runs with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// MAC operations of the layer (for one input).
    pub mac_ops: u64,
    /// Threads assigned to the layer (1, 2, or 4).
    pub threads: usize,
}

/// Architectural speedup of a per-layer thread assignment over the
/// conventional single-threaded array.
///
/// The paper's speedup is cycle-exact by construction: a layer running with
/// `T` threads takes `1/T` of its baseline cycles, so the whole-model speedup
/// is `Σ macs / Σ (macs / threads)`.
pub fn model_speedup(layers: &[LayerSchedule]) -> f64 {
    let total: f64 = layers.iter().map(|l| l.mac_ops as f64).sum();
    let scaled: f64 = layers
        .iter()
        .map(|l| l.mac_ops as f64 / l.threads.max(1) as f64)
        .sum();
    if scaled == 0.0 {
        1.0
    } else {
        total / scaled
    }
}

/// A single (sparsity, measured-gain) point for the Fig. 9 scatter plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationPoint {
    /// Activation sparsity of the layer.
    pub sparsity: f64,
    /// Measured utilization improvement of the NB-SMT array over baseline.
    pub gain: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(data: &[f32], rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_vec(data.to_vec(), rows, cols).unwrap()
    }

    #[test]
    fn layer_error_zero_for_identical_outputs() {
        let a = m(&[1.0, -2.0, 3.0, 4.0], 2, 2);
        let e = layer_error(&a, &a);
        assert_eq!(e.mse, 0.0);
        assert_eq!(e.relative_mse, 0.0);
        assert_eq!(e.max_abs_error, 0.0);
    }

    #[test]
    fn layer_error_matches_manual_computation() {
        let a = m(&[1.0, 2.0], 1, 2);
        let b = m(&[0.0, 4.0], 1, 2);
        let e = layer_error(&a, &b);
        assert!((e.mse - (1.0 + 4.0) / 2.0).abs() < 1e-9);
        assert!((e.relative_mse - 5.0 / 16.0).abs() < 1e-9);
        assert!((e.max_abs_error - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn layer_error_rejects_shape_mismatch() {
        let a = m(&[1.0], 1, 1);
        let b = m(&[1.0, 2.0], 2, 1);
        layer_error(&a, &b);
    }

    #[test]
    fn eq8_curve_is_linear_in_sparsity() {
        assert!((analytic_utilization_gain_2t(0.0) - 1.0).abs() < 1e-12);
        assert!((analytic_utilization_gain_2t(0.5) - 1.5).abs() < 1e-12);
        assert!((analytic_utilization_gain_2t(1.0) - 2.0).abs() < 1e-12);
        assert!((analytic_utilization_gain_2t(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn generalized_gain_matches_two_thread_special_case() {
        for s in [0.0, 0.25, 0.5, 0.9] {
            assert!(
                (analytic_utilization_gain(s, 2) - analytic_utilization_gain_2t(s)).abs() < 1e-12
            );
        }
        assert!((analytic_utilization_gain(1.0, 4) - 4.0).abs() < 1e-12);
        assert!((analytic_utilization_gain(0.5, 1) - 1.0).abs() < 1e-12);
        // 4 threads at 50% sparsity: (1 - 0.0625) / 0.5 = 1.875
        assert!((analytic_utilization_gain(0.5, 4) - 1.875).abs() < 1e-12);
    }

    #[test]
    fn model_speedup_uniform_threads() {
        let layers = vec![
            LayerSchedule {
                mac_ops: 100,
                threads: 2,
            },
            LayerSchedule {
                mac_ops: 300,
                threads: 2,
            },
        ];
        assert!((model_speedup(&layers) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn model_speedup_with_slowed_layers() {
        // A model with 90% of MACs at 4T and 10% at 2T.
        let layers = vec![
            LayerSchedule {
                mac_ops: 900,
                threads: 4,
            },
            LayerSchedule {
                mac_ops: 100,
                threads: 2,
            },
        ];
        let s = model_speedup(&layers);
        assert!(s > 3.0 && s < 4.0, "speedup {s}");
        // Exact value: 1000 / (225 + 50) = 3.636...
        assert!((s - 1000.0 / 275.0).abs() < 1e-9);
    }

    #[test]
    fn model_speedup_degenerate_cases() {
        assert_eq!(model_speedup(&[]), 1.0);
        let layers = vec![LayerSchedule {
            mac_ops: 0,
            threads: 4,
        }];
        assert_eq!(model_speedup(&layers), 1.0);
    }
}
