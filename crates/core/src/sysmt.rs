//! The SySMT array: an NB-SMT-enabled output-stationary systolic array.
//!
//! SySMT keeps the conventional OS-SA grid and dataflow but scales the PE
//! connectivity with the number of threads: each PE receives `T`
//! activation/weight pairs per cycle (the K dimension is split into `T`
//! segments) and accumulates all contributions into its shared partial-sum
//! register. Because no thread ever stalls, a layer running with `T` threads
//! finishes in exactly `1/T` of the baseline streaming cycles.
//!
//! This module provides both the array-level simulation (cycle counts,
//! utilization improvement over the baseline array — Fig. 9) and convenience
//! wrappers that execute a whole layer and report error metrics (Fig. 8).

use serde::{Deserialize, Serialize};

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_systolic::array::{OutputStationaryArray, SystolicConfig};
use nbsmt_systolic::schedule::TilingPlan;
use nbsmt_tensor::error::TensorError;
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Matrix;

use crate::matmul::{reference_output_with, NbSmtMatmul, NbSmtMatmulConfig};
use crate::metrics::{layer_error, LayerError};
use crate::pe::PeStats;
use crate::policy::SharingPolicy;
use crate::ThreadCount;

/// Configuration of a SySMT array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SySmtConfig {
    /// PE grid dimensions.
    pub grid: SystolicConfig,
    /// Number of threads per PE.
    pub threads: ThreadCount,
    /// Sharing policy.
    pub policy: SharingPolicy,
    /// Whether the statistical column reordering of §IV-B is applied.
    pub reorder: bool,
}

impl SySmtConfig {
    /// The paper's 16×16, 2-threaded configuration with S+A and reordering.
    pub fn paper_2t() -> Self {
        SySmtConfig {
            grid: SystolicConfig::paper_16x16(),
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: true,
        }
    }

    /// The paper's 16×16, 4-threaded configuration.
    pub fn paper_4t() -> Self {
        SySmtConfig {
            threads: ThreadCount::Four,
            ..Self::paper_2t()
        }
    }
}

impl Default for SySmtConfig {
    fn default() -> Self {
        Self::paper_2t()
    }
}

/// Result of executing one layer on the SySMT array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SySmtLayerResult {
    /// Dequantized layer output as produced under NB-SMT.
    pub output: Matrix<f32>,
    /// Error metrics against the error-free quantized output.
    pub error: LayerError,
    /// Streaming cycles of the SySMT execution (tiled onto the grid).
    pub cycles: u64,
    /// Streaming cycles of the conventional single-threaded array for the
    /// same layer.
    pub baseline_cycles: u64,
    /// Utilization of the SySMT array (fraction of PE cycles with at least
    /// one active thread).
    pub utilization: f64,
    /// Utilization of the conventional array on the same layer.
    pub baseline_utilization: f64,
    /// Aggregated PE statistics of the NB-SMT emulation.
    pub pe_stats: PeStats,
}

impl SySmtLayerResult {
    /// Speedup in streaming cycles over the conventional array.
    pub fn speedup(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.cycles as f64
        }
    }

    /// Utilization improvement over the conventional array (the y-axis of
    /// Fig. 9).
    pub fn utilization_gain(&self) -> f64 {
        if self.baseline_utilization == 0.0 {
            1.0
        } else {
            self.utilization / self.baseline_utilization
        }
    }
}

/// An NB-SMT-enabled output-stationary systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SySmtArray {
    config: SySmtConfig,
}

impl SySmtArray {
    /// Creates a SySMT array.
    pub fn new(config: SySmtConfig) -> Self {
        SySmtArray { config }
    }

    /// The array configuration.
    pub fn config(&self) -> &SySmtConfig {
        &self.config
    }

    /// Streaming cycles for a layer of the given GEMM dimensions when run on
    /// this array: the K dimension is divided by the thread count, and the
    /// result is tiled onto the grid exactly like the baseline array.
    pub fn layer_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        let k_per_thread = k.div_ceil(self.config.threads.count());
        TilingPlan::new(
            m,
            k_per_thread,
            n,
            self.config.grid.rows,
            self.config.grid.cols,
        )
        .total_cycles()
    }

    /// Streaming cycles of the conventional 1-threaded array for the same
    /// layer dimensions.
    pub fn baseline_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        TilingPlan::new(m, k, n, self.config.grid.rows, self.config.grid.cols).total_cycles()
    }

    /// Executes one layer (`X (M×K) · W (K×N)`) on the array: the numeric
    /// output is produced by the NB-SMT emulation, cycle counts come from the
    /// tiling plan, and utilization is compared against the conventional
    /// array on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute_layer(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<SySmtLayerResult, TensorError> {
        self.execute_layer_with(&ExecContext::sequential(), x, w)
    }

    /// [`Self::execute_layer`] through the given execution context: both the
    /// NB-SMT emulation and the error-free reference run on the context's
    /// worker pool, with identical results for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute_layer_with(
        &self,
        ctx: &ExecContext,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<SySmtLayerResult, TensorError> {
        let (m, k, n) = (x.rows(), x.cols(), w.cols());

        // Numeric output and per-PE statistics via the functional emulation.
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: self.config.threads,
            policy: self.config.policy,
            reorder: self.config.reorder,
        });
        let nbsmt = emu.execute_with(ctx, x, w)?;
        let reference = reference_output_with(ctx, x, w)?;
        let error = layer_error(&nbsmt.output, &reference);

        // Baseline utilization from the conventional array estimator.
        let baseline_array = OutputStationaryArray::new(self.config.grid);
        let baseline = baseline_array.estimate(x.values(), w.values())?;

        Ok(SySmtLayerResult {
            output: nbsmt.output,
            error,
            cycles: self.layer_cycles(m, k, n),
            baseline_cycles: self.baseline_cycles(m, k, n),
            utilization: nbsmt.stats.utilization(),
            baseline_utilization: baseline.utilization(),
            pe_stats: nbsmt.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_quant::quantize::{quantize_activations, quantize_weights};
    use nbsmt_quant::scheme::QuantScheme;
    use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};

    fn random_layer(
        seed: u64,
        m: usize,
        k: usize,
        n: usize,
        sparsity: f64,
    ) -> (QuantMatrix, QuantWeightMatrix) {
        let mut synth = TensorSynthesizer::new(seed);
        let x_f = synth.tensor(&SynthesisConfig::activation(1.0, sparsity), &[m, k]);
        let w_f = synth.tensor(&SynthesisConfig::weight(0.3, 0.0), &[k, n]);
        let x = quantize_activations(
            &Matrix::from_vec(x_f.into_vec(), m, k).unwrap(),
            &QuantScheme::activation_a8(),
            None,
        );
        let w = quantize_weights(
            &Matrix::from_vec(w_f.into_vec(), k, n).unwrap(),
            &QuantScheme::weight_w8(),
        );
        (x, w)
    }

    #[test]
    fn config_presets() {
        let c2 = SySmtConfig::paper_2t();
        assert_eq!(c2.threads, ThreadCount::Two);
        assert_eq!(c2.grid.pe_count(), 256);
        let c4 = SySmtConfig::paper_4t();
        assert_eq!(c4.threads, ThreadCount::Four);
        assert_eq!(SySmtConfig::default(), c2);
    }

    #[test]
    fn cycle_counts_scale_with_threads() {
        let cfg2 = SySmtConfig {
            grid: SystolicConfig::new(8, 8),
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        };
        let array2 = SySmtArray::new(cfg2);
        let (m, k, n) = (32, 128, 32);
        let baseline = array2.baseline_cycles(m, k, n);
        let two = array2.layer_cycles(m, k, n);
        // K shrinks by 2x; the skew overhead stays, so speedup is slightly
        // below 2x per tile but the streaming portion halves exactly.
        assert!(two < baseline);
        assert!(baseline as f64 / two as f64 > 1.7);

        let array4 = SySmtArray::new(SySmtConfig {
            threads: ThreadCount::Four,
            ..cfg2
        });
        let four = array4.layer_cycles(m, k, n);
        assert!(four < two);
    }

    #[test]
    fn execute_layer_reports_speedup_and_low_error() {
        let (x, w) = random_layer(11, 24, 96, 16, 0.55);
        let array = SySmtArray::new(SySmtConfig {
            grid: SystolicConfig::new(8, 8),
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: true,
        });
        let r = array.execute_layer(&x, &w).unwrap();
        assert!(r.speedup() > 1.5, "speedup {}", r.speedup());
        assert!(
            r.error.relative_mse < 0.02,
            "rel mse {}",
            r.error.relative_mse
        );
        assert!(r.utilization_gain() >= 1.0);
        assert!(r.utilization <= 1.0 && r.baseline_utilization <= 1.0);
    }

    #[test]
    fn utilization_gain_tracks_sparsity() {
        // Sparser activations leave more idle baseline slots, so the gain of
        // 2 threads is larger (Fig. 9's upward trend).
        let array = SySmtArray::new(SySmtConfig {
            grid: SystolicConfig::new(8, 8),
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let (x_dense, w_dense) = random_layer(21, 16, 64, 8, 0.05);
        let (x_sparse, w_sparse) = random_layer(22, 16, 64, 8, 0.7);
        let dense = array.execute_layer(&x_dense, &w_dense).unwrap();
        let sparse = array.execute_layer(&x_sparse, &w_sparse).unwrap();
        assert!(
            sparse.utilization_gain() > dense.utilization_gain(),
            "sparse gain {} should exceed dense gain {}",
            sparse.utilization_gain(),
            dense.utilization_gain()
        );
    }

    #[test]
    fn execute_layer_rejects_mismatched_dimensions() {
        let x = QuantMatrix::zeros(4, 6, 1.0);
        let w = QuantWeightMatrix::with_uniform_scale(Matrix::zeros(5, 3), 1.0);
        let array = SySmtArray::new(SySmtConfig::paper_2t());
        assert!(array.execute_layer(&x, &w).is_err());
    }
}
