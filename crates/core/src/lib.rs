//! # nbsmt-core
//!
//! Non-blocking simultaneous multithreading (NB-SMT) for DNN accelerators —
//! the primary contribution of Shomron & Weiser, MICRO 2020 — together with
//! SySMT, its instantiation as an output-stationary systolic array.
//!
//! NB-SMT keeps several "DNN threads" resident on a shared MAC unit. When
//! more threads demand the multiplier than it can serve at full precision, no
//! thread stalls; instead the colliding operands are reduced to 4 bits on the
//! fly (round to the nearest multiple of 16, keep the MSBs), exploiting DNN
//! resiliency. Zero operands (8-bit sparsity) and operands that already fit
//! in 4 bits (partial sparsity) are exploited so most cycles incur no error.
//!
//! * [`fmul`] — the flexible multipliers (Eq. 4 and Eq. 5 decompositions),
//! * [`policy`] — the sharing policies of Table III (S, A, W, Aw, aW, …),
//! * [`pe`] — the 2- and 4-threaded PE logic (Algorithm 1),
//! * [`matmul`] — functional NB-SMT layer emulation on the integer grid,
//! * [`sysmt`] — the SySMT array (cycles, speedup, utilization gain),
//! * [`metrics`] — MSE, Eq. 8 utilization curves, model speedup,
//! * [`tuning`] — per-layer thread tuning (Table V, Fig. 10).
//!
//! ```
//! use nbsmt_core::pe::{SmtPe2, ThreadInput};
//! use nbsmt_core::policy::SharingPolicy;
//!
//! let pe = SmtPe2::new(SharingPolicy::S_A);
//! // One thread is idle, so the other runs at full precision: no error.
//! let r = pe.cycle([ThreadInput::new(0, 23), ThreadInput::new(178, -14)]);
//! assert_eq!(r.total(), 178 * -14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

pub(crate) mod fastpath;
pub mod fmul;
pub mod matmul;
pub mod metrics;
pub mod pe;
pub mod policy;
pub mod sysmt;
pub mod tuning;

pub use matmul::{NbSmtMatmul, NbSmtMatmulConfig, NbSmtOutput};
pub use policy::SharingPolicy;
pub use sysmt::{SySmtArray, SySmtConfig, SySmtLayerResult};

/// Number of hardware threads sharing one PE.
///
/// The paper evaluates 2-threaded and 4-threaded SySMT designs; one thread is
/// the conventional baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadCount {
    /// Conventional single-threaded operation.
    One,
    /// 2-threaded NB-SMT (2T).
    Two,
    /// 4-threaded NB-SMT (4T).
    Four,
}

impl ThreadCount {
    /// The numeric thread count.
    pub fn count(self) -> usize {
        match self {
            ThreadCount::One => 1,
            ThreadCount::Two => 2,
            ThreadCount::Four => 4,
        }
    }

    /// Builds a [`ThreadCount`] from a number.
    ///
    /// Returns `None` for unsupported counts.
    pub fn from_count(count: usize) -> Option<Self> {
        match count {
            1 => Some(ThreadCount::One),
            2 => Some(ThreadCount::Two),
            4 => Some(ThreadCount::Four),
            _ => None,
        }
    }
}

impl std::fmt::Display for ThreadCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}T", self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_round_trip() {
        for t in [ThreadCount::One, ThreadCount::Two, ThreadCount::Four] {
            assert_eq!(ThreadCount::from_count(t.count()), Some(t));
        }
        assert_eq!(ThreadCount::from_count(3), None);
        assert_eq!(ThreadCount::Two.to_string(), "2T");
    }
}
