//! Flexible multiplier units (fMUL).
//!
//! Section IV-C1 of the paper shows how an unsigned-8b × signed-8b
//! multiplication can be decomposed into two 5b×8b signed multiplications
//! plus a shift (Eq. 4), and further into two 4b×4b unsigned and two 5b×4b
//! signed multiplications (Eq. 5). Adding independent shift controls to those
//! narrow multipliers yields a unit that can execute either one 8b-8b
//! multiplication, two independent 4b-8b multiplications, or four independent
//! 4b-4b multiplications per cycle — the datapath that lets SySMT "squeeze"
//! 2 or 4 threads into one PE.
//!
//! The implementations here are bit-exact models of those decompositions:
//! the wide product is *never* computed directly in the decomposed modes, so
//! the tests that compare against a plain wide multiplication genuinely
//! verify the hardware equations.

use serde::{Deserialize, Serialize};

/// One 4-bit-operand multiplication request for the dual (2-threaded) mode:
/// an unsigned activation nibble against a full signed 8-bit weight, with an
/// optional post-multiplication shift when the nibble represents the
/// operand's rounded MSBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualLane {
    /// Unsigned 4-bit operand (0..=15), already reduced by the PE logic.
    pub x_nibble: u8,
    /// Full signed 8-bit second operand.
    pub w: i8,
    /// When `true`, the product is shifted left by 4 (the nibble carries the
    /// operand's MSBs).
    pub shift: bool,
}

/// One 4-bit × 4-bit multiplication request for the quad (4-threaded) mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuadLane {
    /// Unsigned 4-bit activation nibble (0..=15).
    pub x_nibble: u8,
    /// Signed 4-bit weight nibble (−8..=7).
    pub w_nibble: i8,
    /// Shift applied because the activation nibble carries MSBs (adds 4).
    pub x_shift: bool,
    /// Shift applied because the weight nibble carries MSBs (adds 4).
    pub w_shift: bool,
}

/// The 2-threaded flexible multiplier built from two 5b×8b signed
/// multipliers (Fig. 6 / Eq. 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlexMultiplier;

impl FlexMultiplier {
    /// Creates a flexible multiplier.
    pub fn new() -> Self {
        FlexMultiplier
    }

    /// The narrow 5b×8b signed multiplier primitive: `{0, nibble} · w`.
    ///
    /// The nibble is zero-extended to 5 bits so it is always interpreted as a
    /// non-negative two's-complement value, exactly as in Eq. 4.
    fn narrow_mul(nibble: u8, w: i8) -> i32 {
        debug_assert!(nibble <= 0x0F, "narrow multiplier takes a 4-bit operand");
        (nibble as i32) * (w as i32)
    }

    /// Executes a single unsigned-8b × signed-8b multiplication using the
    /// Eq. 4 decomposition: `(x_msb·w) << 4 + (x_lsb·w)`.
    pub fn mul_single(&self, x: u8, w: i8) -> i32 {
        let msb = x >> 4;
        let lsb = x & 0x0F;
        (Self::narrow_mul(msb, w) << 4) + Self::narrow_mul(lsb, w)
    }

    /// Executes two independent 4b×8b multiplications, one per lane, each
    /// optionally shifted left by 4.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when a lane nibble exceeds 4 bits.
    pub fn mul_dual(&self, lanes: [DualLane; 2]) -> [i32; 2] {
        let mut out = [0i32; 2];
        for (o, lane) in out.iter_mut().zip(lanes.iter()) {
            let p = Self::narrow_mul(lane.x_nibble, lane.w);
            *o = if lane.shift { p << 4 } else { p };
        }
        out
    }
}

/// The 4-threaded flexible multiplier built from two 4b×4b unsigned and two
/// 5b×4b signed multipliers (Eq. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlexMultiplier4;

impl FlexMultiplier4 {
    /// Creates a 4-threaded flexible multiplier.
    pub fn new() -> Self {
        FlexMultiplier4
    }

    /// The 5b×4b signed primitive: `{0, x_nibble} · w_nibble` where the
    /// weight nibble is signed.
    fn narrow_signed(x_nibble: u8, w_nibble: i8) -> i32 {
        debug_assert!(x_nibble <= 0x0F);
        debug_assert!((-8..=7).contains(&w_nibble));
        (x_nibble as i32) * (w_nibble as i32)
    }

    /// The 4b×4b unsigned primitive.
    fn narrow_unsigned(x_nibble: u8, w_nibble: u8) -> i32 {
        debug_assert!(x_nibble <= 0x0F);
        debug_assert!(w_nibble <= 0x0F);
        (x_nibble as i32) * (w_nibble as i32)
    }

    /// Executes a single unsigned-8b × signed-8b multiplication using the
    /// Eq. 5 decomposition:
    /// `(x_msb·w_msb) << 8 + (x_msb·w_lsb) << 4 + (x_lsb·w_msb) << 4 + x_lsb·w_lsb`,
    /// where the weight MSB nibble is signed (it carries the sign bit) and
    /// the weight LSB nibble is unsigned.
    pub fn mul_single(&self, x: u8, w: i8) -> i32 {
        let x_msb = x >> 4;
        let x_lsb = x & 0x0F;
        // Arithmetic shift keeps the sign: for w = -0bSxxx_yyyy this yields
        // the signed high nibble in two's complement.
        let w_msb = w >> 4;
        let w_lsb = (w as u8) & 0x0F;
        (Self::narrow_signed(x_msb, w_msb) << 8)
            + (Self::narrow_unsigned(x_msb, w_lsb) << 4)
            + (Self::narrow_signed(x_lsb, w_msb) << 4)
            + Self::narrow_unsigned(x_lsb, w_lsb)
    }

    /// Executes two independent 4b×8b multiplications by pairing the
    /// narrow multipliers (each lane uses one signed and one unsigned
    /// primitive), matching the 2-threaded mode of the generalized unit.
    pub fn mul_dual(&self, lanes: [DualLane; 2]) -> [i32; 2] {
        let mut out = [0i32; 2];
        for (o, lane) in out.iter_mut().zip(lanes.iter()) {
            let w_msb = lane.w >> 4;
            let w_lsb = (lane.w as u8) & 0x0F;
            let p = (Self::narrow_signed(lane.x_nibble, w_msb) << 4)
                + Self::narrow_unsigned(lane.x_nibble, w_lsb);
            *o = if lane.shift { p << 4 } else { p };
        }
        out
    }

    /// Executes four independent 4b×4b multiplications, one per lane, each
    /// shifted according to which nibbles the operands carry.
    pub fn mul_quad(&self, lanes: [QuadLane; 4]) -> [i32; 4] {
        let mut out = [0i32; 4];
        for (o, lane) in out.iter_mut().zip(lanes.iter()) {
            let p = Self::narrow_signed(lane.x_nibble, lane.w_nibble);
            let shift = 4 * (lane.x_shift as u32 + lane.w_shift as u32);
            *o = p << shift;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_single_mode_is_exact_for_all_inputs() {
        let fmul = FlexMultiplier::new();
        for x in 0..=255u8 {
            for w in i8::MIN..=i8::MAX {
                assert_eq!(fmul.mul_single(x, w), x as i32 * w as i32, "x={x} w={w}");
            }
        }
    }

    #[test]
    fn eq5_single_mode_is_exact_for_all_inputs() {
        let fmul = FlexMultiplier4::new();
        for x in 0..=255u8 {
            for w in i8::MIN..=i8::MAX {
                assert_eq!(fmul.mul_single(x, w), x as i32 * w as i32, "x={x} w={w}");
            }
        }
    }

    #[test]
    fn dual_mode_computes_independent_products() {
        let fmul = FlexMultiplier::new();
        let out = fmul.mul_dual([
            DualLane {
                x_nibble: 3,
                w: 23,
                shift: true,
            },
            DualLane {
                x_nibble: 11,
                w: -14,
                shift: true,
            },
        ]);
        // Paper Fig. 2a: 3·23 << 4 = 1104 and 11·242 << 4 = 42592 (unsigned
        // weight example; here the second lane uses a signed weight).
        assert_eq!(out[0], (3 * 23) << 4);
        assert_eq!(out[1], (11 * -14) << 4);
    }

    #[test]
    fn dual_mode_without_shift_matches_narrow_product() {
        let fmul = FlexMultiplier::new();
        let out = fmul.mul_dual([
            DualLane {
                x_nibble: 14,
                w: 23,
                shift: false,
            },
            DualLane {
                x_nibble: 2,
                w: -14,
                shift: false,
            },
        ]);
        assert_eq!(out, [14 * 23, -28]);
    }

    #[test]
    fn dual_modes_of_both_units_agree() {
        let f2 = FlexMultiplier::new();
        let f4 = FlexMultiplier4::new();
        for x_nib in 0..=15u8 {
            for w in [-128i8, -77, -1, 0, 1, 55, 127] {
                for shift in [false, true] {
                    let lanes = [
                        DualLane {
                            x_nibble: x_nib,
                            w,
                            shift,
                        },
                        DualLane {
                            x_nibble: 15 - x_nib,
                            w: w.wrapping_neg(),
                            shift: !shift,
                        },
                    ];
                    assert_eq!(f2.mul_dual(lanes), f4.mul_dual(lanes));
                }
            }
        }
    }

    #[test]
    fn fig2e_example() {
        // Fig. 2e: first thread uses its rounded MSBs (1110b = 14) against
        // w = 0001_0111b = 23 with a shift; second thread uses its LSBs
        // (0010b = 2) against w = -14 (the paper uses unsigned 242; the signed
        // datapath here uses the signed weight convention).
        let fmul = FlexMultiplier::new();
        let out = fmul.mul_dual([
            DualLane {
                x_nibble: 0b1110,
                w: 0b0001_0111,
                shift: true,
            },
            DualLane {
                x_nibble: 0b0010,
                w: 0b0111_1001,
                shift: false,
            },
        ]);
        assert_eq!(out[0], 322 << 4);
        assert_eq!(out[1], 2 * 0b0111_1001);
    }

    #[test]
    fn quad_mode_shifts_compose() {
        let fmul = FlexMultiplier4::new();
        let out = fmul.mul_quad([
            QuadLane {
                x_nibble: 5,
                w_nibble: 3,
                x_shift: false,
                w_shift: false,
            },
            QuadLane {
                x_nibble: 5,
                w_nibble: 3,
                x_shift: true,
                w_shift: false,
            },
            QuadLane {
                x_nibble: 5,
                w_nibble: -3,
                x_shift: false,
                w_shift: true,
            },
            QuadLane {
                x_nibble: 5,
                w_nibble: -3,
                x_shift: true,
                w_shift: true,
            },
        ]);
        assert_eq!(out, [15, 15 << 4, -15 << 4, -15 << 8]);
    }

    #[test]
    fn quad_mode_reconstructs_reduced_products() {
        // A 4-thread collision reduces x to round(x/16) (MSB path) and keeps
        // a narrow weight as-is (LSB path): the product approximates x*w with
        // bounded error.
        let fmul = FlexMultiplier4::new();
        let x: u8 = 178;
        let w: i8 = 6;
        let lane = QuadLane {
            x_nibble: 11, // round(178/16)
            w_nibble: w,
            x_shift: true,
            w_shift: false,
        };
        let out = fmul.mul_quad([lane, lane, lane, lane]);
        let exact = x as i32 * w as i32;
        let approx = out[0];
        assert_eq!(approx, 11 * 6 * 16);
        assert!((exact - approx).abs() <= 8 * 6);
    }
}
