//! Functional NB-SMT matrix-multiplication emulation.
//!
//! This is the numerical core of the reproduction: it computes the output of
//! a quantized layer exactly as a SySMT array would, including every
//! collision decision, precision reduction, and shift, but without simulating
//! the spatial grid cycle by cycle. The emulation operates on the same
//! integer grid as the hardware, so the error it introduces relative to the
//! error-free quantized matmul is exactly the error the hardware would
//! introduce. It is what the accuracy experiments (Tables III–V, Figs. 7–10)
//! run on.
//!
//! Two interchangeable execution strategies produce **bit-identical**
//! results (output and [`PeStats`] alike):
//!
//! * [`NbSmtMatmul::execute_with`] — the algorithmic fast path (the
//!   crate-private `fastpath` module): an exact integer base GEMM through
//!   the execution layer's kernels plus sparse delta corrections derived
//!   from collision bitmasks. This is the default and what serving and the
//!   accuracy sweeps run on.
//! * [`NbSmtMatmul::execute_event_with`] — the event-walking oracle: every
//!   PE cycle is simulated through the lane planner and flexible
//!   multiplier. The fast path is cross-checked against it property-test by
//!   property-test.

use serde::{Deserialize, Serialize};

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_sparsity::reorder::ColumnOrder;
use nbsmt_tensor::error::TensorError;
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Matrix;

use nbsmt_tensor::exec::{ExecConfig, GemmBackendKind, PackedRhs};

use crate::fastpath;
use crate::pe::{PeStats, SmtPe2, SmtPe4, ThreadInput};
use crate::policy::SharingPolicy;
use crate::ThreadCount;

/// Configuration of an NB-SMT matmul emulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NbSmtMatmulConfig {
    /// Number of threads sharing each PE.
    pub threads: ThreadCount,
    /// Sharing policy (which sparsity / data-width paths are exploited).
    pub policy: SharingPolicy,
    /// When `true`, the K dimension is reordered with the statistical
    /// column arrangement of §IV-B before being split between threads.
    pub reorder: bool,
}

impl NbSmtMatmulConfig {
    /// The paper's default 2-threaded configuration (S+A with reordering).
    pub fn two_threads() -> Self {
        NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: true,
        }
    }

    /// The paper's default 4-threaded configuration.
    pub fn four_threads() -> Self {
        NbSmtMatmulConfig {
            threads: ThreadCount::Four,
            policy: SharingPolicy::S_A,
            reorder: true,
        }
    }
}

impl Default for NbSmtMatmulConfig {
    fn default() -> Self {
        Self::two_threads()
    }
}

/// Result of emulating one layer's matmul under NB-SMT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NbSmtOutput {
    /// The dequantized output matrix (scaled by the activation scale and the
    /// per-kernel weight scales).
    pub output: Matrix<f32>,
    /// Aggregated PE statistics over every output element and step.
    pub stats: PeStats,
}

/// NB-SMT matmul emulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NbSmtMatmul {
    config: NbSmtMatmulConfig,
}

impl NbSmtMatmul {
    /// Creates an emulator with the given configuration.
    pub fn new(config: NbSmtMatmulConfig) -> Self {
        NbSmtMatmul { config }
    }

    /// The emulator configuration.
    pub fn config(&self) -> &NbSmtMatmulConfig {
        &self.config
    }

    /// Emulates `X (M×K) · W (K×N)` under NB-SMT and returns the dequantized
    /// output together with PE statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<NbSmtOutput, TensorError> {
        self.execute_with(&ExecContext::sequential(), x, w)
    }

    /// [`Self::execute`] through the given execution context, on the
    /// **algorithmic fast path**: the exact base product runs through the
    /// context's integer GEMM kernel (SIMD/packed/blocked), collision and
    /// squeeze structure is computed with per-tile bitmask popcount algebra,
    /// and lossy thread-slots are applied as sparse integer deltas. The
    /// result — output matrix and [`PeStats`] alike — is **bit-identical**
    /// to the event-walking oracle ([`Self::execute_event_with`]) for every
    /// configuration and thread count (cross-checked by the property suite
    /// in `tests/exec_equivalence.rs`).
    ///
    /// Output rows are partitioned into tiles and fanned out over the
    /// context's worker pool, and each tile's [`PeStats`] are merged back
    /// **in tile order**, so results are also invariant to the host thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute_with(
        &self,
        ctx: &ExecContext,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<NbSmtOutput, TensorError> {
        self.execute_with_prepacked(ctx, x, w, None)
    }

    /// [`Self::execute_with`] with an optional pre-packed weight matrix for
    /// the base GEMM (see [`PackedRhs::pack`]); the serve stack caches one
    /// pack per layer per session. The pack is only consulted when K-dim
    /// reordering is inactive — reordering permutes the weight rows per
    /// call, so a cached pack cannot represent them.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ or the pack's dimensions disagree with `w`.
    pub fn execute_with_prepacked(
        &self,
        ctx: &ExecContext,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
        pack: Option<&PackedRhs<i8>>,
    ) -> Result<NbSmtOutput, TensorError> {
        if x.cols() != w.rows() {
            return Err(TensorError::DimensionMismatch {
                op: "nbsmt matmul",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![w.rows(), w.cols()],
            });
        }
        if let Some(pack) = pack {
            if pack.k() != w.rows() || pack.n() != w.cols() {
                return Err(TensorError::DimensionMismatch {
                    op: "nbsmt matmul (prepacked)",
                    lhs: vec![w.rows(), w.cols()],
                    rhs: vec![pack.k(), pack.n()],
                });
            }
        }

        // Optional statistical reordering of the K dimension (activations'
        // columns and the matching weight rows). A reorder invalidates any
        // caller-supplied pack: the weight rows are permuted per call.
        let (x_owned, w_owned);
        let (x, w, pack) = if self.config.reorder && self.config.threads.count() > 1 {
            let order = ColumnOrder::from_permutation(
                nbsmt_sparsity::reorder::reorder_for_threads(x, self.config.threads.count())
                    .as_slice()
                    .to_vec(),
            );
            x_owned = order.apply_to_activation(x);
            w_owned = order.apply_to_weights(w);
            (&x_owned, &w_owned, None)
        } else {
            (x, w, pack)
        };

        // With the packing backend but no caller-supplied pack, pack once
        // here rather than once per row tile inside the base GEMM.
        let local_pack;
        let pack = match pack {
            None if ctx.config().backend == GemmBackendKind::Packed => {
                local_pack = PackedRhs::pack(w.rows(), w.cols(), w.values().as_slice());
                Some(&local_pack)
            }
            other => other,
        };

        let tables = fastpath::WeightTables::new(w);
        // Each row tile runs its base GEMM inline on the worker that owns
        // it; the caller's thread pool is already saturated by the tile
        // fan-out.
        let base = ExecContext::new(ExecConfig {
            threads: 1,
            ..*ctx.config()
        });

        let (m, n) = (x.rows(), w.cols());
        let mut out = vec![0.0_f32; m * n];
        let tile_stats = ctx.map_row_tiles(&mut out, m, n, |_tile, row_start, nrows, chunk| {
            fastpath::rows_fast(
                &base,
                &tables,
                self.config.threads,
                self.config.policy,
                x,
                w,
                pack,
                row_start,
                nrows,
                chunk,
            )
        });
        // Deterministic reduction: tile order, independent of which worker
        // produced each tile.
        let mut stats = PeStats::default();
        for tile in &tile_stats {
            stats.merge(tile);
        }
        Ok(NbSmtOutput {
            output: Matrix::from_vec(out, m, n)?,
            stats,
        })
    }

    /// Emulates the layer by walking **every PE event** — the oracle the
    /// fast path is cross-checked against. Sequential; see
    /// [`Self::execute_event_with`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute_event(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<NbSmtOutput, TensorError> {
        self.execute_event_with(&ExecContext::sequential(), x, w)
    }

    /// [`Self::execute_event`] through the given execution context: for
    /// every output element and reduction step, the shared PE's full cycle
    /// logic runs — lane planning, flexible-multiplier products, outcome
    /// classification. Bit-identical to [`Self::execute_with`] but priced at
    /// one PE-event dispatch per MAC; kept as the oracle for the fast path
    /// and for microarchitecture-level inspection.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the reduction
    /// dimensions differ.
    pub fn execute_event_with(
        &self,
        ctx: &ExecContext,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<NbSmtOutput, TensorError> {
        if x.cols() != w.rows() {
            return Err(TensorError::DimensionMismatch {
                op: "nbsmt matmul",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![w.rows(), w.cols()],
            });
        }

        // Optional statistical reordering of the K dimension (activations'
        // columns and the matching weight rows).
        let (x_owned, w_owned);
        let (x, w) = if self.config.reorder && self.config.threads.count() > 1 {
            let order = ColumnOrder::from_permutation(
                nbsmt_sparsity::reorder::reorder_for_threads(x, self.config.threads.count())
                    .as_slice()
                    .to_vec(),
            );
            x_owned = order.apply_to_activation(x);
            w_owned = order.apply_to_weights(w);
            (&x_owned, &w_owned)
        } else {
            (x, w)
        };

        let (m, n) = (x.rows(), w.cols());
        let mut out = vec![0.0_f32; m * n];
        let tile_stats =
            ctx.map_row_tiles(&mut out, m, n, |_tile, row_start, nrows, chunk| match self
                .config
                .threads
            {
                ThreadCount::One => self.rows_single(x, w, row_start, nrows, chunk),
                ThreadCount::Two => self.rows_two(x, w, row_start, nrows, chunk),
                ThreadCount::Four => self.rows_four(x, w, row_start, nrows, chunk),
            });
        // Deterministic reduction: tile order, independent of which worker
        // produced each tile.
        let mut stats = PeStats::default();
        for tile in &tile_stats {
            stats.merge(tile);
        }
        Ok(NbSmtOutput {
            output: Matrix::from_vec(out, m, n)?,
            stats,
        })
    }

    /// Single-threaded (baseline) emulation of output rows
    /// `row_start .. row_start + nrows`: the error-free quantized matmul
    /// with baseline utilization statistics.
    fn rows_single(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
        row_start: usize,
        nrows: usize,
        out: &mut [f32],
    ) -> PeStats {
        let (k, n) = (x.cols(), w.cols());
        let xv = x.values().as_slice();
        let wv = w.values().as_slice();
        let mut stats = PeStats::default();
        for i in row_start..row_start + nrows {
            for j in 0..n {
                let mut acc: i64 = 0;
                let mut busy = 0u64;
                for p in 0..k {
                    let xval = xv[i * k + p];
                    let wval = wv[p * n + j];
                    if xval != 0 && wval != 0 {
                        busy += 1;
                        acc += xval as i64 * wval as i64;
                    }
                }
                out[(i - row_start) * n + j] = acc as f32 * x.scale() * w.scale(j);
                stats.cycles += k as u64;
                stats.busy_cycles += busy;
                stats.active_thread_slots += busy;
            }
        }
        stats
    }

    /// 2-threaded emulation of a row range: the K dimension is split in
    /// half, both halves stream through the shared PE in parallel (Eq. 2/3).
    fn rows_two(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
        row_start: usize,
        nrows: usize,
        out: &mut [f32],
    ) -> PeStats {
        let (k, n) = (x.cols(), w.cols());
        let pe = SmtPe2::new(self.config.policy);
        let xv = x.values().as_slice();
        let wv = w.values().as_slice();
        let half = k.div_ceil(2);
        let mut stats = PeStats::default();
        for i in row_start..row_start + nrows {
            for j in 0..n {
                let mut acc: i64 = 0;
                for s in 0..half {
                    let p0 = s;
                    let p1 = half + s;
                    let t0 = ThreadInput::new(xv[i * k + p0], wv[p0 * n + j]);
                    let t1 = if p1 < k {
                        ThreadInput::new(xv[i * k + p1], wv[p1 * n + j])
                    } else {
                        ThreadInput::new(0, 0)
                    };
                    let r = pe.cycle([t0, t1]);
                    acc += r.total();
                    stats.cycles += 1;
                    if r.stats.busy {
                        stats.busy_cycles += 1;
                    }
                    if r.stats.active_threads > 1 {
                        stats.collision_cycles += 1;
                    }
                    stats.active_thread_slots += r.stats.active_threads as u64;
                    stats.reduced_thread_slots += r.stats.reduced_threads as u64;
                }
                out[(i - row_start) * n + j] = acc as f32 * x.scale() * w.scale(j);
            }
        }
        stats
    }

    /// 4-threaded emulation of a row range: the K dimension is split into
    /// four segments.
    fn rows_four(
        &self,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
        row_start: usize,
        nrows: usize,
        out: &mut [f32],
    ) -> PeStats {
        let (k, n) = (x.cols(), w.cols());
        let pe = SmtPe4::new(self.config.policy);
        let xv = x.values().as_slice();
        let wv = w.values().as_slice();
        let seg = k.div_ceil(4);
        let mut stats = PeStats::default();
        for i in row_start..row_start + nrows {
            for j in 0..n {
                let mut acc: i64 = 0;
                for s in 0..seg {
                    let mut threads = [ThreadInput::new(0, 0); 4];
                    for (t, thread) in threads.iter_mut().enumerate() {
                        let p = t * seg + s;
                        if p < k {
                            *thread = ThreadInput::new(xv[i * k + p], wv[p * n + j]);
                        }
                    }
                    let r = pe.cycle(threads);
                    acc += r.total();
                    stats.cycles += 1;
                    if r.stats.busy {
                        stats.busy_cycles += 1;
                    }
                    if r.stats.active_threads > 1 {
                        stats.collision_cycles += 1;
                    }
                    stats.active_thread_slots += r.stats.active_threads as u64;
                    stats.reduced_thread_slots += r.stats.reduced_threads as u64;
                }
                out[(i - row_start) * n + j] = acc as f32 * x.scale() * w.scale(j);
            }
        }
        stats
    }
}

/// Computes the error-free dequantized reference output of a quantized layer
/// (what the conventional systolic array produces).
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the reduction dimensions
/// differ.
pub fn reference_output(
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
) -> Result<Matrix<f32>, TensorError> {
    nbsmt_quant::quantize::quantized_matmul(x, w)
}

/// [`reference_output`] through the given execution context.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the reduction dimensions
/// differ.
pub fn reference_output_with(
    ctx: &ExecContext,
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
) -> Result<Matrix<f32>, TensorError> {
    nbsmt_quant::quantize::quantized_matmul_with(ctx, x, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};

    /// Builds a random quantized layer for testing.
    fn random_layer(
        seed: u64,
        m: usize,
        k: usize,
        n: usize,
        sparsity: f64,
    ) -> (QuantMatrix, QuantWeightMatrix) {
        let mut synth = TensorSynthesizer::new(seed);
        let x_f = synth.tensor(&SynthesisConfig::activation(1.0, sparsity), &[m, k]);
        let w_f = synth.tensor(&SynthesisConfig::weight(0.3, 0.0), &[k, n]);
        let x = nbsmt_quant::quantize::quantize_activations(
            &Matrix::from_vec(x_f.into_vec(), m, k).unwrap(),
            &nbsmt_quant::scheme::QuantScheme::activation_a8(),
            None,
        );
        let w = nbsmt_quant::quantize::quantize_weights(
            &Matrix::from_vec(w_f.into_vec(), k, n).unwrap(),
            &nbsmt_quant::scheme::QuantScheme::weight_w8(),
        );
        (x, w)
    }

    fn relative_mse(a: &Matrix<f32>, b: &Matrix<f32>) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            num += ((x - y) as f64).powi(2);
            den += (*y as f64).powi(2);
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    #[test]
    fn single_thread_matches_reference_exactly() {
        let (x, w) = random_layer(1, 12, 30, 8, 0.5);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::One,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let out = emu.execute(&x, &w).unwrap();
        let reference = reference_output(&x, &w).unwrap();
        for (a, b) in out.output.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(out.stats.reduced_thread_slots, 0);
    }

    #[test]
    fn two_threads_with_all_narrow_values_is_exact() {
        // When every activation fits in 4 bits there are no lossy reductions.
        let m = 6;
        let k = 20;
        let n = 5;
        let x = QuantMatrix::new(
            Matrix::from_vec((0..m * k).map(|i| (i % 16) as u8).collect(), m, k).unwrap(),
            1.0,
        );
        let w = QuantWeightMatrix::with_uniform_scale(
            Matrix::from_vec(
                (0..k * n).map(|i| ((i % 255) as i16 - 127) as i8).collect(),
                k,
                n,
            )
            .unwrap(),
            1.0,
        );
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let out = emu.execute(&x, &w).unwrap();
        let reference = reference_output(&x, &w).unwrap();
        for (a, b) in out.output.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(out.stats.reduced_thread_slots, 0);
    }

    #[test]
    fn two_threads_error_is_small_relative_to_signal() {
        let (x, w) = random_layer(2, 16, 64, 12, 0.5);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let out = emu.execute(&x, &w).unwrap();
        let reference = reference_output(&x, &w).unwrap();
        let rel = relative_mse(&out.output, &reference);
        assert!(rel < 0.02, "relative MSE {rel} too large for 2T");
        assert!(out.stats.cycles > 0);
        assert!(out.stats.collision_cycles > 0);
    }

    #[test]
    fn four_threads_error_is_larger_than_two_threads() {
        let (x, w) = random_layer(3, 16, 64, 12, 0.4);
        let reference = reference_output(&x, &w).unwrap();
        let rel2 = {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Two,
                policy: SharingPolicy::S_A,
                reorder: false,
            });
            relative_mse(&emu.execute(&x, &w).unwrap().output, &reference)
        };
        let rel4 = {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Four,
                policy: SharingPolicy::S_A,
                reorder: false,
            });
            relative_mse(&emu.execute(&x, &w).unwrap().output, &reference)
        };
        assert!(
            rel4 >= rel2,
            "4T error {rel4} should exceed 2T error {rel2}"
        );
        assert!(rel4 < 0.2, "4T error {rel4} should still be bounded");
    }

    #[test]
    fn sparsity_policy_reduces_error_versus_naive() {
        let (x, w) = random_layer(4, 12, 48, 10, 0.6);
        let reference = reference_output(&x, &w).unwrap();
        let run = |policy: SharingPolicy| {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Two,
                policy,
                reorder: false,
            });
            relative_mse(&emu.execute(&x, &w).unwrap().output, &reference)
        };
        let naive = run(SharingPolicy::NAIVE);
        let s = run(SharingPolicy::S);
        let s_a = run(SharingPolicy::S_A);
        assert!(s <= naive, "S ({s}) should not exceed naive ({naive})");
        assert!(s_a <= s, "S+A ({s_a}) should not exceed S ({s})");
    }

    #[test]
    fn reordering_does_not_increase_error() {
        // Reordering's benefit is statistical: on any single random layer the
        // per-instance MSE can wobble a few percent either way, so the claim
        // is checked as an aggregate over several layers (mirroring how the
        // cross-crate policy-ordering test aggregates over a model).
        let mut mse_plain_total = 0.0f64;
        let mut mse_reorder_total = 0.0f64;
        let mut reduced_plain_total = 0u64;
        let mut reduced_reorder_total = 0u64;
        for seed in 5..10 {
            let (x, w) = random_layer(seed, 20, 64, 10, 0.55);
            let reference = reference_output(&x, &w).unwrap();
            let run = |reorder: bool| {
                let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                    threads: ThreadCount::Two,
                    policy: SharingPolicy::S_A,
                    reorder,
                });
                let out = emu.execute(&x, &w).unwrap();
                (relative_mse(&out.output, &reference), out.stats)
            };
            let (mse_plain, stats_plain) = run(false);
            let (mse_reorder, stats_reorder) = run(true);
            mse_plain_total += mse_plain;
            mse_reorder_total += mse_reorder;
            reduced_plain_total += stats_plain.reduced_thread_slots;
            reduced_reorder_total += stats_reorder.reduced_thread_slots;
        }
        assert!(
            mse_reorder_total <= mse_plain_total * 1.05 + 1e-12,
            "reordering should not increase error: {mse_reorder_total} vs {mse_plain_total}"
        );
        // Reordering trades collisions for singles, so reductions go down in
        // aggregate (the rank-pairing heuristic only promises the expected
        // direction, not every instance).
        assert!(
            reduced_reorder_total <= reduced_plain_total,
            "reordering should reduce reduced slots: {reduced_reorder_total} vs {reduced_plain_total}"
        );
    }

    #[test]
    fn cycle_count_is_half_for_two_threads() {
        let (x, w) = random_layer(6, 8, 40, 6, 0.5);
        let one = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::One,
            policy: SharingPolicy::S_A,
            reorder: false,
        })
        .execute(&x, &w)
        .unwrap();
        let two = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        })
        .execute(&x, &w)
        .unwrap();
        let four = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Four,
            policy: SharingPolicy::S_A,
            reorder: false,
        })
        .execute(&x, &w)
        .unwrap();
        assert_eq!(one.stats.cycles, 8 * 6 * 40);
        assert_eq!(two.stats.cycles, 8 * 6 * 20);
        assert_eq!(four.stats.cycles, 8 * 6 * 10);
    }

    #[test]
    fn utilization_improves_with_thread_count() {
        let (x, w) = random_layer(7, 10, 60, 8, 0.6);
        let util = |threads: ThreadCount| {
            NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: false,
            })
            .execute(&x, &w)
            .unwrap()
            .stats
            .utilization()
        };
        let u1 = util(ThreadCount::One);
        let u2 = util(ThreadCount::Two);
        assert!(u2 > u1, "2T utilization {u2} should exceed 1T {u1}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let x = QuantMatrix::zeros(2, 3, 1.0);
        let w = QuantWeightMatrix::with_uniform_scale(Matrix::zeros(4, 2), 1.0);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig::two_threads());
        assert!(emu.execute(&x, &w).is_err());
    }

    #[test]
    fn fast_path_matches_event_oracle_exactly() {
        // The fast path must reproduce the event walker bit for bit —
        // output matrix AND every PeStats field — across thread counts,
        // policies (S on/off × every width mode), shapes, and sparsity.
        let policies = [
            SharingPolicy::NAIVE,
            SharingPolicy::S,
            SharingPolicy::A,
            SharingPolicy::W,
            SharingPolicy::A_W,
            SharingPolicy::S_A,
            SharingPolicy::S_W,
            SharingPolicy::S_AW,
            SharingPolicy::S_A_W,
        ];
        for (seed, (m, k, n), sparsity) in [
            (11, (5, 17, 9), 0.5),
            (12, (7, 32, 70), 0.0),
            (13, (3, 9, 4), 0.8),
        ] {
            let (x, w) = random_layer(seed, m, k, n, sparsity);
            for threads in [ThreadCount::One, ThreadCount::Two, ThreadCount::Four] {
                for policy in policies {
                    let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                        threads,
                        policy,
                        reorder: false,
                    });
                    let fast = emu.execute(&x, &w).unwrap();
                    let event = emu.execute_event(&x, &w).unwrap();
                    assert_eq!(
                        fast,
                        event,
                        "threads={threads:?} policy={} shape={m}x{k}x{n}",
                        policy.label()
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_event_oracle_with_reorder() {
        let (x, w) = random_layer(14, 10, 24, 8, 0.5);
        for threads in [ThreadCount::Two, ThreadCount::Four] {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: true,
            });
            let fast = emu.execute(&x, &w).unwrap();
            let event = emu.execute_event(&x, &w).unwrap();
            assert_eq!(fast, event, "threads={threads:?}");
        }
    }

    #[test]
    fn fast_path_prepacked_and_backends_are_invariant() {
        use nbsmt_tensor::exec::GemmBackendKind;
        let (x, w) = random_layer(15, 9, 40, 21, 0.4);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let reference = emu.execute(&x, &w).unwrap();
        let pack = PackedRhs::pack(w.rows(), w.cols(), w.values().as_slice());
        for backend in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
            GemmBackendKind::Simd,
            GemmBackendKind::Packed,
        ] {
            for threads in [1usize, 3] {
                let ctx = ExecContext::new(ExecConfig {
                    threads,
                    tile_rows: 4,
                    tile_k: 16,
                    backend,
                });
                let out = emu.execute_with(&ctx, &x, &w).unwrap();
                assert_eq!(out, reference, "backend={backend} threads={threads}");
                let packed = emu
                    .execute_with_prepacked(&ctx, &x, &w, Some(&pack))
                    .unwrap();
                assert_eq!(packed, reference, "prepacked backend={backend}");
            }
        }
        // A mismatched pack is rejected.
        let stale = PackedRhs::pack(2, 2, &[0i8; 4]);
        assert!(emu
            .execute_with_prepacked(&ExecContext::sequential(), &x, &w, Some(&stale))
            .is_err());
    }

    #[test]
    fn odd_reduction_dimension_is_padded_correctly() {
        // K = 7 is not divisible by 2 or 4; padding threads with zeros must
        // not change the result versus the reference beyond reduction error.
        let (x, w) = random_layer(8, 4, 7, 3, 0.0);
        let reference = reference_output(&x, &w).unwrap();
        for threads in [ThreadCount::Two, ThreadCount::Four] {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: false,
            });
            let out = emu.execute(&x, &w).unwrap();
            let rel = relative_mse(&out.output, &reference);
            assert!(rel < 0.05, "threads={threads:?} rel={rel}");
        }
    }
}
