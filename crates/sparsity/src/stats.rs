//! MAC-utilization and data-width statistics.
//!
//! Figure 1 of the paper classifies every MAC operation of a quantized CNN
//! into three buckets: *idle* (at least one operand is zero), *partially
//! utilized* (both operands non-zero but at least one fits in 4 bits), and
//! *fully utilized* (both operands need the full 8 bits). This module
//! computes that breakdown for activation/weight matrix pairs, plus the
//! per-tensor sparsity and data-width histograms used elsewhere.

use serde::{Deserialize, Serialize};

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_quant::reduce::{fits_nibble_signed, fits_nibble_unsigned};

/// Classification of a single MAC operation by the effective data width of
/// its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacClass {
    /// At least one operand is zero: the MAC unit is effectively idle.
    Idle,
    /// Both operands are non-zero and at least one fits in 4 bits
    /// (4b-8b, 8b-4b, or 4b-4b).
    PartiallyUtilized,
    /// Both operands need the full 8 bits.
    FullyUtilized,
}

/// Classifies one activation/weight operand pair.
pub fn classify_mac(x: u8, w: i8) -> MacClass {
    if x == 0 || w == 0 {
        MacClass::Idle
    } else if fits_nibble_unsigned(x) || fits_nibble_signed(w) {
        MacClass::PartiallyUtilized
    } else {
        MacClass::FullyUtilized
    }
}

/// Aggregate MAC-utilization breakdown (the three bars of Fig. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationBreakdown {
    /// Number of idle MAC operations.
    pub idle: u64,
    /// Number of partially utilized MAC operations.
    pub partial: u64,
    /// Number of fully utilized MAC operations.
    pub full: u64,
}

impl UtilizationBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of classified MAC operations.
    pub fn total(&self) -> u64 {
        self.idle + self.partial + self.full
    }

    /// Records one MAC classification.
    pub fn record(&mut self, class: MacClass) {
        match class {
            MacClass::Idle => self.idle += 1,
            MacClass::PartiallyUtilized => self.partial += 1,
            MacClass::FullyUtilized => self.full += 1,
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &UtilizationBreakdown) {
        self.idle += other.idle;
        self.partial += other.partial;
        self.full += other.full;
    }

    /// Fraction of idle MACs.
    pub fn idle_fraction(&self) -> f64 {
        self.fraction(self.idle)
    }

    /// Fraction of partially utilized MACs.
    pub fn partial_fraction(&self) -> f64 {
        self.fraction(self.partial)
    }

    /// Fraction of fully utilized MACs.
    pub fn full_fraction(&self) -> f64 {
        self.fraction(self.full)
    }

    /// Fraction of MACs that keep the unit busy in any capacity
    /// (non-idle), i.e. the "utilization" used by the power model.
    pub fn busy_fraction(&self) -> f64 {
        self.fraction(self.partial + self.full)
    }

    fn fraction(&self, n: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            n as f64 / t as f64
        }
    }
}

/// Computes the MAC-utilization breakdown of a full `X (M×K) · W (K×N)`
/// layer: every output element visits every `(x, w)` pair along `K`.
///
/// For large layers an exact enumeration is `M·K·N` pairs; `col_stride`
/// subsamples output columns (weights) to keep the cost bounded while
/// remaining exact over the sampled columns. `col_stride = 1` is exact.
///
/// # Panics
///
/// Panics when the reduction dimensions of `x` and `w` differ or when
/// `col_stride == 0`.
pub fn layer_utilization(
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
    col_stride: usize,
) -> UtilizationBreakdown {
    assert_eq!(x.cols(), w.rows(), "reduction dimensions must match");
    assert!(col_stride > 0, "column stride must be positive");
    let mut breakdown = UtilizationBreakdown::new();
    let k = x.cols();
    let xv = x.values().as_slice();
    let wv = w.values().as_slice();
    let n = w.cols();
    for i in 0..x.rows() {
        let xrow = &xv[i * k..(i + 1) * k];
        let mut j = 0;
        while j < n {
            for p in 0..k {
                breakdown.record(classify_mac(xrow[p], wv[p * n + j]));
            }
            j += col_stride;
        }
    }
    breakdown
}

/// Per-tensor statistics of a quantized activation matrix: sparsity and
/// effective data-width fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationStats {
    /// Fraction of exact zeros.
    pub sparsity: f64,
    /// Fraction of non-zero values that fit in 4 bits.
    pub narrow: f64,
    /// Fraction of values needing the full 8 bits.
    pub wide: f64,
}

/// Computes [`ActivationStats`] for a quantized activation matrix.
pub fn activation_stats(x: &QuantMatrix) -> ActivationStats {
    let total = x.values().as_slice().len();
    if total == 0 {
        return ActivationStats {
            sparsity: 0.0,
            narrow: 0.0,
            wide: 0.0,
        };
    }
    let mut zeros = 0usize;
    let mut narrow = 0usize;
    for &v in x.values().as_slice() {
        if v == 0 {
            zeros += 1;
        } else if fits_nibble_unsigned(v) {
            narrow += 1;
        }
    }
    let wide = total - zeros - narrow;
    ActivationStats {
        sparsity: zeros as f64 / total as f64,
        narrow: narrow as f64 / total as f64,
        wide: wide as f64 / total as f64,
    }
}

/// Per-column statistics of an activation matrix, used by the reordering
/// pass: the fraction of wide (8-bit) values in each column of `X`.
pub fn per_column_wide_fraction(x: &QuantMatrix) -> Vec<f64> {
    let (rows, cols) = (x.rows(), x.cols());
    let mut wide = vec![0usize; cols];
    let xv = x.values().as_slice();
    for r in 0..rows {
        for c in 0..cols {
            let v = xv[r * cols + c];
            if v != 0 && !fits_nibble_unsigned(v) {
                wide[c] += 1;
            }
        }
    }
    wide.iter()
        .map(|&n| {
            if rows == 0 {
                0.0
            } else {
                n as f64 / rows as f64
            }
        })
        .collect()
}

/// Per-column zero fraction of an activation matrix.
pub fn per_column_zero_fraction(x: &QuantMatrix) -> Vec<f64> {
    let (rows, cols) = (x.rows(), x.cols());
    let mut zeros = vec![0usize; cols];
    let xv = x.values().as_slice();
    for r in 0..rows {
        for c in 0..cols {
            if xv[r * cols + c] == 0 {
                zeros[c] += 1;
            }
        }
    }
    zeros
        .iter()
        .map(|&n| {
            if rows == 0 {
                0.0
            } else {
                n as f64 / rows as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_tensor::tensor::Matrix;

    fn qx(data: Vec<u8>, rows: usize, cols: usize) -> QuantMatrix {
        QuantMatrix::new(Matrix::from_vec(data, rows, cols).unwrap(), 1.0)
    }

    fn qw(data: Vec<i8>, rows: usize, cols: usize) -> QuantWeightMatrix {
        QuantWeightMatrix::with_uniform_scale(Matrix::from_vec(data, rows, cols).unwrap(), 1.0)
    }

    #[test]
    fn classify_mac_covers_all_cases() {
        assert_eq!(classify_mac(0, 100), MacClass::Idle);
        assert_eq!(classify_mac(100, 0), MacClass::Idle);
        assert_eq!(classify_mac(0, 0), MacClass::Idle);
        assert_eq!(classify_mac(5, 100), MacClass::PartiallyUtilized);
        assert_eq!(classify_mac(100, 5), MacClass::PartiallyUtilized);
        assert_eq!(classify_mac(5, 5), MacClass::PartiallyUtilized);
        assert_eq!(classify_mac(100, 100), MacClass::FullyUtilized);
        assert_eq!(classify_mac(16, 8), MacClass::FullyUtilized);
        assert_eq!(classify_mac(15, 8), MacClass::PartiallyUtilized);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = UtilizationBreakdown::new();
        for _ in 0..6 {
            b.record(MacClass::Idle);
        }
        for _ in 0..2 {
            b.record(MacClass::PartiallyUtilized);
        }
        for _ in 0..2 {
            b.record(MacClass::FullyUtilized);
        }
        assert_eq!(b.total(), 10);
        assert!((b.idle_fraction() - 0.6).abs() < 1e-12);
        assert!((b.partial_fraction() - 0.2).abs() < 1e-12);
        assert!((b.full_fraction() - 0.2).abs() < 1e-12);
        assert!((b.busy_fraction() - 0.4).abs() < 1e-12);
        let sum = b.idle_fraction() + b.partial_fraction() + b.full_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = UtilizationBreakdown::new();
        assert_eq!(b.total(), 0);
        assert_eq!(b.idle_fraction(), 0.0);
        assert_eq!(b.busy_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = UtilizationBreakdown {
            idle: 1,
            partial: 2,
            full: 3,
        };
        let b = UtilizationBreakdown {
            idle: 10,
            partial: 20,
            full: 30,
        };
        a.merge(&b);
        assert_eq!(a.idle, 11);
        assert_eq!(a.partial, 22);
        assert_eq!(a.full, 33);
    }

    #[test]
    fn layer_utilization_exact_small_case() {
        // X = [[0, 200], [5, 20]], W = [[100], [3]]
        let x = qx(vec![0, 200, 5, 20], 2, 2);
        let w = qw(vec![100, 3], 2, 1);
        let b = layer_utilization(&x, &w, 1);
        // Pairs: (0,100)=idle, (200,3)=partial, (5,100)=partial, (20,3)=partial
        assert_eq!(b.total(), 4);
        assert_eq!(b.idle, 1);
        assert_eq!(b.partial, 3);
        assert_eq!(b.full, 0);
    }

    #[test]
    fn layer_utilization_column_stride_subsamples() {
        let x = qx(vec![100; 8], 2, 4);
        let w = qw(vec![100; 16], 4, 4);
        let exact = layer_utilization(&x, &w, 1);
        let sampled = layer_utilization(&x, &w, 2);
        assert_eq!(exact.total(), 2 * 4 * 4);
        assert_eq!(sampled.total(), 2 * 4 * 2);
        assert!((exact.full_fraction() - sampled.full_fraction()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reduction dimensions must match")]
    fn layer_utilization_panics_on_mismatch() {
        let x = qx(vec![0; 4], 2, 2);
        let w = qw(vec![0; 3], 3, 1);
        layer_utilization(&x, &w, 1);
    }

    #[test]
    fn activation_stats_partitions() {
        let x = qx(vec![0, 0, 3, 15, 16, 200, 255, 1], 2, 4);
        let s = activation_stats(&x);
        assert!((s.sparsity - 0.25).abs() < 1e-12);
        assert!((s.narrow - 3.0 / 8.0).abs() < 1e-12);
        assert!((s.wide - 3.0 / 8.0).abs() < 1e-12);
        assert!((s.sparsity + s.narrow + s.wide - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_column_statistics() {
        // Column 0: [0, 0] zeros; column 1: [200, 100] wide; column 2: [5, 0] mixed.
        let x = qx(vec![0, 200, 5, 0, 100, 0], 2, 3);
        let wide = per_column_wide_fraction(&x);
        assert_eq!(wide, vec![0.0, 1.0, 0.0]);
        let zeros = per_column_zero_fraction(&x);
        assert_eq!(zeros, vec![1.0, 0.0, 0.5]);
    }
}
