//! Statistical data arrangement (column reordering).
//!
//! Section IV-B of the paper: given the layer's activation matrix `X (M×K)`
//! and weight matrix `W (K×N)`, the K dimension is split between threads.
//! Thread collisions are reduced by reordering the columns of `X` (and the
//! corresponding rows of `W`) so that a column likely to hold wide (8-bit)
//! values is paired with a column likely to hold zeros, and narrow (4-bit)
//! columns are paired together. The order is derived from statistics gathered
//! once on a calibration subset and is static at runtime.

use serde::{Deserialize, Serialize};

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_tensor::tensor::Matrix;

use crate::stats::{per_column_wide_fraction, per_column_zero_fraction};

/// A reordering of the K (reduction) dimension shared by the activation
/// columns and the weight rows of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnOrder {
    /// `order[i]` is the original column index placed at position `i`.
    order: Vec<usize>,
}

impl ColumnOrder {
    /// The identity order over `k` columns.
    pub fn identity(k: usize) -> Self {
        ColumnOrder {
            order: (0..k).collect(),
        }
    }

    /// Creates an order from an explicit permutation.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_permutation(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(i < order.len() && !seen[i], "not a permutation");
            seen[i] = true;
        }
        ColumnOrder { order }
    }

    /// Number of columns covered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The permutation slice (`result[i]` = original index at position `i`).
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// Returns `true` if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.order.iter().enumerate().all(|(i, &o)| i == o)
    }

    /// Applies the order to the columns of an activation matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix column count differs from the order length.
    pub fn apply_to_activation(&self, x: &QuantMatrix) -> QuantMatrix {
        assert_eq!(x.cols(), self.order.len(), "column count mismatch");
        let (rows, cols) = (x.rows(), x.cols());
        let src = x.values().as_slice();
        let mut out = vec![0u8; rows * cols];
        for r in 0..rows {
            for (new_c, &old_c) in self.order.iter().enumerate() {
                out[r * cols + new_c] = src[r * cols + old_c];
            }
        }
        QuantMatrix::new(
            Matrix::from_vec(out, rows, cols).expect("same dims"),
            x.scale(),
        )
    }

    /// Applies the order to the rows of a weight matrix (keeping it aligned
    /// with the reordered activation columns).
    ///
    /// # Panics
    ///
    /// Panics when the matrix row count differs from the order length.
    pub fn apply_to_weights(&self, w: &QuantWeightMatrix) -> QuantWeightMatrix {
        assert_eq!(w.rows(), self.order.len(), "row count mismatch");
        let (rows, cols) = (w.rows(), w.cols());
        let src = w.values().as_slice();
        let mut out = vec![0i8; rows * cols];
        for (new_r, &old_r) in self.order.iter().enumerate() {
            out[new_r * cols..(new_r + 1) * cols]
                .copy_from_slice(&src[old_r * cols..(old_r + 1) * cols]);
        }
        QuantWeightMatrix::new(
            Matrix::from_vec(out, rows, cols).expect("same dims"),
            w.scales().to_vec(),
        )
        .expect("scales preserved")
    }
}

/// Builds a collision-avoiding column order for a 2-threaded split of the K
/// dimension from calibration statistics of the activation matrix.
///
/// The K columns are sorted by "computation demand" (the per-column fraction
/// of wide, 8-bit values, with the zero fraction as a tiebreaker). The most
/// demanding columns are assigned to the first thread half and the least
/// demanding to the second half in opposite rank order, so that at each
/// position `i` the first thread's column (rank `i`) is paired with the
/// second thread's column (rank `K-1-i`): heavy columns meet light columns
/// and narrow columns meet narrow columns, exactly the pairing goal of
/// Fig. 4.
pub fn reorder_for_two_threads(calibration: &QuantMatrix) -> ColumnOrder {
    let k = calibration.cols();
    if k < 2 {
        return ColumnOrder::identity(k);
    }
    let wide = per_column_wide_fraction(calibration);
    let zero = per_column_zero_fraction(calibration);
    // Demand score: wide columns are the most demanding; zero-heavy columns
    // the least.
    let mut ranked: Vec<usize> = (0..k).collect();
    ranked.sort_by(|&a, &b| {
        let da = wide[a] - zero[a];
        let db = wide[b] - zero[b];
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    // First half positions (thread 1): take demanding columns in order.
    // Second half positions (thread 2): take remaining columns so that
    // position i of thread 2 holds the (k-1-i)-th ranked column.
    let half = k / 2;
    let mut order = vec![0usize; k];
    order[..half].copy_from_slice(&ranked[..half]);
    let second_len = k - half;
    for i in 0..second_len {
        order[half + i] = ranked[k - 1 - i];
    }
    ColumnOrder::from_permutation(order)
}

/// Builds a collision-avoiding order for a `threads`-way split: columns are
/// ranked by demand and dealt snake-wise across the thread segments so each
/// position mixes demanding and light columns.
///
/// # Panics
///
/// Panics when `threads == 0`.
pub fn reorder_for_threads(calibration: &QuantMatrix, threads: usize) -> ColumnOrder {
    assert!(threads > 0, "thread count must be positive");
    let k = calibration.cols();
    if threads == 1 || k < threads {
        return ColumnOrder::identity(k);
    }
    if threads == 2 {
        return reorder_for_two_threads(calibration);
    }
    let wide = per_column_wide_fraction(calibration);
    let zero = per_column_zero_fraction(calibration);
    let mut ranked: Vec<usize> = (0..k).collect();
    ranked.sort_by(|&a, &b| {
        let da = wide[a] - zero[a];
        let db = wide[b] - zero[b];
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    // Segment s gets positions [s*seg, (s+1)*seg). Deal ranked columns
    // snake-wise across segments position by position.
    let seg = k / threads;
    let mut segments: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut idx = 0usize;
    let mut pos = 0usize;
    while idx < k {
        let forward = pos.is_multiple_of(2);
        for t in 0..threads {
            if idx >= k {
                break;
            }
            let t = if forward { t } else { threads - 1 - t };
            if segments[t].len() < seg || pos >= seg {
                segments[t].push(ranked[idx]);
                idx += 1;
            }
        }
        pos += 1;
    }
    let mut order = Vec::with_capacity(k);
    for s in segments {
        order.extend(s);
    }
    // Any leftover (when threads does not divide k) keeps ranked order.
    ColumnOrder::from_permutation(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qx(data: Vec<u8>, rows: usize, cols: usize) -> QuantMatrix {
        QuantMatrix::new(Matrix::from_vec(data, rows, cols).unwrap(), 1.0)
    }

    #[test]
    fn identity_round_trip() {
        let x = qx(vec![1, 2, 3, 4, 5, 6], 2, 3);
        let id = ColumnOrder::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.apply_to_activation(&x), x);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_permutation_validates() {
        ColumnOrder::from_permutation(vec![0, 0, 1]);
    }

    #[test]
    fn apply_to_activation_permutes_columns() {
        let x = qx(vec![1, 2, 3, 4, 5, 6], 2, 3);
        let ord = ColumnOrder::from_permutation(vec![2, 0, 1]);
        let y = ord.apply_to_activation(&x);
        assert_eq!(y.values().as_slice(), &[3, 1, 2, 6, 4, 5]);
    }

    #[test]
    fn apply_to_weights_permutes_rows_and_keeps_scales() {
        let w = QuantWeightMatrix::new(
            Matrix::from_vec(vec![1i8, 2, 3, 4, 5, 6], 3, 2).unwrap(),
            vec![0.1, 0.2],
        )
        .unwrap();
        let ord = ColumnOrder::from_permutation(vec![2, 0, 1]);
        let y = ord.apply_to_weights(&w);
        assert_eq!(y.values().as_slice(), &[5, 6, 1, 2, 3, 4]);
        assert_eq!(y.scales(), &[0.1, 0.2]);
    }

    #[test]
    fn reorder_keeps_matmul_result_invariant() {
        // Permuting X columns together with W rows must not change X·W.
        let x = qx(vec![3, 0, 200, 17, 5, 0, 120, 80], 2, 4);
        let w = QuantWeightMatrix::with_uniform_scale(
            Matrix::from_vec(vec![1i8, -2, 3, -4, 5, -6, 7, -8], 4, 2).unwrap(),
            1.0,
        );
        let ord = reorder_for_two_threads(&x);
        let xr = ord.apply_to_activation(&x);
        let wr = ord.apply_to_weights(&w);
        let y0 = nbsmt_quant::quantize::quantized_matmul(&x, &w).unwrap();
        let y1 = nbsmt_quant::quantize::quantized_matmul(&xr, &wr).unwrap();
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn two_thread_reorder_pairs_heavy_with_light() {
        // 4 columns: col0 always wide, col1 always wide, col2 always zero,
        // col3 always narrow.
        let rows = 8;
        let mut data = Vec::new();
        for _ in 0..rows {
            data.extend_from_slice(&[200u8, 150, 0, 3]);
        }
        let x = qx(data, rows, 4);
        let ord = reorder_for_two_threads(&x);
        // Thread 1 owns positions 0..2, thread 2 owns positions 2..4.
        // Pairing: position 0 pairs with position 2, position 1 with 3.
        let o = ord.as_slice();
        let pair_a = (o[0], o[2]);
        let pair_b = (o[1], o[3]);
        // The wide columns (0 and 1) must not be paired together.
        let wides = [0usize, 1usize];
        assert!(
            !(wides.contains(&pair_a.0) && wides.contains(&pair_a.1)),
            "pair {pair_a:?} places two wide columns together"
        );
        assert!(
            !(wides.contains(&pair_b.0) && wides.contains(&pair_b.1)),
            "pair {pair_b:?} places two wide columns together"
        );
    }

    #[test]
    fn reorder_small_or_single_thread_is_identity() {
        let x = qx(vec![1], 1, 1);
        assert!(reorder_for_two_threads(&x).is_identity());
        let x = qx(vec![1, 2, 3, 4], 1, 4);
        assert!(reorder_for_threads(&x, 1).is_identity());
    }

    #[test]
    fn reorder_for_threads_is_a_permutation() {
        let rows = 4;
        let cols = 12;
        let data: Vec<u8> = (0..rows * cols).map(|i| (i * 37 % 256) as u8).collect();
        let x = qx(data, rows, cols);
        for threads in [2usize, 4] {
            let ord = reorder_for_threads(&x, threads);
            assert_eq!(ord.len(), cols);
            let mut seen: Vec<usize> = ord.as_slice().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..cols).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn reorder_zero_threads_panics() {
        let x = qx(vec![1, 2], 1, 2);
        reorder_for_threads(&x, 0);
    }
}
