//! Magnitude-based weight pruning.
//!
//! The paper's 4-threaded evaluation (Fig. 10) prunes ResNet-18 with "simple
//! magnitude-based pruning that iteratively prunes a certain percentage of
//! the model weights followed by retraining". This module provides the
//! pruning operator (global and per-tensor), an iterative schedule, and
//! masks that keep pruned weights at zero across retraining steps.

use serde::{Deserialize, Serialize};

/// A binary pruning mask over a flat weight buffer.
///
/// `true` entries are kept, `false` entries are pruned (forced to zero).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneMask {
    keep: Vec<bool>,
}

impl PruneMask {
    /// Creates a mask that keeps every weight.
    pub fn keep_all(len: usize) -> Self {
        PruneMask {
            keep: vec![true; len],
        }
    }

    /// Number of weights covered by the mask.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// Returns `true` when the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Fraction of weights pruned by the mask.
    pub fn pruned_fraction(&self) -> f64 {
        if self.keep.is_empty() {
            return 0.0;
        }
        let pruned = self.keep.iter().filter(|&&k| !k).count();
        pruned as f64 / self.keep.len() as f64
    }

    /// Whether weight `i` is kept.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn is_kept(&self, i: usize) -> bool {
        self.keep[i]
    }

    /// Applies the mask in place: pruned weights are zeroed.
    ///
    /// # Panics
    ///
    /// Panics when the weight buffer length differs from the mask length.
    pub fn apply(&self, weights: &mut [f32]) {
        assert_eq!(
            weights.len(),
            self.keep.len(),
            "mask/weight length mismatch"
        );
        for (w, &k) in weights.iter_mut().zip(self.keep.iter()) {
            if !k {
                *w = 0.0;
            }
        }
    }

    /// Intersects with another mask (a weight survives only if both keep it).
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn intersect(&mut self, other: &PruneMask) {
        assert_eq!(self.keep.len(), other.keep.len(), "mask length mismatch");
        for (a, &b) in self.keep.iter_mut().zip(other.keep.iter()) {
            *a = *a && b;
        }
    }
}

/// Computes a magnitude-pruning mask that removes the `fraction` smallest-
/// magnitude weights of the buffer.
///
/// `fraction` is clamped to `[0, 1]`. Ties at the threshold are resolved by
/// pruning the earliest-indexed weights first, so the requested fraction is
/// met exactly (up to integer rounding).
pub fn magnitude_mask(weights: &[f32], fraction: f64) -> PruneMask {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = weights.len();
    let target = (n as f64 * fraction).round() as usize;
    if target == 0 || n == 0 {
        return PruneMask::keep_all(n);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        weights[a]
            .abs()
            .partial_cmp(&weights[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut keep = vec![true; n];
    for &idx in order.iter().take(target.min(n)) {
        keep[idx] = false;
    }
    PruneMask { keep }
}

/// Prunes a weight buffer in place to the requested sparsity and returns the
/// mask used.
pub fn prune_to_sparsity(weights: &mut [f32], fraction: f64) -> PruneMask {
    let mask = magnitude_mask(weights, fraction);
    mask.apply(weights);
    mask
}

/// An iterative pruning schedule: the target sparsity is reached over
/// `steps` equal-sized increments, with a retraining callback after every
/// step (mirroring the iterative prune-retrain loop of Han et al. that the
/// paper cites).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneSchedule {
    /// Final fraction of weights to prune.
    pub target_sparsity: f64,
    /// Number of prune/retrain iterations.
    pub steps: usize,
}

impl PruneSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0`.
    pub fn new(target_sparsity: f64, steps: usize) -> Self {
        assert!(steps > 0, "schedule must have at least one step");
        PruneSchedule {
            target_sparsity: target_sparsity.clamp(0.0, 1.0),
            steps,
        }
    }

    /// Sparsity targeted after step `i` (1-based internally; `i` ranges over
    /// `0..steps`).
    pub fn sparsity_at(&self, i: usize) -> f64 {
        let step = (i + 1).min(self.steps) as f64;
        self.target_sparsity * step / self.steps as f64
    }

    /// Runs the schedule over a weight buffer.
    ///
    /// After each pruning increment, `retrain` is called with the mutable
    /// weights and the current mask; it may adjust the surviving weights
    /// (the mask is re-applied afterwards so pruned weights stay zero).
    /// Returns the final mask.
    pub fn run<F>(&self, weights: &mut [f32], mut retrain: F) -> PruneMask
    where
        F: FnMut(&mut [f32], &PruneMask, usize),
    {
        let mut mask = PruneMask::keep_all(weights.len());
        for step in 0..self.steps {
            let step_mask = magnitude_mask(weights, self.sparsity_at(step));
            mask.intersect(&step_mask);
            mask.apply(weights);
            retrain(weights, &mask, step);
            mask.apply(weights);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_mask_removes_smallest() {
        let w = vec![0.1, -0.5, 0.05, 2.0, -0.01];
        let mask = magnitude_mask(&w, 0.4);
        // two smallest magnitudes: 0.01 (idx 4) and 0.05 (idx 2)
        assert!(!mask.is_kept(4));
        assert!(!mask.is_kept(2));
        assert!(mask.is_kept(0));
        assert!(mask.is_kept(1));
        assert!(mask.is_kept(3));
        assert!((mask.pruned_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prune_to_sparsity_zeroes_weights() {
        let mut w = vec![0.1, -0.5, 0.05, 2.0, -0.01];
        let mask = prune_to_sparsity(&mut w, 0.4);
        assert_eq!(w[4], 0.0);
        assert_eq!(w[2], 0.0);
        assert_eq!(w[3], 2.0);
        assert!((mask.pruned_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let w = vec![1.0, 2.0];
        let mask = magnitude_mask(&w, 0.0);
        assert_eq!(mask.pruned_fraction(), 0.0);
        let mask = magnitude_mask(&[], 0.5);
        assert!(mask.is_empty());
    }

    #[test]
    fn full_fraction_prunes_everything() {
        let mut w = vec![1.0, 2.0, 3.0];
        let mask = prune_to_sparsity(&mut w, 1.0);
        assert_eq!(mask.pruned_fraction(), 1.0);
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fraction_is_clamped() {
        let w = vec![1.0, 2.0];
        assert_eq!(magnitude_mask(&w, -1.0).pruned_fraction(), 0.0);
        assert_eq!(magnitude_mask(&w, 2.0).pruned_fraction(), 1.0);
    }

    #[test]
    fn mask_apply_length_mismatch_panics() {
        let mask = PruneMask::keep_all(3);
        let mut w = vec![1.0, 2.0];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mask.apply(&mut w)));
        assert!(r.is_err());
    }

    #[test]
    fn schedule_reaches_target_monotonically() {
        let sched = PruneSchedule::new(0.6, 3);
        assert!((sched.sparsity_at(0) - 0.2).abs() < 1e-12);
        assert!((sched.sparsity_at(1) - 0.4).abs() < 1e-12);
        assert!((sched.sparsity_at(2) - 0.6).abs() < 1e-12);

        let mut w: Vec<f32> = (1..=100).map(|v| v as f32 / 100.0).collect();
        let mut steps_seen = 0;
        let mask = sched.run(&mut w, |weights, mask, step| {
            steps_seen += 1;
            assert_eq!(step + 1, steps_seen);
            // "Retraining" nudges surviving weights; pruned ones stay zero
            // because the mask is re-applied afterwards.
            for (i, v) in weights.iter_mut().enumerate() {
                if mask.is_kept(i) {
                    *v += 0.001;
                }
            }
        });
        assert_eq!(steps_seen, 3);
        assert!((mask.pruned_fraction() - 0.6).abs() < 1e-9);
        let zeros = w.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 60);
    }

    #[test]
    fn schedule_retraining_cannot_resurrect_pruned_weights() {
        let sched = PruneSchedule::new(0.5, 2);
        let mut w: Vec<f32> = (1..=10).map(|v| v as f32).collect();
        sched.run(&mut w, |weights, _mask, _step| {
            // Adversarial retrain callback writes into every slot.
            for v in weights.iter_mut() {
                *v += 100.0;
            }
        });
        let zeros = w.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 5, "pruned weights must remain zero after retraining");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn schedule_zero_steps_panics() {
        PruneSchedule::new(0.5, 0);
    }
}
