//! # nbsmt-sparsity
//!
//! Sparsity analysis, magnitude pruning, and statistical data arrangement for
//! the NB-SMT / SySMT reproduction.
//!
//! * [`stats`] — MAC-utilization classification (Fig. 1's idle / partially
//!   utilized / fully utilized breakdown), activation data-width statistics,
//!   and per-column statistics used by the reordering pass,
//! * [`prune`] — magnitude-based iterative weight pruning (Fig. 10),
//! * [`reorder`] — the per-layer column reordering of §IV-B that pairs
//!   demanding activation columns with light ones to avoid thread collisions.
//!
//! ```
//! use nbsmt_sparsity::stats::{classify_mac, MacClass};
//!
//! assert_eq!(classify_mac(0, 17), MacClass::Idle);
//! assert_eq!(classify_mac(5, 17), MacClass::PartiallyUtilized);
//! assert_eq!(classify_mac(200, 17), MacClass::FullyUtilized);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prune;
pub mod reorder;
pub mod stats;

pub use prune::{magnitude_mask, PruneMask, PruneSchedule};
pub use reorder::{reorder_for_threads, reorder_for_two_threads, ColumnOrder};
pub use stats::{activation_stats, layer_utilization, MacClass, UtilizationBreakdown};
