//! Workspace-wide execution layer: a deterministic thread pool and tiled
//! GEMM backends behind one [`ExecContext`].
//!
//! Every hot loop nest in the reproduction — the dense f32/i32 GEMMs, the
//! error-free quantized reference matmul, the functional NB-SMT emulation,
//! and the cycle-level systolic walker — runs through this module. The
//! context owns two orthogonal decisions:
//!
//! * **Kernel choice** ([`GemmBackend`]): [`Naive`] (the seed scalar loop),
//!   [`Blocked`] (cache-tiled over row and reduction blocks), [`Parallel`]
//!   (row-tile fan-out of the blocked kernel over the pool), [`Simd`]
//!   (runtime-detected AVX2 intrinsics with a portable unrolled fallback),
//!   or [`Packed`] (B packed into column panels + register-blocked
//!   microkernel; see [`PackedRhs`] for the reusable-pack entry point).
//! * **Worker pool** (`threads`): scoped `std::thread` workers over a
//!   deterministic, contiguous partition of the tile space.
//!
//! # Determinism contract
//!
//! Integer results (`i32`, `u8×i8`) are **bit-exact across backends and
//! invariant to thread count**:
//!
//! * Work is partitioned into *row tiles* (or output tiles for the systolic
//!   walker). Each tile's computation is independent and identical to the
//!   sequential kernel's for those rows; per-element accumulation always
//!   visits the reduction dimension in ascending order, with the same
//!   zero-skip rule in every kernel.
//! * Per-tile side results (PE statistics, cycle counts) are returned to the
//!   caller **in tile order** regardless of which worker produced them, and
//!   callers reduce them in that order.
//!
//! For **f32** the same bit-exact guarantee holds for every backend *except*
//! [`Simd`]: its AVX2 kernel keeps several lane accumulators per output
//! element (and fuses multiply-add where FMA is available), which reassociates
//! the reduction. [`Simd`] f32 is the explicitly declared **fast-f32 tier**:
//! per element, results agree with the scalar reference to within
//! `1e-5 × Σₚ|aₚ·bₚ|` (tolerance relative to the ℓ1 magnitude of the
//! reduction, which stays meaningful under cancellation; enforced by
//! `tests/exec_equivalence.rs`), and remain deterministic for a fixed host
//! CPU. All integer kernels — including
//! [`Simd`]'s, whose lane loops preserve the ascending-`k` order per element
//! exactly — stay on the bit-exact tier.
//!
//! Any future backend (wider SIMD, distributed) slots in by implementing
//! [`GemmBackend`] and honouring the same contract.

use serde::{Deserialize, Serialize};

/// Which GEMM kernel an [`ExecContext`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GemmBackendKind {
    /// The seed scalar loop nest (row-major `i, p, j` with zero-skip).
    Naive,
    /// Cache-tiled kernel: row blocks × reduction blocks, ascending.
    Blocked,
    /// Row-tile fan-out of the blocked kernel over the worker pool.
    #[default]
    Parallel,
    /// Runtime-detected AVX2 kernels (bit-exact integers, fast-f32 tier)
    /// with a portable unrolled fallback on other hosts.
    Simd,
    /// Packs B into column panels, then runs a register-blocked microkernel
    /// over the panels. Bit-exact for every element type.
    Packed,
}

impl GemmBackendKind {
    /// Parses a CLI-style backend name (`naive`, `blocked`, `parallel`,
    /// `simd`, `packed`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "naive" => Some(GemmBackendKind::Naive),
            "blocked" => Some(GemmBackendKind::Blocked),
            "parallel" => Some(GemmBackendKind::Parallel),
            "simd" => Some(GemmBackendKind::Simd),
            "packed" => Some(GemmBackendKind::Packed),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            GemmBackendKind::Naive => "naive",
            GemmBackendKind::Blocked => "blocked",
            GemmBackendKind::Parallel => "parallel",
            GemmBackendKind::Simd => "simd",
            GemmBackendKind::Packed => "packed",
        }
    }
}

impl std::fmt::Display for GemmBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of an [`ExecContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Number of worker threads the pool may use (`>= 1`). One means all
    /// work runs inline on the calling thread.
    pub threads: usize,
    /// Rows per work tile: the unit of parallel fan-out and the row-block
    /// size of the [`Blocked`] kernel.
    pub tile_rows: usize,
    /// Reduction-dimension block size of the [`Blocked`] kernel.
    pub tile_k: usize,
    /// Which GEMM kernel to dispatch to.
    pub backend: GemmBackendKind,
}

impl ExecConfig {
    /// The sequential configuration: one thread, the seed scalar kernel.
    /// This reproduces the pre-execution-layer behaviour exactly. (Spelled
    /// out literally — no `..default()` — so the no-context compatibility
    /// wrappers don't pay an `available_parallelism` syscall per call.)
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            tile_rows: 32,
            tile_k: 64,
            backend: GemmBackendKind::Naive,
        }
    }

    /// A parallel configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }
}

impl Default for ExecConfig {
    /// Parallel backend over all available hardware threads, with cache-tile
    /// sizes chosen for 8-bit/32-bit operands on typical L1/L2 sizes.
    fn default() -> Self {
        ExecConfig {
            threads: available_threads(),
            tile_rows: 32,
            tile_k: 64,
            backend: GemmBackendKind::Parallel,
        }
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Handle to the execution layer: a tile-size configuration plus a scoped
/// worker pool with deterministic work partitioning. See the module docs for
/// the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecContext {
    config: ExecConfig,
}

impl ExecContext {
    /// Creates a context from a configuration (thread count and tile sizes
    /// are clamped to at least 1).
    ///
    /// This constructor is deliberately infallible and lenient — it backs
    /// the no-context compatibility wrappers on every hot path. Boundaries
    /// that *accept* an [`ExecConfig`] as input (the replica pool, the
    /// bench run-spec driver) reject invalid values with a typed error via
    /// [`crate::validate::Validate`] before a context is ever built; use
    /// `config.validate()?` there rather than relying on this clamp.
    pub fn new(mut config: ExecConfig) -> Self {
        config.threads = config.threads.max(1);
        config.tile_rows = config.tile_rows.max(1);
        config.tile_k = config.tile_k.max(1);
        ExecContext { config }
    }

    /// The sequential context (1 thread, [`Naive`] kernel): bit-for-bit the
    /// seed behaviour, used by all no-context compatibility wrappers.
    pub fn sequential() -> Self {
        ExecContext::new(ExecConfig::sequential())
    }

    /// A parallel context over all available hardware threads.
    pub fn parallel() -> Self {
        ExecContext::new(ExecConfig::default())
    }

    /// A parallel context with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecContext::new(ExecConfig::with_threads(threads))
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Worker threads the pool may use.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The GEMM backend this context dispatches to.
    pub fn backend(&self) -> &'static dyn GemmBackend {
        match self.config.backend {
            GemmBackendKind::Naive => &Naive,
            GemmBackendKind::Blocked => &Blocked,
            GemmBackendKind::Parallel => &Parallel,
            GemmBackendKind::Simd => &Simd,
            GemmBackendKind::Packed => &Packed,
        }
    }

    /// `C = A × B` on f32 with the configured backend. Slices are row-major;
    /// `out` must hold `m * n` elements and is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_f32(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0.0);
        self.backend().gemm_f32(self, m, k, n, a, b, out);
    }

    /// `C = A × B` on i32 operands accumulating into i64.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_i32(&self, m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i64]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0);
        self.backend().gemm_i32(self, m, k, n, a, b, out);
    }

    /// `C = A × B` on the quantized grid (u8 activations × i8 weights,
    /// i64 accumulators) — the hardware's exact integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_u8i8(&self, m: usize, k: usize, n: usize, a: &[u8], b: &[i8], out: &mut [i64]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0);
        self.backend().gemm_u8i8(self, m, k, n, a, b, out);
    }

    /// Quantized-grid GEMM against a pre-packed right-hand side.
    ///
    /// The caller packs `b` once with [`PackedRhs::pack`] and amortises the
    /// pack across calls (the serve stack caches one pack per layer per
    /// session). Results are bit-identical to [`Self::gemm_u8i8`] on the
    /// original `b` under every backend — the microkernel preserves the
    /// ascending-`k`, zero-skip accumulation order per element — so callers
    /// may switch between the packed and unpacked entry points freely.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with `m` and the pack's dimensions.
    pub fn gemm_u8i8_prepacked(&self, m: usize, a: &[u8], b: &PackedRhs<i8>, out: &mut [i64]) {
        let (k, n) = (b.k(), b.n());
        check_gemm_dims(m, k, n, a.len(), k * n, out.len());
        out.fill(0);
        packed_rows::<U8I8Gemm>(a, b, k, n, 0, m, out);
    }

    /// Maps `f` over tile indices `0..count` using the worker pool and
    /// returns the results **in tile order**. Tiles are partitioned into
    /// contiguous, balanced runs per worker; with one thread (or one tile)
    /// everything runs inline on the calling thread.
    pub fn map_tiles<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.threads().min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [Option<R>] = &mut slots;
            let mut next = 0usize;
            for widx in 0..workers {
                let take = (count - next).div_ceil(workers - widx);
                let first = next;
                next += take;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(first + i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every tile is owned by exactly one worker"))
            .collect()
    }

    /// Splits the row-major buffer `out` (`rows × width`) into row tiles of
    /// `tile_rows`, runs `f(tile_index, row_start, tile_row_count, chunk)`
    /// over the pool, and returns each tile's result **in tile order**.
    ///
    /// Each chunk is the disjoint sub-slice of `out` covering that tile's
    /// rows, so workers write results in place without synchronisation.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != rows * width`.
    pub fn map_row_tiles<T, R, F>(&self, out: &mut [T], rows: usize, width: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, usize, &mut [T]) -> R + Sync,
    {
        assert_eq!(
            out.len(),
            rows * width,
            "map_row_tiles: buffer is {} elements, expected {rows} x {width}",
            out.len()
        );
        if rows == 0 {
            return Vec::new();
        }
        let tile = self.config.tile_rows;
        let tiles = rows.div_ceil(tile);
        let workers = self.threads().min(tiles);
        if workers <= 1 {
            let mut results = Vec::with_capacity(tiles);
            let mut rest = out;
            for t in 0..tiles {
                let row_start = t * tile;
                let nrows = tile.min(rows - row_start);
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(nrows * width);
                rest = tail;
                results.push(f(t, row_start, nrows, chunk));
            }
            return results;
        }
        let mut slots: Vec<Option<R>> = (0..tiles).map(|_| None).collect();
        std::thread::scope(|scope| {
            let f = &f;
            let mut out_rest: &mut [T] = out;
            let mut slot_rest: &mut [Option<R>] = &mut slots;
            let mut next_tile = 0usize;
            for widx in 0..workers {
                let take = (tiles - next_tile).div_ceil(workers - widx);
                let first = next_tile;
                next_tile += take;
                let row_start = first * tile;
                let row_end = (next_tile * tile).min(rows);
                let (chunk, tail) =
                    std::mem::take(&mut out_rest).split_at_mut((row_end - row_start) * width);
                out_rest = tail;
                let (res_chunk, res_tail) = std::mem::take(&mut slot_rest).split_at_mut(take);
                slot_rest = res_tail;
                scope.spawn(move || {
                    let mut chunk = chunk;
                    let mut row = row_start;
                    for (i, slot) in res_chunk.iter_mut().enumerate() {
                        let nrows = tile.min(rows - row);
                        let (cur, rest) = std::mem::take(&mut chunk).split_at_mut(nrows * width);
                        chunk = rest;
                        *slot = Some(f(first + i, row, nrows, cur));
                        row += nrows;
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every tile is owned by exactly one worker"))
            .collect()
    }

    /// Like [`Self::map_row_tiles`] but discards per-tile results.
    pub fn for_each_row_tile<T, F>(&self, out: &mut [T], rows: usize, width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, usize, &mut [T]) + Sync,
    {
        let _ = self.map_row_tiles(out, rows, width, |t, rs, nr, chunk| f(t, rs, nr, chunk));
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::parallel()
    }
}

fn check_gemm_dims(m: usize, k: usize, n: usize, a: usize, b: usize, out: usize) {
    assert_eq!(a, m * k, "gemm: lhs is {a} elements, expected {m} x {k}");
    assert_eq!(b, k * n, "gemm: rhs is {b} elements, expected {k} x {n}");
    assert_eq!(
        out,
        m * n,
        "gemm: out is {out} elements, expected {m} x {n}"
    );
}

/// A GEMM kernel family usable through an [`ExecContext`].
///
/// Implementations must honour the determinism contract: for identical
/// inputs the output must be bit-identical to [`Naive`]'s, for every thread
/// count. The supplied context carries the worker pool and tile sizes.
// A GEMM signature is irreducibly (dims, lhs, rhs, out) + context.
#[allow(clippy::too_many_arguments)]
pub trait GemmBackend: Sync {
    /// The backend's canonical name.
    fn name(&self) -> &'static str;

    /// f32 GEMM; `out` arrives zero-initialised.
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    );

    /// i32 GEMM with i64 accumulation; `out` arrives zero-initialised.
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    );

    /// Quantized-grid GEMM (u8 × i8 → i64); `out` arrives zero-initialised.
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    );
}

/// Element-type triple shared by the generic kernels, so each backend is
/// written once and stamped out for f32, i32, and the quantized u8×i8 grid.
trait GemmElems {
    /// Left operand element.
    type Lhs: Copy + Send + Sync;
    /// Right operand element.
    type Rhs: Copy + Send + Sync;
    /// Accumulator element. `Default` is the additive zero for every
    /// instantiation (`0.0f32`, `0i64`), which the register-blocked
    /// microkernel relies on to seed its accumulator block.
    type Acc: Copy + Send + Default;

    /// The zero-skip rule every kernel applies identically (part of the
    /// bit-exactness contract: skipping `0 × b` must match the seed loop).
    fn is_zero(a: Self::Lhs) -> bool;
    /// One multiply-accumulate.
    fn mac(acc: &mut Self::Acc, a: Self::Lhs, b: Self::Rhs);
}

struct F32Gemm;
impl GemmElems for F32Gemm {
    type Lhs = f32;
    type Rhs = f32;
    type Acc = f32;
    fn is_zero(a: f32) -> bool {
        a == 0.0
    }
    fn mac(acc: &mut f32, a: f32, b: f32) {
        *acc += a * b;
    }
}

struct I32Gemm;
impl GemmElems for I32Gemm {
    type Lhs = i32;
    type Rhs = i32;
    type Acc = i64;
    fn is_zero(a: i32) -> bool {
        a == 0
    }
    fn mac(acc: &mut i64, a: i32, b: i32) {
        *acc += a as i64 * b as i64;
    }
}

struct U8I8Gemm;
impl GemmElems for U8I8Gemm {
    type Lhs = u8;
    type Rhs = i8;
    type Acc = i64;
    fn is_zero(a: u8) -> bool {
        a == 0
    }
    fn mac(acc: &mut i64, a: u8, b: i8) {
        *acc += a as i64 * b as i64;
    }
}

/// The seed scalar kernel over a row range: `i, p (zero-skip), j` with the
/// reduction dimension ascending — the per-element accumulation order every
/// other kernel must reproduce.
fn naive_rows<E: GemmElems>(
    a: &[E::Lhs],
    b: &[E::Rhs],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    out: &mut [E::Acc],
) {
    for i in 0..nrows {
        let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if E::is_zero(aval) {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                E::mac(o, aval, bval);
            }
        }
    }
}

/// The cache-tiled kernel over a row range: ascending reduction blocks of
/// `tile_k`, so the `tile_k × n` panel of `b` stays hot across the block's
/// rows. Per-element accumulation order is identical to [`naive_rows`].
#[allow(clippy::too_many_arguments)]
fn blocked_rows<E: GemmElems>(
    a: &[E::Lhs],
    b: &[E::Rhs],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    tile_k: usize,
    out: &mut [E::Acc],
) {
    let mut kb = 0usize;
    while kb < k {
        let kend = (kb + tile_k).min(k);
        for i in 0..nrows {
            let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &aval) in arow.iter().enumerate().take(kend).skip(kb) {
                if E::is_zero(aval) {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                    E::mac(o, aval, bval);
                }
            }
        }
        kb = kend;
    }
}

fn parallel_gemm<E: GemmElems>(
    ctx: &ExecContext,
    m: usize,
    k: usize,
    n: usize,
    a: &[E::Lhs],
    b: &[E::Rhs],
    out: &mut [E::Acc],
) {
    let tile_k = ctx.config().tile_k;
    if ctx.threads() <= 1 {
        // One worker: skip the row-tile fan-out entirely and run the blocked
        // kernel over the whole row range, so a 1-core host pays no per-tile
        // overhead and re-reads the `tile_k × n` panel of `b` once per block
        // instead of once per tile. Bit-identical by the determinism
        // contract (same per-element accumulation order).
        blocked_rows::<E>(a, b, k, n, 0, m, tile_k, out);
        return;
    }
    ctx.for_each_row_tile(out, m, n, |_tile, row_start, nrows, chunk| {
        blocked_rows::<E>(a, b, k, n, row_start, nrows, tile_k, chunk);
    });
}

/// The seed scalar loop nest, run inline on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl GemmBackend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn gemm_f32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        naive_rows::<F32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_i32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        naive_rows::<I32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_u8i8(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        naive_rows::<U8I8Gemm>(a, b, k, n, 0, m, out);
    }
}

/// The cache-tiled kernel, run inline on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

impl GemmBackend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        blocked_rows::<F32Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        blocked_rows::<I32Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        blocked_rows::<U8I8Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
}

/// Row-tile fan-out of the blocked kernel over the context's worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel;

impl GemmBackend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        parallel_gemm::<F32Gemm>(ctx, m, k, n, a, b, out);
    }
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        parallel_gemm::<I32Gemm>(ctx, m, k, n, a, b, out);
    }
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        parallel_gemm::<U8I8Gemm>(ctx, m, k, n, a, b, out);
    }
}

/// The portable fallback for [`Simd`]: the naive loop order with the `j`
/// loop hand-unrolled 4-wide so the compiler keeps four independent
/// accumulator chains. Per-element accumulation order (ascending `p`,
/// zero-skip) is identical to [`naive_rows`], so this stays on the bit-exact
/// tier for every element type including f32.
fn unrolled_rows<E: GemmElems>(
    a: &[E::Lhs],
    b: &[E::Rhs],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    out: &mut [E::Acc],
) {
    for i in 0..nrows {
        let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if E::is_zero(aval) {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let mut j = 0usize;
            while j + 4 <= n {
                E::mac(&mut orow[j], aval, brow[j]);
                E::mac(&mut orow[j + 1], aval, brow[j + 1]);
                E::mac(&mut orow[j + 2], aval, brow[j + 2]);
                E::mac(&mut orow[j + 3], aval, brow[j + 3]);
                j += 4;
            }
            while j < n {
                E::mac(&mut orow[j], aval, brow[j]);
                j += 1;
            }
        }
    }
}

/// AVX2 kernels behind the [`Simd`] backend. Only compiled on x86_64; the
/// caller checks `is_x86_feature_detected!("avx2")` (and `"fma"` for the
/// fused f32 path) before entering, which is the entire safety obligation of
/// the `unsafe` functions here.
///
/// Integer kernels broadcast one `a` element per reduction step and run a
/// strip of output columns in 64-bit lanes: `_mm256_cvtepi32_epi64` /
/// `_mm256_cvtepi8_epi64` sign-extend the `b` strip, then
/// `_mm256_mul_epi32` (signed low-32 × low-32 → 64) accumulates exactly.
/// Each output element still sees the reduction in ascending-`k` order with
/// the shared zero-skip rule, so integer results are bit-exact with
/// [`naive_rows`]. The f32 kernel instead keeps 4 ymm accumulators per
/// column strip and fuses multiply-add when FMA is available — the declared
/// fast-f32 tier (see the module docs).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::*;

    /// Runs the AVX2 i32 kernel if the host supports it; `false` means the
    /// caller must take the portable fallback.
    pub fn try_gemm_i32(
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: avx2 verified at runtime just above.
        unsafe { gemm_i32(m, k, n, a, b, out) };
        true
    }

    /// Runs the AVX2 u8×i8 kernel if the host supports it.
    pub fn try_gemm_u8i8(
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: avx2 verified at runtime just above.
        unsafe { gemm_u8i8(m, k, n, a, b, out) };
        true
    }

    /// Runs the AVX2 f32 kernel (fused multiply-add where the host has FMA)
    /// if the host supports it.
    pub fn try_gemm_f32(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        if std::arch::is_x86_feature_detected!("fma") {
            // SAFETY: avx2 + fma verified at runtime just above.
            unsafe { gemm_f32_fma(m, k, n, a, b, out) };
        } else {
            // SAFETY: avx2 verified at runtime just above.
            unsafe { gemm_f32(m, k, n, a, b, out) };
        }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemm_i32(m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i64]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0usize;
            while j + 16 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0 {
                        continue;
                    }
                    let va = _mm256_set1_epi64x(aval as i64);
                    let bp = b.as_ptr().add(p * n + j);
                    let b01 = _mm256_loadu_si256(bp as *const __m256i);
                    let b23 = _mm256_loadu_si256(bp.add(8) as *const __m256i);
                    let vb0 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(b01));
                    let vb1 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(b01));
                    let vb2 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(b23));
                    let vb3 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(b23));
                    acc0 = _mm256_add_epi64(acc0, _mm256_mul_epi32(va, vb0));
                    acc1 = _mm256_add_epi64(acc1, _mm256_mul_epi32(va, vb1));
                    acc2 = _mm256_add_epi64(acc2, _mm256_mul_epi32(va, vb2));
                    acc3 = _mm256_add_epi64(acc3, _mm256_mul_epi32(va, vb3));
                }
                let op = orow.as_mut_ptr().add(j);
                _mm256_storeu_si256(op as *mut __m256i, acc0);
                _mm256_storeu_si256(op.add(4) as *mut __m256i, acc1);
                _mm256_storeu_si256(op.add(8) as *mut __m256i, acc2);
                _mm256_storeu_si256(op.add(12) as *mut __m256i, acc3);
                j += 16;
            }
            // Scalar tail: same ascending-k, zero-skip order per element.
            for jj in j..n {
                let mut acc = 0i64;
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0 {
                        continue;
                    }
                    acc += aval as i64 * b[p * n + jj] as i64;
                }
                orow[jj] = acc;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemm_u8i8(m: usize, k: usize, n: usize, a: &[u8], b: &[i8], out: &mut [i64]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0usize;
            while j + 16 <= n {
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0 {
                        continue;
                    }
                    // u8 broadcast is non-negative, so the signed low-32
                    // multiply below is exact for it.
                    let va = _mm256_set1_epi64x(aval as i64);
                    let bytes = _mm_loadu_si128(b.as_ptr().add(p * n + j) as *const __m128i);
                    let vb0 = _mm256_cvtepi8_epi64(bytes);
                    let vb1 = _mm256_cvtepi8_epi64(_mm_srli_si128::<4>(bytes));
                    let vb2 = _mm256_cvtepi8_epi64(_mm_srli_si128::<8>(bytes));
                    let vb3 = _mm256_cvtepi8_epi64(_mm_srli_si128::<12>(bytes));
                    acc0 = _mm256_add_epi64(acc0, _mm256_mul_epi32(va, vb0));
                    acc1 = _mm256_add_epi64(acc1, _mm256_mul_epi32(va, vb1));
                    acc2 = _mm256_add_epi64(acc2, _mm256_mul_epi32(va, vb2));
                    acc3 = _mm256_add_epi64(acc3, _mm256_mul_epi32(va, vb3));
                }
                let op = orow.as_mut_ptr().add(j);
                _mm256_storeu_si256(op as *mut __m256i, acc0);
                _mm256_storeu_si256(op.add(4) as *mut __m256i, acc1);
                _mm256_storeu_si256(op.add(8) as *mut __m256i, acc2);
                _mm256_storeu_si256(op.add(12) as *mut __m256i, acc3);
                j += 16;
            }
            for jj in j..n {
                let mut acc = 0i64;
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0 {
                        continue;
                    }
                    acc += aval as i64 * b[p * n + jj] as i64;
                }
                orow[jj] = acc;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_f32_fma(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        gemm_f32_impl::<true>(m, k, n, a, b, out);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gemm_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        gemm_f32_impl::<false>(m, k, n, a, b, out);
    }

    /// Shared f32 strip kernel; `FMA` selects fused multiply-add. Inlined
    /// into the two `#[target_feature]` wrappers above so each gets compiled
    /// with its own feature set.
    #[inline(always)]
    unsafe fn gemm_f32_impl<const FMA: bool>(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0usize;
            while j + 32 <= n {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(aval);
                    let bp = b.as_ptr().add(p * n + j);
                    let vb0 = _mm256_loadu_ps(bp);
                    let vb1 = _mm256_loadu_ps(bp.add(8));
                    let vb2 = _mm256_loadu_ps(bp.add(16));
                    let vb3 = _mm256_loadu_ps(bp.add(24));
                    if FMA {
                        acc0 = _mm256_fmadd_ps(va, vb0, acc0);
                        acc1 = _mm256_fmadd_ps(va, vb1, acc1);
                        acc2 = _mm256_fmadd_ps(va, vb2, acc2);
                        acc3 = _mm256_fmadd_ps(va, vb3, acc3);
                    } else {
                        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, vb0));
                        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, vb1));
                        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, vb2));
                        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, vb3));
                    }
                }
                let op = orow.as_mut_ptr().add(j);
                _mm256_storeu_ps(op, acc0);
                _mm256_storeu_ps(op.add(8), acc1);
                _mm256_storeu_ps(op.add(16), acc2);
                _mm256_storeu_ps(op.add(24), acc3);
                j += 32;
            }
            for jj in j..n {
                let mut acc = 0.0f32;
                for (p, &aval) in arow.iter().enumerate() {
                    if aval == 0.0 {
                        continue;
                    }
                    acc += aval * b[p * n + jj];
                }
                orow[jj] = acc;
            }
        }
    }
}

/// Runtime-detected SIMD kernels: AVX2 on x86_64 hosts that report it, the
/// portable [`unrolled_rows`] fallback everywhere else. Integer kernels are
/// bit-exact; f32 is the declared fast-f32 tier (module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Simd;

impl GemmBackend for Simd {
    fn name(&self) -> &'static str {
        "simd"
    }
    fn gemm_f32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2::try_gemm_f32(m, k, n, a, b, out) {
            return;
        }
        unrolled_rows::<F32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_i32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2::try_gemm_i32(m, k, n, a, b, out) {
            return;
        }
        unrolled_rows::<I32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_u8i8(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2::try_gemm_u8i8(m, k, n, a, b, out) {
            return;
        }
        unrolled_rows::<U8I8Gemm>(a, b, k, n, 0, m, out);
    }
}

/// Columns per packed panel (the microkernel's register-block width).
pub const PACK_NR: usize = 16;

/// The B matrix of a GEMM re-laid into column panels of [`PACK_NR`]: panel
/// `pj` holds columns `pj*NR .. pj*NR+NR` contiguously per reduction step
/// (`k × NR`, zero-padded in the last panel), so the microkernel streams B
/// linearly regardless of `n`.
///
/// Packing is a pure, deterministic relayout — computing through a pack is
/// bit-identical to the unpacked kernels for every element type. Build one
/// with [`PackedRhs::pack`] and reuse it across calls; the serve stack
/// caches one pack per layer for the lifetime of a serving session.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedRhs<T> {
    k: usize,
    n: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> PackedRhs<T> {
    /// Packs a row-major `k × n` matrix into column panels.
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != k * n`.
    pub fn pack(k: usize, n: usize, b: &[T]) -> Self {
        assert_eq!(
            b.len(),
            k * n,
            "pack: rhs is {} elements, expected {k} x {n}",
            b.len()
        );
        let panels = n.div_ceil(PACK_NR);
        let mut data = vec![T::default(); panels * k * PACK_NR];
        for pj in 0..panels {
            let j0 = pj * PACK_NR;
            let width = PACK_NR.min(n - j0);
            let base = pj * k * PACK_NR;
            for p in 0..k {
                for l in 0..width {
                    data[base + p * PACK_NR + l] = b[p * n + j0 + l];
                }
            }
        }
        PackedRhs { k, n, data }
    }
}

impl<T> PackedRhs<T> {
    /// Reduction dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// The register-blocked microkernel over packed panels: 2 rows × [`PACK_NR`]
/// columns of accumulators live across the whole reduction, B streams
/// linearly from the panel. Each output element still accumulates in
/// ascending-`k` order with the shared zero-skip rule, so results are
/// bit-exact with [`naive_rows`] for every element type including f32.
fn packed_rows<E: GemmElems>(
    a: &[E::Lhs],
    pack: &PackedRhs<E::Rhs>,
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    out: &mut [E::Acc],
) {
    let panels = n.div_ceil(PACK_NR);
    for pj in 0..panels {
        let j0 = pj * PACK_NR;
        let width = PACK_NR.min(n - j0);
        let pdata = &pack.data[pj * k * PACK_NR..(pj + 1) * k * PACK_NR];
        let mut i = 0usize;
        while i + 2 <= nrows {
            let ar0 = &a[(row_start + i) * k..(row_start + i) * k + k];
            let ar1 = &a[(row_start + i + 1) * k..(row_start + i + 1) * k + k];
            let mut acc = [[E::Acc::default(); PACK_NR]; 2];
            for p in 0..k {
                let bl = &pdata[p * PACK_NR..(p + 1) * PACK_NR];
                let a0 = ar0[p];
                let a1 = ar1[p];
                let z0 = E::is_zero(a0);
                let z1 = E::is_zero(a1);
                // One fused pass over the panel row when both rows are live:
                // the common dense case loads each B lane once for two MACs.
                if !z0 && !z1 {
                    for l in 0..PACK_NR {
                        E::mac(&mut acc[0][l], a0, bl[l]);
                        E::mac(&mut acc[1][l], a1, bl[l]);
                    }
                } else if !z0 {
                    for l in 0..PACK_NR {
                        E::mac(&mut acc[0][l], a0, bl[l]);
                    }
                } else if !z1 {
                    for l in 0..PACK_NR {
                        E::mac(&mut acc[1][l], a1, bl[l]);
                    }
                }
            }
            for l in 0..width {
                out[i * n + j0 + l] = acc[0][l];
                out[(i + 1) * n + j0 + l] = acc[1][l];
            }
            i += 2;
        }
        if i < nrows {
            let ar0 = &a[(row_start + i) * k..(row_start + i) * k + k];
            let mut acc = [E::Acc::default(); PACK_NR];
            for p in 0..k {
                let bl = &pdata[p * PACK_NR..(p + 1) * PACK_NR];
                let a0 = ar0[p];
                if !E::is_zero(a0) {
                    for l in 0..PACK_NR {
                        E::mac(&mut acc[l], a0, bl[l]);
                    }
                }
            }
            for l in 0..width {
                out[i * n + j0 + l] = acc[l];
            }
        }
    }
}

/// Packs B per call, then runs the register-blocked microkernel over the
/// panels. Bit-exact for every element type. Callers that reuse the same B
/// across many GEMMs should pack once via [`PackedRhs::pack`] and use
/// [`ExecContext::gemm_u8i8_prepacked`] instead, which skips the per-call
/// pack entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Packed;

impl GemmBackend for Packed {
    fn name(&self) -> &'static str {
        "packed"
    }
    fn gemm_f32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let pack = PackedRhs::pack(k, n, b);
        packed_rows::<F32Gemm>(a, &pack, k, n, 0, m, out);
    }
    fn gemm_i32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        let pack = PackedRhs::pack(k, n, b);
        packed_rows::<I32Gemm>(a, &pack, k, n, 0, m, out);
    }
    fn gemm_u8i8(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        let pack = PackedRhs::pack(k, n, b);
        packed_rows::<U8I8Gemm>(a, &pack, k, n, 0, m, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_i32(m: usize, k: usize, seed: u64) -> Vec<i32> {
        // Small deterministic LCG; values in the i8-ish range with zeros.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..m * k)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) % 255) as i32 - 127;
                if v % 5 == 0 {
                    0
                } else {
                    v
                }
            })
            .collect()
    }

    fn all_contexts() -> Vec<ExecContext> {
        let mut ctxs = vec![ExecContext::sequential()];
        for backend in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
            GemmBackendKind::Simd,
            GemmBackendKind::Packed,
        ] {
            for threads in [1usize, 2, 8] {
                ctxs.push(ExecContext::new(ExecConfig {
                    threads,
                    tile_rows: 3,
                    tile_k: 7,
                    backend,
                }));
            }
        }
        ctxs
    }

    #[test]
    fn backend_kind_parse_round_trips() {
        for kind in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
            GemmBackendKind::Simd,
            GemmBackendKind::Packed,
        ] {
            assert_eq!(GemmBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            GemmBackendKind::parse("NAIVE"),
            Some(GemmBackendKind::Naive)
        );
        assert_eq!(GemmBackendKind::parse("avx512"), None);
        assert_eq!(GemmBackendKind::default(), GemmBackendKind::Parallel);
    }

    #[test]
    fn i32_gemm_identical_across_backends_and_threads() {
        let (m, k, n) = (13, 29, 11);
        let a = sample_i32(m, k, 1);
        let b = sample_i32(k, n, 2);
        let mut reference = vec![0_i64; m * n];
        ExecContext::sequential().gemm_i32(m, k, n, &a, &b, &mut reference);
        for ctx in all_contexts() {
            let mut out = vec![0_i64; m * n];
            ctx.gemm_i32(m, k, n, &a, &b, &mut out);
            assert_eq!(out, reference, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn f32_gemm_bit_exact_across_backends_and_threads() {
        let (m, k, n) = (9, 33, 7);
        let a: Vec<f32> = sample_i32(m, k, 3)
            .iter()
            .map(|&v| v as f32 * 0.37)
            .collect();
        let b: Vec<f32> = sample_i32(k, n, 4)
            .iter()
            .map(|&v| v as f32 * 0.11)
            .collect();
        let mut reference = vec![0.0_f32; m * n];
        ExecContext::sequential().gemm_f32(m, k, n, &a, &b, &mut reference);
        let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        for ctx in all_contexts() {
            // Simd f32 is the declared fast-f32 tier (reassociated lanes),
            // covered by its own tolerance test below; every other backend
            // stays bit-exact.
            if ctx.config().backend == GemmBackendKind::Simd {
                continue;
            }
            let mut out = vec![0.0_f32; m * n];
            ctx.gemm_f32(m, k, n, &a, &b, &mut out);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, ref_bits, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn simd_f32_stays_within_declared_tolerance() {
        // Shapes chosen to exercise the 32-wide strip and the scalar tail.
        for (m, k, n) in [(9, 33, 7), (4, 17, 40), (3, 64, 37)] {
            let a: Vec<f32> = sample_i32(m, k, 3)
                .iter()
                .map(|&v| v as f32 * 0.37)
                .collect();
            let b: Vec<f32> = sample_i32(k, n, 4)
                .iter()
                .map(|&v| v as f32 * 0.11)
                .collect();
            let mut reference = vec![0.0_f32; m * n];
            ExecContext::sequential().gemm_f32(m, k, n, &a, &b, &mut reference);
            let ctx = ExecContext::new(ExecConfig {
                backend: GemmBackendKind::Simd,
                ..ExecConfig::sequential()
            });
            let mut out = vec![0.0_f32; m * n];
            ctx.gemm_f32(m, k, n, &a, &b, &mut out);
            for (idx, (&got, &want)) in out.iter().zip(reference.iter()).enumerate() {
                // Declared fast-f32 tier: 1e-5 relative to the l1 magnitude
                // of the reduction (robust under cancellation).
                let (i, j) = (idx / n, idx % n);
                let scale: f32 = (0..k).map(|p| (a[i * k + p] * b[p * n + j]).abs()).sum();
                let tol = 1e-5_f32 * scale.max(1.0);
                assert!(
                    (got - want).abs() <= tol,
                    "element {idx}: {got} vs {want} ({m}x{k}x{n})"
                );
            }
        }
    }

    #[test]
    fn prepacked_u8i8_matches_unpacked() {
        let (m, k, n) = (7, 23, 19);
        let a: Vec<u8> = sample_i32(m, k, 9)
            .iter()
            .map(|&v| v.unsigned_abs() as u8)
            .collect();
        let b: Vec<i8> = sample_i32(k, n, 10).iter().map(|&v| v as i8).collect();
        let mut reference = vec![0_i64; m * n];
        ExecContext::sequential().gemm_u8i8(m, k, n, &a, &b, &mut reference);
        let pack = PackedRhs::pack(k, n, &b);
        assert_eq!((pack.k(), pack.n()), (k, n));
        for ctx in all_contexts() {
            let mut out = vec![0_i64; m * n];
            ctx.gemm_u8i8_prepacked(m, &a, &pack, &mut out);
            assert_eq!(out, reference, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn u8i8_gemm_identical_across_backends_and_threads() {
        let (m, k, n) = (6, 40, 5);
        let a: Vec<u8> = sample_i32(m, k, 5)
            .iter()
            .map(|&v| v.unsigned_abs() as u8)
            .collect();
        let b: Vec<i8> = sample_i32(k, n, 6).iter().map(|&v| v as i8).collect();
        let mut reference = vec![0_i64; m * n];
        ExecContext::sequential().gemm_u8i8(m, k, n, &a, &b, &mut reference);
        for ctx in all_contexts() {
            let mut out = vec![0_i64; m * n];
            ctx.gemm_u8i8(m, k, n, &a, &b, &mut out);
            assert_eq!(out, reference, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn map_tiles_preserves_tile_order() {
        for threads in [1usize, 2, 3, 8] {
            let ctx = ExecContext::with_threads(threads);
            let results = ctx.map_tiles(17, |t| t * t);
            assert_eq!(results, (0..17).map(|t| t * t).collect::<Vec<_>>());
        }
        assert!(ExecContext::parallel().map_tiles(0, |t| t).is_empty());
    }

    #[test]
    fn map_row_tiles_covers_every_row_once() {
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::new(ExecConfig {
                threads,
                tile_rows: 4,
                ..ExecConfig::default()
            });
            let (rows, width) = (11usize, 3usize);
            let mut out = vec![0_u32; rows * width];
            let tiles = ctx.map_row_tiles(&mut out, rows, width, |t, row_start, nrows, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (row_start * width + i) as u32 + 1;
                }
                (t, row_start, nrows)
            });
            // Every element written exactly once, in its global position.
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u32 + 1);
            }
            // Tile descriptors arrive in order and cover 0..rows.
            assert_eq!(tiles.len(), 3);
            assert_eq!(tiles[0], (0, 0, 4));
            assert_eq!(tiles[1], (1, 4, 4));
            assert_eq!(tiles[2], (2, 8, 3));
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let ctx = ExecContext::parallel();
        let mut out: Vec<i64> = Vec::new();
        ctx.gemm_i32(0, 5, 3, &[], &[0; 15], &mut out);
        let mut out = vec![7_i64; 4];
        // k = 0: output must be all zeros.
        ctx.gemm_i32(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "gemm: lhs")]
    fn mismatched_lengths_panic() {
        let ctx = ExecContext::sequential();
        let mut out = vec![0_i64; 4];
        ctx.gemm_i32(2, 3, 2, &[1; 5], &[1; 6], &mut out);
    }

    #[test]
    fn config_clamps_to_valid_values() {
        let ctx = ExecContext::new(ExecConfig {
            threads: 0,
            tile_rows: 0,
            tile_k: 0,
            backend: GemmBackendKind::Parallel,
        });
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.config().tile_rows, 1);
        assert_eq!(ctx.config().tile_k, 1);
        assert!(available_threads() >= 1);
    }
}
