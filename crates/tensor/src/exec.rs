//! Workspace-wide execution layer: a deterministic thread pool and tiled
//! GEMM backends behind one [`ExecContext`].
//!
//! Every hot loop nest in the reproduction — the dense f32/i32 GEMMs, the
//! error-free quantized reference matmul, the functional NB-SMT emulation,
//! and the cycle-level systolic walker — runs through this module. The
//! context owns two orthogonal decisions:
//!
//! * **Kernel choice** ([`GemmBackend`]): [`Naive`] (the seed scalar loop),
//!   [`Blocked`] (cache-tiled over row and reduction blocks), or
//!   [`Parallel`] (row-tile fan-out of the blocked kernel over the pool).
//! * **Worker pool** (`threads`): scoped `std::thread` workers over a
//!   deterministic, contiguous partition of the tile space.
//!
//! # Determinism contract
//!
//! Results are **bit-exact across backends and invariant to thread count**:
//!
//! * Work is partitioned into *row tiles* (or output tiles for the systolic
//!   walker). Each tile's computation is independent and identical to the
//!   sequential kernel's for those rows; per-element accumulation always
//!   visits the reduction dimension in ascending order, with the same
//!   zero-skip rule in every kernel, so even f32 results are bit-identical.
//! * Per-tile side results (PE statistics, cycle counts) are returned to the
//!   caller **in tile order** regardless of which worker produced them, and
//!   callers reduce them in that order.
//!
//! Any future backend (SIMD, distributed) slots in by implementing
//! [`GemmBackend`] and honouring the same contract.

use serde::{Deserialize, Serialize};

/// Which GEMM kernel an [`ExecContext`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GemmBackendKind {
    /// The seed scalar loop nest (row-major `i, p, j` with zero-skip).
    Naive,
    /// Cache-tiled kernel: row blocks × reduction blocks, ascending.
    Blocked,
    /// Row-tile fan-out of the blocked kernel over the worker pool.
    #[default]
    Parallel,
}

impl GemmBackendKind {
    /// Parses a CLI-style backend name (`naive`, `blocked`, `parallel`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "naive" => Some(GemmBackendKind::Naive),
            "blocked" => Some(GemmBackendKind::Blocked),
            "parallel" => Some(GemmBackendKind::Parallel),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            GemmBackendKind::Naive => "naive",
            GemmBackendKind::Blocked => "blocked",
            GemmBackendKind::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for GemmBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of an [`ExecContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Number of worker threads the pool may use (`>= 1`). One means all
    /// work runs inline on the calling thread.
    pub threads: usize,
    /// Rows per work tile: the unit of parallel fan-out and the row-block
    /// size of the [`Blocked`] kernel.
    pub tile_rows: usize,
    /// Reduction-dimension block size of the [`Blocked`] kernel.
    pub tile_k: usize,
    /// Which GEMM kernel to dispatch to.
    pub backend: GemmBackendKind,
}

impl ExecConfig {
    /// The sequential configuration: one thread, the seed scalar kernel.
    /// This reproduces the pre-execution-layer behaviour exactly. (Spelled
    /// out literally — no `..default()` — so the no-context compatibility
    /// wrappers don't pay an `available_parallelism` syscall per call.)
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            tile_rows: 32,
            tile_k: 64,
            backend: GemmBackendKind::Naive,
        }
    }

    /// A parallel configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }
}

impl Default for ExecConfig {
    /// Parallel backend over all available hardware threads, with cache-tile
    /// sizes chosen for 8-bit/32-bit operands on typical L1/L2 sizes.
    fn default() -> Self {
        ExecConfig {
            threads: available_threads(),
            tile_rows: 32,
            tile_k: 64,
            backend: GemmBackendKind::Parallel,
        }
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Handle to the execution layer: a tile-size configuration plus a scoped
/// worker pool with deterministic work partitioning. See the module docs for
/// the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecContext {
    config: ExecConfig,
}

impl ExecContext {
    /// Creates a context from a configuration (thread count and tile sizes
    /// are clamped to at least 1).
    ///
    /// This constructor is deliberately infallible and lenient — it backs
    /// the no-context compatibility wrappers on every hot path. Boundaries
    /// that *accept* an [`ExecConfig`] as input (the replica pool, the
    /// bench run-spec driver) reject invalid values with a typed error via
    /// [`crate::validate::Validate`] before a context is ever built; use
    /// `config.validate()?` there rather than relying on this clamp.
    pub fn new(mut config: ExecConfig) -> Self {
        config.threads = config.threads.max(1);
        config.tile_rows = config.tile_rows.max(1);
        config.tile_k = config.tile_k.max(1);
        ExecContext { config }
    }

    /// The sequential context (1 thread, [`Naive`] kernel): bit-for-bit the
    /// seed behaviour, used by all no-context compatibility wrappers.
    pub fn sequential() -> Self {
        ExecContext::new(ExecConfig::sequential())
    }

    /// A parallel context over all available hardware threads.
    pub fn parallel() -> Self {
        ExecContext::new(ExecConfig::default())
    }

    /// A parallel context with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecContext::new(ExecConfig::with_threads(threads))
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Worker threads the pool may use.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The GEMM backend this context dispatches to.
    pub fn backend(&self) -> &'static dyn GemmBackend {
        match self.config.backend {
            GemmBackendKind::Naive => &Naive,
            GemmBackendKind::Blocked => &Blocked,
            GemmBackendKind::Parallel => &Parallel,
        }
    }

    /// `C = A × B` on f32 with the configured backend. Slices are row-major;
    /// `out` must hold `m * n` elements and is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_f32(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0.0);
        self.backend().gemm_f32(self, m, k, n, a, b, out);
    }

    /// `C = A × B` on i32 operands accumulating into i64.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_i32(&self, m: usize, k: usize, n: usize, a: &[i32], b: &[i32], out: &mut [i64]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0);
        self.backend().gemm_i32(self, m, k, n, a, b, out);
    }

    /// `C = A × B` on the quantized grid (u8 activations × i8 weights,
    /// i64 accumulators) — the hardware's exact integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the dimensions.
    pub fn gemm_u8i8(&self, m: usize, k: usize, n: usize, a: &[u8], b: &[i8], out: &mut [i64]) {
        check_gemm_dims(m, k, n, a.len(), b.len(), out.len());
        out.fill(0);
        self.backend().gemm_u8i8(self, m, k, n, a, b, out);
    }

    /// Maps `f` over tile indices `0..count` using the worker pool and
    /// returns the results **in tile order**. Tiles are partitioned into
    /// contiguous, balanced runs per worker; with one thread (or one tile)
    /// everything runs inline on the calling thread.
    pub fn map_tiles<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.threads().min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [Option<R>] = &mut slots;
            let mut next = 0usize;
            for widx in 0..workers {
                let take = (count - next).div_ceil(workers - widx);
                let first = next;
                next += take;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(first + i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every tile is owned by exactly one worker"))
            .collect()
    }

    /// Splits the row-major buffer `out` (`rows × width`) into row tiles of
    /// `tile_rows`, runs `f(tile_index, row_start, tile_row_count, chunk)`
    /// over the pool, and returns each tile's result **in tile order**.
    ///
    /// Each chunk is the disjoint sub-slice of `out` covering that tile's
    /// rows, so workers write results in place without synchronisation.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != rows * width`.
    pub fn map_row_tiles<T, R, F>(&self, out: &mut [T], rows: usize, width: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, usize, &mut [T]) -> R + Sync,
    {
        assert_eq!(
            out.len(),
            rows * width,
            "map_row_tiles: buffer is {} elements, expected {rows} x {width}",
            out.len()
        );
        if rows == 0 {
            return Vec::new();
        }
        let tile = self.config.tile_rows;
        let tiles = rows.div_ceil(tile);
        let workers = self.threads().min(tiles);
        if workers <= 1 {
            let mut results = Vec::with_capacity(tiles);
            let mut rest = out;
            for t in 0..tiles {
                let row_start = t * tile;
                let nrows = tile.min(rows - row_start);
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(nrows * width);
                rest = tail;
                results.push(f(t, row_start, nrows, chunk));
            }
            return results;
        }
        let mut slots: Vec<Option<R>> = (0..tiles).map(|_| None).collect();
        std::thread::scope(|scope| {
            let f = &f;
            let mut out_rest: &mut [T] = out;
            let mut slot_rest: &mut [Option<R>] = &mut slots;
            let mut next_tile = 0usize;
            for widx in 0..workers {
                let take = (tiles - next_tile).div_ceil(workers - widx);
                let first = next_tile;
                next_tile += take;
                let row_start = first * tile;
                let row_end = (next_tile * tile).min(rows);
                let (chunk, tail) =
                    std::mem::take(&mut out_rest).split_at_mut((row_end - row_start) * width);
                out_rest = tail;
                let (res_chunk, res_tail) = std::mem::take(&mut slot_rest).split_at_mut(take);
                slot_rest = res_tail;
                scope.spawn(move || {
                    let mut chunk = chunk;
                    let mut row = row_start;
                    for (i, slot) in res_chunk.iter_mut().enumerate() {
                        let nrows = tile.min(rows - row);
                        let (cur, rest) = std::mem::take(&mut chunk).split_at_mut(nrows * width);
                        chunk = rest;
                        *slot = Some(f(first + i, row, nrows, cur));
                        row += nrows;
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every tile is owned by exactly one worker"))
            .collect()
    }

    /// Like [`Self::map_row_tiles`] but discards per-tile results.
    pub fn for_each_row_tile<T, F>(&self, out: &mut [T], rows: usize, width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, usize, &mut [T]) + Sync,
    {
        let _ = self.map_row_tiles(out, rows, width, |t, rs, nr, chunk| f(t, rs, nr, chunk));
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::parallel()
    }
}

fn check_gemm_dims(m: usize, k: usize, n: usize, a: usize, b: usize, out: usize) {
    assert_eq!(a, m * k, "gemm: lhs is {a} elements, expected {m} x {k}");
    assert_eq!(b, k * n, "gemm: rhs is {b} elements, expected {k} x {n}");
    assert_eq!(
        out,
        m * n,
        "gemm: out is {out} elements, expected {m} x {n}"
    );
}

/// A GEMM kernel family usable through an [`ExecContext`].
///
/// Implementations must honour the determinism contract: for identical
/// inputs the output must be bit-identical to [`Naive`]'s, for every thread
/// count. The supplied context carries the worker pool and tile sizes.
// A GEMM signature is irreducibly (dims, lhs, rhs, out) + context.
#[allow(clippy::too_many_arguments)]
pub trait GemmBackend: Sync {
    /// The backend's canonical name.
    fn name(&self) -> &'static str;

    /// f32 GEMM; `out` arrives zero-initialised.
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    );

    /// i32 GEMM with i64 accumulation; `out` arrives zero-initialised.
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    );

    /// Quantized-grid GEMM (u8 × i8 → i64); `out` arrives zero-initialised.
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    );
}

/// Element-type triple shared by the generic kernels, so each backend is
/// written once and stamped out for f32, i32, and the quantized u8×i8 grid.
trait GemmElems {
    /// Left operand element.
    type Lhs: Copy + Send + Sync;
    /// Right operand element.
    type Rhs: Copy + Send + Sync;
    /// Accumulator element.
    type Acc: Copy + Send;

    /// The zero-skip rule every kernel applies identically (part of the
    /// bit-exactness contract: skipping `0 × b` must match the seed loop).
    fn is_zero(a: Self::Lhs) -> bool;
    /// One multiply-accumulate.
    fn mac(acc: &mut Self::Acc, a: Self::Lhs, b: Self::Rhs);
}

struct F32Gemm;
impl GemmElems for F32Gemm {
    type Lhs = f32;
    type Rhs = f32;
    type Acc = f32;
    fn is_zero(a: f32) -> bool {
        a == 0.0
    }
    fn mac(acc: &mut f32, a: f32, b: f32) {
        *acc += a * b;
    }
}

struct I32Gemm;
impl GemmElems for I32Gemm {
    type Lhs = i32;
    type Rhs = i32;
    type Acc = i64;
    fn is_zero(a: i32) -> bool {
        a == 0
    }
    fn mac(acc: &mut i64, a: i32, b: i32) {
        *acc += a as i64 * b as i64;
    }
}

struct U8I8Gemm;
impl GemmElems for U8I8Gemm {
    type Lhs = u8;
    type Rhs = i8;
    type Acc = i64;
    fn is_zero(a: u8) -> bool {
        a == 0
    }
    fn mac(acc: &mut i64, a: u8, b: i8) {
        *acc += a as i64 * b as i64;
    }
}

/// The seed scalar kernel over a row range: `i, p (zero-skip), j` with the
/// reduction dimension ascending — the per-element accumulation order every
/// other kernel must reproduce.
fn naive_rows<E: GemmElems>(
    a: &[E::Lhs],
    b: &[E::Rhs],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    out: &mut [E::Acc],
) {
    for i in 0..nrows {
        let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if E::is_zero(aval) {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                E::mac(o, aval, bval);
            }
        }
    }
}

/// The cache-tiled kernel over a row range: ascending reduction blocks of
/// `tile_k`, so the `tile_k × n` panel of `b` stays hot across the block's
/// rows. Per-element accumulation order is identical to [`naive_rows`].
#[allow(clippy::too_many_arguments)]
fn blocked_rows<E: GemmElems>(
    a: &[E::Lhs],
    b: &[E::Rhs],
    k: usize,
    n: usize,
    row_start: usize,
    nrows: usize,
    tile_k: usize,
    out: &mut [E::Acc],
) {
    let mut kb = 0usize;
    while kb < k {
        let kend = (kb + tile_k).min(k);
        for i in 0..nrows {
            let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &aval) in arow.iter().enumerate().take(kend).skip(kb) {
                if E::is_zero(aval) {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                    E::mac(o, aval, bval);
                }
            }
        }
        kb = kend;
    }
}

fn parallel_gemm<E: GemmElems>(
    ctx: &ExecContext,
    m: usize,
    k: usize,
    n: usize,
    a: &[E::Lhs],
    b: &[E::Rhs],
    out: &mut [E::Acc],
) {
    let tile_k = ctx.config().tile_k;
    ctx.for_each_row_tile(out, m, n, |_tile, row_start, nrows, chunk| {
        blocked_rows::<E>(a, b, k, n, row_start, nrows, tile_k, chunk);
    });
}

/// The seed scalar loop nest, run inline on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl GemmBackend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn gemm_f32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        naive_rows::<F32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_i32(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        naive_rows::<I32Gemm>(a, b, k, n, 0, m, out);
    }
    fn gemm_u8i8(
        &self,
        _: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        naive_rows::<U8I8Gemm>(a, b, k, n, 0, m, out);
    }
}

/// The cache-tiled kernel, run inline on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

impl GemmBackend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        blocked_rows::<F32Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        blocked_rows::<I32Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        blocked_rows::<U8I8Gemm>(a, b, k, n, 0, m, ctx.config().tile_k, out);
    }
}

/// Row-tile fan-out of the blocked kernel over the context's worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel;

impl GemmBackend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }
    fn gemm_f32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        parallel_gemm::<F32Gemm>(ctx, m, k, n, a, b, out);
    }
    fn gemm_i32(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[i32],
        b: &[i32],
        out: &mut [i64],
    ) {
        parallel_gemm::<I32Gemm>(ctx, m, k, n, a, b, out);
    }
    fn gemm_u8i8(
        &self,
        ctx: &ExecContext,
        m: usize,
        k: usize,
        n: usize,
        a: &[u8],
        b: &[i8],
        out: &mut [i64],
    ) {
        parallel_gemm::<U8I8Gemm>(ctx, m, k, n, a, b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_i32(m: usize, k: usize, seed: u64) -> Vec<i32> {
        // Small deterministic LCG; values in the i8-ish range with zeros.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..m * k)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) % 255) as i32 - 127;
                if v % 5 == 0 {
                    0
                } else {
                    v
                }
            })
            .collect()
    }

    fn all_contexts() -> Vec<ExecContext> {
        let mut ctxs = vec![ExecContext::sequential()];
        for backend in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
        ] {
            for threads in [1usize, 2, 8] {
                ctxs.push(ExecContext::new(ExecConfig {
                    threads,
                    tile_rows: 3,
                    tile_k: 7,
                    backend,
                }));
            }
        }
        ctxs
    }

    #[test]
    fn backend_kind_parse_round_trips() {
        for kind in [
            GemmBackendKind::Naive,
            GemmBackendKind::Blocked,
            GemmBackendKind::Parallel,
        ] {
            assert_eq!(GemmBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            GemmBackendKind::parse("NAIVE"),
            Some(GemmBackendKind::Naive)
        );
        assert_eq!(GemmBackendKind::parse("simd"), None);
        assert_eq!(GemmBackendKind::default(), GemmBackendKind::Parallel);
    }

    #[test]
    fn i32_gemm_identical_across_backends_and_threads() {
        let (m, k, n) = (13, 29, 11);
        let a = sample_i32(m, k, 1);
        let b = sample_i32(k, n, 2);
        let mut reference = vec![0_i64; m * n];
        ExecContext::sequential().gemm_i32(m, k, n, &a, &b, &mut reference);
        for ctx in all_contexts() {
            let mut out = vec![0_i64; m * n];
            ctx.gemm_i32(m, k, n, &a, &b, &mut out);
            assert_eq!(out, reference, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn f32_gemm_bit_exact_across_backends_and_threads() {
        let (m, k, n) = (9, 33, 7);
        let a: Vec<f32> = sample_i32(m, k, 3)
            .iter()
            .map(|&v| v as f32 * 0.37)
            .collect();
        let b: Vec<f32> = sample_i32(k, n, 4)
            .iter()
            .map(|&v| v as f32 * 0.11)
            .collect();
        let mut reference = vec![0.0_f32; m * n];
        ExecContext::sequential().gemm_f32(m, k, n, &a, &b, &mut reference);
        let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        for ctx in all_contexts() {
            let mut out = vec![0.0_f32; m * n];
            ctx.gemm_f32(m, k, n, &a, &b, &mut out);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, ref_bits, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn u8i8_gemm_identical_across_backends_and_threads() {
        let (m, k, n) = (6, 40, 5);
        let a: Vec<u8> = sample_i32(m, k, 5)
            .iter()
            .map(|&v| v.unsigned_abs() as u8)
            .collect();
        let b: Vec<i8> = sample_i32(k, n, 6).iter().map(|&v| v as i8).collect();
        let mut reference = vec![0_i64; m * n];
        ExecContext::sequential().gemm_u8i8(m, k, n, &a, &b, &mut reference);
        for ctx in all_contexts() {
            let mut out = vec![0_i64; m * n];
            ctx.gemm_u8i8(m, k, n, &a, &b, &mut out);
            assert_eq!(out, reference, "ctx {:?}", ctx.config());
        }
    }

    #[test]
    fn map_tiles_preserves_tile_order() {
        for threads in [1usize, 2, 3, 8] {
            let ctx = ExecContext::with_threads(threads);
            let results = ctx.map_tiles(17, |t| t * t);
            assert_eq!(results, (0..17).map(|t| t * t).collect::<Vec<_>>());
        }
        assert!(ExecContext::parallel().map_tiles(0, |t| t).is_empty());
    }

    #[test]
    fn map_row_tiles_covers_every_row_once() {
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::new(ExecConfig {
                threads,
                tile_rows: 4,
                ..ExecConfig::default()
            });
            let (rows, width) = (11usize, 3usize);
            let mut out = vec![0_u32; rows * width];
            let tiles = ctx.map_row_tiles(&mut out, rows, width, |t, row_start, nrows, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (row_start * width + i) as u32 + 1;
                }
                (t, row_start, nrows)
            });
            // Every element written exactly once, in its global position.
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u32 + 1);
            }
            // Tile descriptors arrive in order and cover 0..rows.
            assert_eq!(tiles.len(), 3);
            assert_eq!(tiles[0], (0, 0, 4));
            assert_eq!(tiles[1], (1, 4, 4));
            assert_eq!(tiles[2], (2, 8, 3));
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let ctx = ExecContext::parallel();
        let mut out: Vec<i64> = Vec::new();
        ctx.gemm_i32(0, 5, 3, &[], &[0; 15], &mut out);
        let mut out = vec![7_i64; 4];
        // k = 0: output must be all zeros.
        ctx.gemm_i32(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "gemm: lhs")]
    fn mismatched_lengths_panic() {
        let ctx = ExecContext::sequential();
        let mut out = vec![0_i64; 4];
        ctx.gemm_i32(2, 3, 2, &[1; 5], &[1; 6], &mut out);
    }

    #[test]
    fn config_clamps_to_valid_values() {
        let ctx = ExecContext::new(ExecConfig {
            threads: 0,
            tile_rows: 0,
            tile_k: 0,
            backend: GemmBackendKind::Parallel,
        });
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.config().tile_rows, 1);
        assert_eq!(ctx.config().tile_k, 1);
        assert!(available_threads() >= 1);
    }
}
