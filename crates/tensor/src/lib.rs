//! # nbsmt-tensor
//!
//! Dense tensor substrate for the NB-SMT / SySMT reproduction.
//!
//! The paper evaluates NB-SMT on convolutional neural networks executed as
//! matrix multiplications (convolutions are lowered with im2col, exactly as
//! cuDNN / the paper's PyTorch-based simulator do).  This crate provides the
//! minimal but complete numerical substrate for that pipeline:
//!
//! * [`shape::Shape`] — N-dimensional shapes with row-major strides,
//! * [`tensor::Tensor`] — a dense, owned, row-major tensor generic over the
//!   element type (used with `f32`, `i32`, `u8`, `i8` throughout the
//!   workspace),
//! * [`ops`] — matrix multiplication, transposition, element-wise helpers and
//!   the im2col / col2im lowering used to express convolutions as GEMMs,
//! * [`exec`] — the workspace-wide execution layer: [`exec::ExecContext`]
//!   (deterministic worker pool + tile configuration) and the
//!   [`exec::GemmBackend`] kernels (`Naive`, `Blocked`, `Parallel`,
//!   runtime-detected `Simd`, panel-packing `Packed`) every hot loop nest
//!   runs through,
//! * [`random`] — reproducible synthesis of bell-shaped (Gaussian / Laplace)
//!   value distributions with controllable sparsity, used to calibrate the
//!   synthetic model zoo (see `nbsmt-workloads`),
//! * [`validate`] — the workspace-wide [`validate::Validate`] trait: every
//!   config struct in the system (here, `nbsmt-serve`, `nbsmt-bench`)
//!   rejects bad values with a typed error through this one seam,
//! * [`error::TensorError`] — the error type shared by all fallible
//!   operations.
//!
//! ```
//! use nbsmt_tensor::tensor::Tensor;
//! use nbsmt_tensor::ops;
//!
//! # fn main() -> Result<(), nbsmt_tensor::error::TensorError> {
//! let a = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![5.0_f32, 6.0, 7.0, 8.0], &[2, 2])?;
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide. The single sanctioned exception is the
// AVX2 kernel module in `exec`, which opts back in with a scoped
// `#[allow(unsafe_code)]`: every unsafe function there is `#[target_feature]`
// and only reachable through safe wrappers that verify the feature with
// `is_x86_feature_detected!` first.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod ops;
pub mod random;
pub mod shape;
pub mod tensor;
pub mod validate;

pub use error::TensorError;
pub use exec::{ExecConfig, ExecContext, GemmBackend, GemmBackendKind, PackedRhs};
pub use shape::Shape;
pub use tensor::Tensor;
pub use validate::{ExecConfigError, Validate};
