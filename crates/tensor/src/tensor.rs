//! Dense, owned, row-major tensor.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::TensorError;
use crate::shape::Shape;

/// A dense, owned, row-major tensor generic over the element type.
///
/// [`Tensor`] is the common currency of the workspace: floating point tensors
/// (`Tensor<f32>`) carry model weights and activations, integer tensors
/// (`Tensor<u8>`, `Tensor<i8>`, `Tensor<i32>`) carry quantized values and
/// accumulator results.
///
/// ```
/// use nbsmt_tensor::tensor::Tensor;
///
/// # fn main() -> Result<(), nbsmt_tensor::error::TensorError> {
/// let t = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(*t.get(&[1, 2])?, 6.0);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Clone + Default> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![T::default(); shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(dims: &[usize], value: T) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }
}

impl<T> Tensor<T> {
    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<T>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the underlying buffer as a slice (row-major order).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns the underlying buffer as a mutable slice (row-major order).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns a reference to the element at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<&T, TensorError> {
        let off = self.shape.offset(index)?;
        Ok(&self.data[off])
    }

    /// Returns a mutable reference to the element at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn get_mut(&mut self, index: &[usize]) -> Result<&mut T, TensorError> {
        let off = self.shape.offset(index)?;
        Ok(&mut self.data[off])
    }

    /// Reinterprets the tensor with a new shape holding the same number of
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape(self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: new_shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data,
        })
    }

    /// Applies `f` to every element, producing a new tensor of the same shape.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates mutably over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }
}

impl Tensor<f32> {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element. Returns `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Fraction of elements exactly equal to zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Mean squared error against another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when shapes differ.
    pub fn mse(&self, other: &Tensor<f32>) -> Result<f64, TensorError> {
        if !self.shape.same_dims(&other.shape) {
            return Err(TensorError::DimensionMismatch {
                op: "mse",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum();
        Ok(sum / self.data.len() as f64)
    }
}

impl<T: fmt::Display> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview = self.data.len().min(8);
        for (i, v) in self.data.iter().take(preview).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > preview {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

/// A 2-D matrix view helper over `Tensor<T>` with convenience accessors.
///
/// Matrices are the unit of work fed to the systolic array: the activation
/// matrix `X (M×K)` and the weight matrix `W (K×N)` of each layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a matrix of zeros (default values).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the buffer length does
    /// not equal `rows * cols`.
    pub fn from_vec(data: Vec<T>, rows: usize, cols: usize) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeDataMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major data slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major data slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows` or `c >= cols`.
    pub fn at(&self, r: usize, c: usize) -> &T {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows` or `c >= cols`.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Returns the `r`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

impl<T: Clone> Matrix<T> {
    /// Returns the `c`-th column as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c].clone())
            .collect()
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> Matrix<T> {
        let mut data = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                data.push(self.data[r * self.cols + c].clone());
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }
}

impl<T> From<Matrix<T>> for Tensor<T> {
    fn from(m: Matrix<T>) -> Self {
        Tensor {
            shape: Shape::new(&[m.rows, m.cols]),
            data: m.data,
        }
    }
}

impl<T> TryFrom<Tensor<T>> for Matrix<T> {
    type Error = TensorError;

    fn try_from(t: Tensor<T>) -> Result<Self, Self::Error> {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matrix from tensor",
                expected: 2,
                actual: t.rank(),
            });
        }
        let rows = t.shape.dim(0);
        let cols = t.shape.dim(1);
        Ok(Matrix {
            rows,
            cols,
            data: t.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let t: Tensor<f32> = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert!(t.iter().all(|&v| v == 0.0));
        let t = Tensor::full(&[2, 2], 7i32);
        assert!(t.iter().all(|&v| v == 7));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1, 2, 3], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1, 2, 3, 4], &[2, 2]).is_ok());
    }

    #[test]
    fn get_and_get_mut() {
        let mut t = Tensor::from_vec((0..6).collect::<Vec<i32>>(), &[2, 3]).unwrap();
        assert_eq!(*t.get(&[1, 1]).unwrap(), 4);
        *t.get_mut(&[1, 1]).unwrap() = 42;
        assert_eq!(*t.get(&[1, 1]).unwrap(), 42);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).collect::<Vec<i32>>(), &[3, 4]).unwrap();
        let r = t.clone().reshape(&[2, 6]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_vec(vec![1.5_f32, 2.5], &[2]).unwrap();
        let u: Tensor<i32> = t.map(|&v| v as i32);
        assert_eq!(u.as_slice(), &[1, 2]);
    }

    #[test]
    fn float_statistics() {
        let t = Tensor::from_vec(vec![0.0_f32, 2.0, 0.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 4.0);
        assert!((t.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mse_matches_manual_computation() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0_f32, 4.0, 6.0], &[3]).unwrap();
        let mse = a.mse(&b).unwrap();
        assert!((mse - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-9);
        let c = Tensor::from_vec(vec![1.0_f32], &[1]).unwrap();
        assert!(a.mse(&c).is_err());
    }

    #[test]
    fn matrix_accessors() {
        let m = Matrix::from_vec(vec![1, 2, 3, 4, 5, 6], 2, 3).unwrap();
        assert_eq!(*m.at(1, 2), 6);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.column(1), vec![2, 5]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(*t.at(2, 1), 6);
    }

    #[test]
    fn matrix_tensor_conversions() {
        let m = Matrix::from_vec(vec![1, 2, 3, 4], 2, 2).unwrap();
        let t: Tensor<i32> = m.clone().into();
        assert_eq!(t.shape().dims(), &[2, 2]);
        let back: Matrix<i32> = t.try_into().unwrap();
        assert_eq!(back, m);
        let t3: Tensor<i32> = Tensor::zeros(&[1, 2, 3]);
        assert!(Matrix::try_from(t3).is_err());
    }

    #[test]
    fn display_preview_is_bounded() {
        let t = Tensor::from_vec((0..100).collect::<Vec<i32>>(), &[100]).unwrap();
        let s = t.to_string();
        assert!(s.contains('…'));
    }
}
