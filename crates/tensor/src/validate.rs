//! Workspace-wide configuration validation.
//!
//! Every layer of the system takes a plain-data configuration struct
//! (execution contexts, batching policies, replica pools, run specs). The
//! [`Validate`] trait is the one seam through which all of them reject bad
//! values: a typed error naming exactly which field is invalid and why,
//! instead of an `assert!`, a silent clamp, or a `process::exit` deep in a
//! binary. The trait lives at the bottom of the crate DAG so every crate —
//! `nbsmt-serve`'s scheduler configs, `nbsmt-bench`'s run specs — can
//! implement it for its own config types with its own error enum.

use crate::exec::ExecConfig;

/// A configuration that can check itself for validity.
///
/// Implementations must be *pure*: no clamping, no mutation, no I/O — they
/// either accept the value exactly as given or return a typed error naming
/// the offending field. Consumers (servers, simulators, CLI drivers) call
/// `validate()` at their boundary and propagate the error, so the same bad
/// config is rejected identically no matter which entry point receives it.
pub trait Validate {
    /// The typed error describing the first invalid field found.
    type Error: std::error::Error + Send + Sync + 'static;

    /// Checks the configuration, returning `Ok(())` iff every field is
    /// valid.
    ///
    /// # Errors
    ///
    /// Returns the implementation's typed error for the first invalid field.
    fn validate(&self) -> Result<(), Self::Error>;
}

/// Why an [`ExecConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecConfigError {
    /// `threads` is zero — the pool needs at least the calling thread.
    ZeroThreads,
    /// `tile_rows` is zero — tiles must cover at least one row.
    ZeroTileRows,
    /// `tile_k` is zero — reduction blocks must cover at least one element.
    ZeroTileK,
}

impl std::fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecConfigError::ZeroThreads => {
                write!(f, "exec config: threads must be at least 1")
            }
            ExecConfigError::ZeroTileRows => {
                write!(f, "exec config: tile_rows must be at least 1")
            }
            ExecConfigError::ZeroTileK => {
                write!(f, "exec config: tile_k must be at least 1")
            }
        }
    }
}

impl std::error::Error for ExecConfigError {}

impl Validate for ExecConfig {
    type Error = ExecConfigError;

    fn validate(&self) -> Result<(), ExecConfigError> {
        if self.threads == 0 {
            return Err(ExecConfigError::ZeroThreads);
        }
        if self.tile_rows == 0 {
            return Err(ExecConfigError::ZeroTileRows);
        }
        if self.tile_k == 0 {
            return Err(ExecConfigError::ZeroTileK);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GemmBackendKind;

    fn valid() -> ExecConfig {
        ExecConfig {
            threads: 2,
            tile_rows: 32,
            tile_k: 64,
            backend: GemmBackendKind::Parallel,
        }
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(valid().validate(), Ok(()));
        assert_eq!(ExecConfig::sequential().validate(), Ok(()));
        assert_eq!(ExecConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_fields_are_rejected_with_the_matching_error() {
        let mut cfg = valid();
        cfg.threads = 0;
        assert_eq!(cfg.validate(), Err(ExecConfigError::ZeroThreads));
        let mut cfg = valid();
        cfg.tile_rows = 0;
        assert_eq!(cfg.validate(), Err(ExecConfigError::ZeroTileRows));
        let mut cfg = valid();
        cfg.tile_k = 0;
        assert_eq!(cfg.validate(), Err(ExecConfigError::ZeroTileK));
    }

    #[test]
    fn errors_display_the_field() {
        assert!(ExecConfigError::ZeroThreads.to_string().contains("threads"));
        assert!(ExecConfigError::ZeroTileRows
            .to_string()
            .contains("tile_rows"));
        assert!(ExecConfigError::ZeroTileK.to_string().contains("tile_k"));
    }
}
