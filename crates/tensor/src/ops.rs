//! Matrix multiplication, transposition, element-wise helpers, and the
//! im2col lowering used to express convolutions as GEMMs.

use crate::error::TensorError;
use crate::exec::ExecContext;
use crate::tensor::{Matrix, Tensor};

/// Parameters of a 2-D convolution lowered with im2col.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conv2dParams {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Square kernel size (kernel_h == kernel_w).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
    /// Number of groups (1 for dense convolutions, `in_channels` for
    /// depthwise convolutions).
    pub groups: usize,
}

impl Conv2dParams {
    /// Creates dense (groups = 1) convolution parameters.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dParams {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Creates depthwise convolution parameters (`groups == in_channels`).
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dParams {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
        }
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        (input + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1
    }

    /// Number of multiply-accumulate operations for an input of spatial size
    /// `h × w` (per image).
    pub fn mac_ops(&self, h: usize, w: usize) -> u64 {
        let oh = self.output_size(h) as u64;
        let ow = self.output_size(w) as u64;
        let k = (self.kernel * self.kernel) as u64;
        let cin_per_group = (self.in_channels / self.groups) as u64;
        oh * ow * self.out_channels as u64 * k * cin_per_group
    }
}

/// Multiplies two f32 matrices stored as rank-2 tensors: `C = A × B`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either tensor is not rank 2 and
/// [`TensorError::DimensionMismatch`] if the inner dimensions differ.
pub fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, TensorError> {
    matmul_with(&ExecContext::sequential(), a, b)
}

/// Multiplies two f32 matrices through the given execution context: the
/// backend and thread count come from `ctx`, and the result is bit-identical
/// to [`matmul`] for every configuration (see the `exec` determinism
/// contract).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either tensor is not rank 2 and
/// [`TensorError::DimensionMismatch`] if the inner dimensions differ.
pub fn matmul_with(
    ctx: &ExecContext,
    a: &Tensor<f32>,
    b: &Tensor<f32>,
) -> Result<Tensor<f32>, TensorError> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::DimensionMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0_f32; m * n];
    ctx.gemm_f32(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Multiplies two integer matrices, accumulating in `i64`: `C = A × B`.
///
/// This mirrors the exact integer arithmetic performed by the systolic-array
/// PEs, and is used as the error-free reference for NB-SMT emulation.
pub fn matmul_i32(a: &Matrix<i32>, b: &Matrix<i32>) -> Result<Matrix<i64>, TensorError> {
    matmul_i32_with(&ExecContext::sequential(), a, b)
}

/// Integer matmul through the given execution context; identical output to
/// [`matmul_i32`] for every backend and thread count.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] if the inner dimensions
/// differ.
pub fn matmul_i32_with(
    ctx: &ExecContext,
    a: &Matrix<i32>,
    b: &Matrix<i32>,
) -> Result<Matrix<i64>, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::DimensionMismatch {
            op: "matmul_i32",
            lhs: vec![a.rows(), a.cols()],
            rhs: vec![b.rows(), b.cols()],
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0_i64; m * n];
    ctx.gemm_i32(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Matrix::from_vec(out, m, n)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
pub fn transpose(t: &Tensor<f32>) -> Result<Tensor<f32>, TensorError> {
    check_rank2("transpose", t)?;
    let (r, c) = (t.shape().dim(0), t.shape().dim(1));
    let src = t.as_slice();
    let mut out = vec![0.0_f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = src[i * c + j];
        }
    }
    Tensor::from_vec(out, &[c, r])
}

/// Element-wise addition of two tensors with identical shapes.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when shapes differ.
pub fn add(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, TensorError> {
    if !a.shape().same_dims(b.shape()) {
        return Err(TensorError::DimensionMismatch {
            op: "add",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| x + y)
        .collect();
    Tensor::from_vec(data, a.shape().dims())
}

/// Element-wise scaling of a tensor by a scalar.
pub fn scale(a: &Tensor<f32>, s: f32) -> Tensor<f32> {
    a.map(|&v| v * s)
}

/// Lowers a 4-D activation tensor `[N, C, H, W]` into the im2col matrix of
/// shape `[N * OH * OW, C/groups * K * K]` for the given convolution
/// parameters and group index.
///
/// Each row of the result corresponds to one sliding window of one image;
/// multiplying it by the reshaped filter matrix yields the convolution
/// output, exactly the mapping the paper uses to feed convolutions to the
/// output-stationary systolic array.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `input` is not rank 4, or
/// [`TensorError::InvalidArgument`] for inconsistent channel/group settings.
pub fn im2col(
    input: &Tensor<f32>,
    params: &Conv2dParams,
    group: usize,
) -> Result<Tensor<f32>, TensorError> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: input.rank(),
        });
    }
    if params.groups == 0 || !params.in_channels.is_multiple_of(params.groups) {
        return Err(TensorError::InvalidArgument(format!(
            "groups ({}) must divide in_channels ({})",
            params.groups, params.in_channels
        )));
    }
    if group >= params.groups {
        return Err(TensorError::InvalidArgument(format!(
            "group index {} out of range for {} groups",
            group, params.groups
        )));
    }
    if params.stride == 0 || params.kernel == 0 {
        return Err(TensorError::InvalidArgument(
            "kernel size and stride must be non-zero".to_string(),
        ));
    }
    let dims = input.shape().dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if c != params.in_channels {
        return Err(TensorError::InvalidArgument(format!(
            "input channels {} do not match conv params {}",
            c, params.in_channels
        )));
    }
    let cg = params.in_channels / params.groups;
    let c0 = group * cg;
    let oh = params.output_size(h);
    let ow = params.output_size(w);
    let k = params.kernel;
    let rows = n * oh * ow;
    let cols = cg * k * k;
    let src = input.as_slice();
    let mut out = vec![0.0_f32; rows * cols];
    // One patch buffer for the whole lowering, reused for every output row
    // (dense and grouped paths alike) instead of filling `out` element by
    // element: each kernel row becomes at most one contiguous copy plus
    // zero-fill for the padded margins. Coordinates are in the padded frame,
    // valid range is [padding, padding + dim).
    let mut patch = vec![0.0_f32; cols];
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (img * oh + oy) * ow + ox;
                let x0 = ox * params.stride;
                for ci in 0..cg {
                    let cin = c0 + ci;
                    for ky in 0..k {
                        let iy = oy * params.stride + ky;
                        let dst = &mut patch[(ci * k + ky) * k..(ci * k + ky + 1) * k];
                        if iy < params.padding || iy - params.padding >= h {
                            dst.fill(0.0);
                            continue;
                        }
                        let sy = iy - params.padding;
                        let src_row = &src[((img * c + cin) * h + sy) * w..][..w];
                        // kx is valid iff padding <= x0 + kx < w + padding.
                        let kx_lo = params.padding.saturating_sub(x0).min(k);
                        let kx_hi = (w + params.padding).saturating_sub(x0).min(k).max(kx_lo);
                        dst[..kx_lo].fill(0.0);
                        if kx_lo < kx_hi {
                            let sx = x0 + kx_lo - params.padding;
                            dst[kx_lo..kx_hi].copy_from_slice(&src_row[sx..sx + (kx_hi - kx_lo)]);
                        }
                        dst[kx_hi..].fill(0.0);
                    }
                }
                out[row * cols..(row + 1) * cols].copy_from_slice(&patch);
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Reshapes a filter tensor `[OC, C/groups, K, K]` into the GEMM weight
/// matrix `[C/groups * K * K, OC/groups]` for the given group.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `weights` is not rank 4, or
/// [`TensorError::InvalidArgument`] for inconsistent group settings.
pub fn filters_to_matrix(
    weights: &Tensor<f32>,
    params: &Conv2dParams,
    group: usize,
) -> Result<Tensor<f32>, TensorError> {
    if weights.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "filters_to_matrix",
            expected: 4,
            actual: weights.rank(),
        });
    }
    if params.groups == 0
        || !params.out_channels.is_multiple_of(params.groups)
        || !params.in_channels.is_multiple_of(params.groups)
    {
        return Err(TensorError::InvalidArgument(
            "groups must divide both in_channels and out_channels".to_string(),
        ));
    }
    if group >= params.groups {
        return Err(TensorError::InvalidArgument(format!(
            "group index {} out of range for {} groups",
            group, params.groups
        )));
    }
    let dims = weights.shape().dims();
    let (oc, cg, kh, kw) = (dims[0], dims[1], dims[2], dims[3]);
    if kh != params.kernel || kw != params.kernel || oc != params.out_channels {
        return Err(TensorError::InvalidArgument(format!(
            "weight shape {dims:?} does not match conv params"
        )));
    }
    let ocg = oc / params.groups;
    let o0 = group * ocg;
    let rows = cg * kh * kw;
    let src = weights.as_slice();
    let mut out = vec![0.0_f32; rows * ocg];
    for o in 0..ocg {
        let filt = o0 + o;
        for ci in 0..cg {
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = (ci * kh + ky) * kw + kx;
                    out[row * ocg + o] = src[((filt * cg + ci) * kh + ky) * kw + kx];
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, ocg])
}

/// Folds an im2col GEMM output of shape `[N*OH*OW, OC_group]` back into a
/// 4-D activation tensor slice `[N, OC_group, OH, OW]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeDataMismatch`] when the matrix does not hold
/// `n * oh * ow * oc` elements.
pub fn col2im(
    gemm_out: &Tensor<f32>,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
) -> Result<Tensor<f32>, TensorError> {
    let expected = n * oh * ow * oc;
    if gemm_out.numel() != expected {
        return Err(TensorError::ShapeDataMismatch {
            expected,
            actual: gemm_out.numel(),
        });
    }
    let src = gemm_out.as_slice();
    let mut out = vec![0.0_f32; expected];
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (img * oh + oy) * ow + ox;
                for o in 0..oc {
                    out[((img * oc + o) * oh + oy) * ow + ox] = src[row * oc + o];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

fn check_rank2(op: &'static str, t: &Tensor<f32>) -> Result<(), TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let id = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let c = matmul(&a, &id).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(matmul(&a, &b).is_err());
        let v = t(&[1.0, 2.0], &[2]);
        assert!(matmul(&v, &a).is_err());
    }

    #[test]
    fn matmul_i32_matches_float() {
        let a = Matrix::from_vec(vec![1, -2, 3, 4, 0, -6], 2, 3).unwrap();
        let b = Matrix::from_vec(vec![7, 8, -9, 10, 11, -12], 3, 2).unwrap();
        let c = matmul_i32(&a, &b).unwrap();
        // manual: row0 = [1*7-2*-9+3*11, 1*8-2*10+3*-12] = [7+18+33, 8-20-36]
        assert_eq!(c.as_slice(), &[58, -48, 28 - 66, 32 + 72]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt.as_slice(), a.as_slice());
    }

    #[test]
    fn add_and_scale() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2.0, 4.0]);
        let c = t(&[1.0], &[1]);
        assert!(add(&a, &c).is_err());
    }

    #[test]
    fn conv_params_output_and_macs() {
        let p = Conv2dParams::new(3, 64, 3, 1, 1);
        assert_eq!(p.output_size(224), 224);
        assert_eq!(p.mac_ops(4, 4), 16 * 64 * 9 * 3);
        let dw = Conv2dParams::depthwise(32, 3, 2, 1);
        assert_eq!(dw.groups, 32);
        assert_eq!(dw.output_size(8), 4);
        assert_eq!(dw.mac_ops(8, 8), 4 * 4 * 32 * 9);
    }

    /// Exhaustive check of im2col + GEMM against a direct convolution on a
    /// tiny example.
    #[test]
    fn im2col_gemm_matches_direct_convolution() {
        // 1 image, 2 channels, 4x4 input; 3 filters, 3x3 kernel, stride 1, pad 1.
        let params = Conv2dParams::new(2, 3, 3, 1, 1);
        let n = 1;
        let h = 4;
        let w = 4;
        let input_data: Vec<f32> = (0..(n * 2 * h * w))
            .map(|v| (v as f32) * 0.5 - 3.0)
            .collect();
        let input = Tensor::from_vec(input_data, &[n, 2, h, w]).unwrap();
        let weight_data: Vec<f32> = (0..(3 * 2 * 3 * 3))
            .map(|v| ((v % 7) as f32) - 3.0)
            .collect();
        let weights = Tensor::from_vec(weight_data, &[3, 2, 3, 3]).unwrap();

        // Direct convolution.
        let oh = params.output_size(h);
        let ow = params.output_size(w);
        let mut direct = vec![0.0_f32; n * 3 * oh * ow];
        for o in 0..3 {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ci in 0..2 {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let iy = oy as isize + ky as isize - 1;
                                let ix = ox as isize + kx as isize - 1;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    let xval = input.as_slice()
                                        [((ci) * h + iy as usize) * w + ix as usize];
                                    let wval = weights.as_slice()[((o * 2 + ci) * 3 + ky) * 3 + kx];
                                    acc += xval * wval;
                                }
                            }
                        }
                    }
                    direct[(o * oh + oy) * ow + ox] = acc;
                }
            }
        }

        // im2col path.
        let x = im2col(&input, &params, 0).unwrap();
        let wmat = filters_to_matrix(&weights, &params, 0).unwrap();
        let y = matmul(&x, &wmat).unwrap();
        let folded = col2im(&y, n, 3, oh, ow).unwrap();
        for (a, b) in folded.as_slice().iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn im2col_depthwise_groups() {
        let params = Conv2dParams::depthwise(2, 3, 1, 1);
        let input = Tensor::from_vec((0..32).map(|v| v as f32).collect(), &[1, 2, 4, 4]).unwrap();
        let g0 = im2col(&input, &params, 0).unwrap();
        let g1 = im2col(&input, &params, 1).unwrap();
        assert_eq!(g0.shape().dims(), &[16, 9]);
        assert_eq!(g1.shape().dims(), &[16, 9]);
        // Group 1 sees channel 1 values (which are >= 16), group 0 sees channel 0.
        assert!(g0.as_slice().iter().all(|&v| v < 16.0));
        assert!(g1.as_slice().iter().any(|&v| v >= 16.0));
        assert!(im2col(&input, &params, 2).is_err());
    }

    #[test]
    fn im2col_rejects_bad_input() {
        let params = Conv2dParams::new(2, 3, 3, 1, 1);
        let bad_rank = Tensor::from_vec(vec![0.0; 8], &[2, 4]).unwrap();
        assert!(im2col(&bad_rank, &params, 0).is_err());
        let wrong_channels = Tensor::from_vec(vec![0.0; 3 * 16], &[1, 3, 4, 4]).unwrap();
        assert!(im2col(&wrong_channels, &params, 0).is_err());
        let zero_stride = Conv2dParams {
            stride: 0,
            ..params
        };
        let ok_input = Tensor::from_vec(vec![0.0; 2 * 16], &[1, 2, 4, 4]).unwrap();
        assert!(im2col(&ok_input, &zero_stride, 0).is_err());
    }

    #[test]
    fn filters_to_matrix_validates_shape() {
        let params = Conv2dParams::new(2, 3, 3, 1, 1);
        let bad = Tensor::from_vec(vec![0.0; 4], &[2, 2]).unwrap();
        assert!(filters_to_matrix(&bad, &params, 0).is_err());
        let wrong_kernel = Tensor::from_vec(vec![0.0; 3 * 2 * 4], &[3, 2, 2, 2]).unwrap();
        assert!(filters_to_matrix(&wrong_kernel, &params, 0).is_err());
    }

    #[test]
    fn col2im_validates_count() {
        let y = Tensor::from_vec(vec![0.0; 10], &[5, 2]).unwrap();
        assert!(col2im(&y, 1, 2, 2, 2).is_err());
        assert!(col2im(&y, 1, 2, 5, 1).is_ok());
    }
}
