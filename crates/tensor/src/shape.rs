//! N-dimensional shapes with row-major strides.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::TensorError;

/// Shape of a dense, row-major tensor.
///
/// A [`Shape`] owns its dimension sizes and can compute row-major strides,
/// flat offsets for multi-dimensional indices, and the total element count.
///
/// ```
/// use nbsmt_tensor::shape::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    ///
    /// A rank-0 shape holds exactly one element.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.rank()`.
    pub fn dim(&self, dim: usize) -> usize {
        self.dims[dim]
    }

    /// Returns the row-major strides of the shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Computes the flat (row-major) offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank does not
    /// match the shape rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0usize;
        let strides = self.strides();
        for (i, (&idx, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if idx >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            offset += idx * strides[i];
        }
        Ok(offset)
    }

    /// Returns `true` when both shapes describe the same dimension sizes.
    pub fn same_dims(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.dim(1), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::new(&[7]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.numel());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn display_formats_dims() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.to_string(), "[2, 3]");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s2: Shape = (&[1usize, 2][..]).into();
        assert!(s.same_dims(&s2));
    }
}
