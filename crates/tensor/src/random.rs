//! Reproducible synthesis of bell-shaped value distributions.
//!
//! The paper observes that DNN tensors usually follow bell-shaped
//! distributions (Gaussian or Laplace), that post-ReLU activations contain a
//! large fraction of exact zeros, and that many of the remaining values fit
//! in 4 bits. This module synthesizes tensors with those statistics so that
//! the utilization, MSE, and energy experiments exercise the same code paths
//! as the paper's ImageNet-derived tensors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// The value distribution family used for synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueDistribution {
    /// Gaussian with the given mean and standard deviation.
    Gaussian {
        /// Mean of the distribution.
        mean: f32,
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// Laplace with the given location and scale (diversity) parameter.
    Laplace {
        /// Location parameter (the mode).
        loc: f32,
        /// Scale parameter (`b`).
        scale: f32,
    },
}

impl ValueDistribution {
    fn sample(&self, rng: &mut StdRng) -> f32 {
        match *self {
            ValueDistribution::Gaussian { mean, std } => {
                let normal = Normal::new(mean, std.max(1e-9)).expect("valid normal parameters");
                normal.sample(rng)
            }
            ValueDistribution::Laplace { loc, scale } => {
                // Inverse-CDF sampling of the Laplace distribution. `u` can
                // be exactly -0.5 (the range includes its start), which
                // would make the log argument 0 and the sample -inf; the
                // floor clamps that measure-2^-24 tail to a finite extreme.
                let u: f32 = rng.gen_range(-0.5..0.5);
                let tail = (1.0 - 2.0 * u.abs()).max(f32::MIN_POSITIVE);
                loc - scale.max(1e-9) * u.signum() * tail.ln()
            }
        }
    }
}

/// Configuration of a synthetic tensor: distribution, sparsity, and
/// non-negativity (post-ReLU activations are non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// Value distribution of the non-zero entries.
    pub distribution: ValueDistribution,
    /// Fraction of entries forced to exactly zero (unstructured sparsity).
    pub sparsity: f64,
    /// When `true`, negative samples are clamped to zero (ReLU), which adds
    /// to the effective sparsity.
    pub relu: bool,
}

impl SynthesisConfig {
    /// Typical post-ReLU activation tensor: half-Gaussian values with a base
    /// level of exact zeros contributed by the ReLU clamp itself.
    pub fn activation(std: f32, extra_sparsity: f64) -> Self {
        SynthesisConfig {
            distribution: ValueDistribution::Gaussian { mean: 0.0, std },
            sparsity: extra_sparsity,
            relu: true,
        }
    }

    /// Typical weight tensor: Laplace-distributed, signed, with optional
    /// pruning-induced sparsity.
    pub fn weight(scale: f32, pruned_fraction: f64) -> Self {
        SynthesisConfig {
            distribution: ValueDistribution::Laplace { loc: 0.0, scale },
            sparsity: pruned_fraction,
            relu: false,
        }
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::activation(1.0, 0.0)
    }
}

/// Deterministic tensor synthesizer.
///
/// ```
/// use nbsmt_tensor::random::{TensorSynthesizer, SynthesisConfig};
///
/// let mut synth = TensorSynthesizer::new(42);
/// let t = synth.tensor(&SynthesisConfig::activation(1.0, 0.2), &[64, 64]);
/// assert_eq!(t.numel(), 4096);
/// // ReLU plus the requested extra sparsity yields well over 20% zeros.
/// assert!(t.sparsity() > 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct TensorSynthesizer {
    rng: StdRng,
}

impl TensorSynthesizer {
    /// Creates a synthesizer seeded with `seed` (fully deterministic).
    pub fn new(seed: u64) -> Self {
        TensorSynthesizer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Synthesizes a tensor with the given configuration and shape.
    pub fn tensor(&mut self, config: &SynthesisConfig, dims: &[usize]) -> Tensor<f32> {
        let numel: usize = dims.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            let drop: f64 = self.rng.gen();
            if drop < config.sparsity {
                data.push(0.0);
                continue;
            }
            let mut v = config.distribution.sample(&mut self.rng);
            if config.relu && v < 0.0 {
                v = 0.0;
            }
            data.push(v);
        }
        Tensor::from_vec(data, dims).expect("buffer length matches dims by construction")
    }

    /// Synthesizes a vector of `len` values with the given configuration.
    pub fn vector(&mut self, config: &SynthesisConfig, len: usize) -> Vec<f32> {
        self.tensor(config, &[len]).into_vec()
    }

    /// Samples a single uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Samples a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let mut a = TensorSynthesizer::new(7);
        let mut b = TensorSynthesizer::new(7);
        let cfg = SynthesisConfig::activation(1.0, 0.3);
        let ta = a.tensor(&cfg, &[32, 32]);
        let tb = b.tensor(&cfg, &[32, 32]);
        assert_eq!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthesisConfig::weight(0.5, 0.0);
        let ta = TensorSynthesizer::new(1).tensor(&cfg, &[64]);
        let tb = TensorSynthesizer::new(2).tensor(&cfg, &[64]);
        assert_ne!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn relu_clamps_negatives() {
        let cfg = SynthesisConfig::activation(1.0, 0.0);
        let t = TensorSynthesizer::new(3).tensor(&cfg, &[1000]);
        assert!(t.iter().all(|&v| v >= 0.0));
        // A zero-mean Gaussian under ReLU is ~50% zeros.
        assert!(t.sparsity() > 0.4 && t.sparsity() < 0.6, "{}", t.sparsity());
    }

    #[test]
    fn requested_sparsity_is_respected() {
        let cfg = SynthesisConfig::weight(1.0, 0.4);
        let t = TensorSynthesizer::new(5).tensor(&cfg, &[10_000]);
        let s = t.sparsity();
        assert!((s - 0.4).abs() < 0.03, "sparsity {s}");
    }

    #[test]
    fn laplace_is_signed_and_bell_shaped() {
        let cfg = SynthesisConfig::weight(1.0, 0.0);
        let t = TensorSynthesizer::new(11).tensor(&cfg, &[20_000]);
        let n_pos = t.iter().filter(|&&v| v > 0.0).count();
        let n_neg = t.iter().filter(|&&v| v < 0.0).count();
        // Roughly symmetric around zero.
        let ratio = n_pos as f64 / n_neg as f64;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
        // Mean near zero, most mass near the center.
        assert!(t.mean().abs() < 0.05);
        let small = t.iter().filter(|&&v| v.abs() < 1.0).count();
        assert!(small as f64 / t.numel() as f64 > 0.5);
    }

    #[test]
    fn gaussian_std_controls_spread() {
        let narrow = TensorSynthesizer::new(13).tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian {
                    mean: 0.0,
                    std: 0.1,
                },
                sparsity: 0.0,
                relu: false,
            },
            &[10_000],
        );
        let wide = TensorSynthesizer::new(13).tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian {
                    mean: 0.0,
                    std: 2.0,
                },
                sparsity: 0.0,
                relu: false,
            },
            &[10_000],
        );
        assert!(wide.max() > narrow.max());
        assert!(wide.min() < narrow.min());
    }

    #[test]
    fn index_and_uniform_bounds() {
        let mut s = TensorSynthesizer::new(17);
        for _ in 0..100 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
            let i = s.index(10);
            assert!(i < 10);
        }
    }

    #[test]
    #[should_panic(expected = "index bound must be positive")]
    fn index_zero_bound_panics() {
        TensorSynthesizer::new(0).index(0);
    }
}
