//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the number
    /// of elements in the provided buffer.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree on a dimension do not.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The left-hand side shape involved.
        lhs: Vec<usize>,
        /// The right-hand side shape involved.
        rhs: Vec<usize>,
    },
    /// An operation requires a tensor of a specific rank.
    RankMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// An index is out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// Invalid argument (e.g. zero-sized convolution kernel, zero stride).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape expects {expected} elements but buffer holds {actual}"
            ),
            TensorError::DimensionMismatch { op, lhs, rhs } => {
                write!(f, "dimension mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "{op} requires rank {expected} but tensor has rank {actual}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ShapeDataMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));

        let e = TensorError::DimensionMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(e.to_string().contains("matmul"));

        let e = TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("im2col"));

        let e = TensorError::IndexOutOfBounds {
            index: vec![9],
            shape: vec![3],
        };
        assert!(e.to_string().contains("out of bounds"));

        let e = TensorError::InvalidArgument("stride must be non-zero".into());
        assert!(e.to_string().contains("stride"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
