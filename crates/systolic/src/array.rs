//! Cycle-level output-stationary systolic array simulation.
//!
//! The array is a grid of [`ProcessingElement`]s. Activations enter from the
//! left (one matrix row per array row), weights from the top (one matrix
//! column per array column), both skewed so that the operands that belong to
//! the same reduction index meet in the right PE at the right cycle. Each PE
//! accumulates its output element locally (output stationary) and the result
//! drains once the streaming finishes.

use serde::{Deserialize, Serialize};

use nbsmt_tensor::error::TensorError;
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Matrix;

use crate::pe::ProcessingElement;
use crate::schedule::{Tile, TilingPlan};

/// Configuration of a systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicConfig {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
}

impl SystolicConfig {
    /// The paper's 16×16 evaluation configuration.
    pub fn paper_16x16() -> Self {
        SystolicConfig { rows: 16, cols: 16 }
    }

    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        SystolicConfig { rows, cols }
    }

    /// Number of PEs in the array.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for SystolicConfig {
    fn default() -> Self {
        Self::paper_16x16()
    }
}

/// Statistics collected while executing a matmul on the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total cycles, including skew-in/drain-out latency per tile.
    pub cycles: u64,
    /// PE-cycle slots in which a PE held operands (streaming slots).
    pub pe_active_cycles: u64,
    /// PE-cycle slots in which a PE had two non-zero operands.
    pub pe_busy_cycles: u64,
    /// Effectual MAC operations performed (same as busy cycles for the
    /// baseline array).
    pub mac_ops: u64,
    /// Number of output tiles executed.
    pub tiles: u64,
}

impl SimStats {
    /// Array utilization: fraction of streaming PE slots with real work.
    pub fn utilization(&self) -> f64 {
        if self.pe_active_cycles == 0 {
            0.0
        } else {
            self.pe_busy_cycles as f64 / self.pe_active_cycles as f64
        }
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.pe_active_cycles += other.pe_active_cycles;
        self.pe_busy_cycles += other.pe_busy_cycles;
        self.mac_ops += other.mac_ops;
        self.tiles += other.tiles;
    }
}

/// Result of executing a matmul on the array: the integer output matrix and
/// the simulation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutput {
    /// The `M×N` integer output.
    pub output: Matrix<i64>,
    /// Cycle and utilization statistics.
    pub stats: SimStats,
}

/// A conventional (single-threaded) output-stationary systolic array.
#[derive(Debug, Clone)]
pub struct OutputStationaryArray {
    config: SystolicConfig,
}

impl OutputStationaryArray {
    /// Creates an array with the given configuration.
    pub fn new(config: SystolicConfig) -> Self {
        OutputStationaryArray { config }
    }

    /// The array configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Executes the matmul `X (M×K) · W (K×N)` tile by tile, cycle by cycle.
    ///
    /// `X` carries unsigned 8-bit activations and `W` signed 8-bit weights,
    /// exactly as in the paper's quantized setup.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `X.cols() != W.rows()`.
    pub fn matmul(&self, x: &Matrix<u8>, w: &Matrix<i8>) -> Result<SimOutput, TensorError> {
        self.matmul_with(&ExecContext::sequential(), x, w)
    }

    /// [`Self::matmul`] through the given execution context: output tiles
    /// are simulated concurrently on the context's worker pool (each tile
    /// walks its own PE grid cycle by cycle), outputs are drained and
    /// statistics merged **in tile order**, so the result is identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `X.cols() != W.rows()`.
    pub fn matmul_with(
        &self,
        ctx: &ExecContext,
        x: &Matrix<u8>,
        w: &Matrix<i8>,
    ) -> Result<SimOutput, TensorError> {
        if x.cols() != w.rows() {
            return Err(TensorError::DimensionMismatch {
                op: "systolic matmul",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![w.rows(), w.cols()],
            });
        }
        let (m, k, n) = (x.rows(), x.cols(), w.cols());
        let plan = TilingPlan::new(m, k, n, self.config.rows, self.config.cols);
        let tiles: Vec<Tile> = plan.tiles().collect();
        let per_tile = ctx.map_tiles(tiles.len(), |t| Self::run_tile(&plan, x, w, k, tiles[t]));

        let mut out = Matrix::<i64>::zeros(m, n);
        let mut stats = SimStats::default();
        // Deterministic drain + reduction: tile order, independent of which
        // worker simulated each tile.
        for (tile, (psums, tile_stats)) in tiles.iter().zip(per_tile.iter()) {
            for i in 0..tile.rows() {
                for j in 0..tile.cols() {
                    *out.at_mut(tile.row_start + i, tile.col_start + j) =
                        psums[i * tile.cols() + j];
                }
            }
            stats.merge(tile_stats);
        }
        Ok(SimOutput { output: out, stats })
    }

    /// Simulates one output tile on a fresh local PE grid, returning the
    /// tile's partial sums (row-major over the tile) and its statistics.
    fn run_tile(
        plan: &TilingPlan,
        x: &Matrix<u8>,
        w: &Matrix<i8>,
        k: usize,
        tile: Tile,
    ) -> (Vec<i64>, SimStats) {
        let tile_rows = tile.rows();
        let tile_cols = tile.cols();
        let mut grid = vec![ProcessingElement::new(); tile_rows * tile_cols];
        // Stream the reduction dimension through the grid with skew:
        // PE (i, j) consumes reduction index p = cycle - i - j when
        // 0 <= p < K.  Iterating cycles reproduces the exact wavefront
        // behaviour of the hardware.
        let total_stream_cycles = k + tile_rows + tile_cols - 2;
        for cycle in 0..total_stream_cycles {
            for i in 0..tile_rows {
                for j in 0..tile_cols {
                    let skew = i + j;
                    if cycle < skew {
                        continue;
                    }
                    let p = cycle - skew;
                    if p >= k {
                        continue;
                    }
                    let xv = *x.at(tile.row_start + i, p);
                    let wv = *w.at(p, tile.col_start + j);
                    let pe = &mut grid[i * tile_cols + j];
                    pe.step(xv, wv);
                }
            }
        }
        let mut active = 0u64;
        let mut busy = 0u64;
        let mut macs = 0u64;
        for pe in &grid {
            active += pe.active_cycles();
            busy += pe.busy_cycles();
            macs += pe.mac_ops();
        }
        let psums = grid.iter().map(|pe| pe.psum()).collect();
        (
            psums,
            SimStats {
                cycles: plan.cycles_per_tile(),
                pe_active_cycles: active,
                pe_busy_cycles: busy,
                mac_ops: macs,
                tiles: 1,
            },
        )
    }

    /// Estimates cycles and utilization without streaming every PE slot,
    /// using the tiling plan for cycles and the exact operand-pair census for
    /// utilization. Produces the same [`SimStats`] totals as [`Self::matmul`]
    /// but in `O(M·K·N)` without per-cycle overhead; used for large layers.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `X.cols() != W.rows()`.
    pub fn estimate(&self, x: &Matrix<u8>, w: &Matrix<i8>) -> Result<SimStats, TensorError> {
        if x.cols() != w.rows() {
            return Err(TensorError::DimensionMismatch {
                op: "systolic estimate",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![w.rows(), w.cols()],
            });
        }
        let (m, k, n) = (x.rows(), x.cols(), w.cols());
        let plan = TilingPlan::new(m, k, n, self.config.rows, self.config.cols);
        let mut busy = 0u64;
        let xv = x.as_slice();
        let wv = w.as_slice();
        for i in 0..m {
            for p in 0..k {
                let xval = xv[i * k + p];
                if xval == 0 {
                    continue;
                }
                for j in 0..n {
                    if wv[p * n + j] != 0 {
                        busy += 1;
                    }
                }
            }
        }
        Ok(SimStats {
            cycles: plan.total_cycles(),
            pe_active_cycles: plan.total_macs(),
            pe_busy_cycles: busy,
            mac_ops: busy,
            tiles: plan.tile_count() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_tensor::ops::matmul_i32;

    fn x_mat(data: Vec<u8>, rows: usize, cols: usize) -> Matrix<u8> {
        Matrix::from_vec(data, rows, cols).unwrap()
    }

    fn w_mat(data: Vec<i8>, rows: usize, cols: usize) -> Matrix<i8> {
        Matrix::from_vec(data, rows, cols).unwrap()
    }

    fn reference(x: &Matrix<u8>, w: &Matrix<i8>) -> Matrix<i64> {
        let xi = Matrix::from_vec(
            x.as_slice().iter().map(|&v| v as i32).collect(),
            x.rows(),
            x.cols(),
        )
        .unwrap();
        let wi = Matrix::from_vec(
            w.as_slice().iter().map(|&v| v as i32).collect(),
            w.rows(),
            w.cols(),
        )
        .unwrap();
        matmul_i32(&xi, &wi).unwrap()
    }

    #[test]
    fn small_matmul_matches_reference() {
        let x = x_mat(vec![1, 2, 3, 4, 5, 6], 2, 3);
        let w = w_mat(vec![7, -8, 9, 10, -11, 12], 3, 2);
        let array = OutputStationaryArray::new(SystolicConfig::new(4, 4));
        let out = array.matmul(&x, &w).unwrap();
        assert_eq!(out.output, reference(&x, &w));
    }

    #[test]
    fn tiled_matmul_matches_reference() {
        // Bigger than the array in both output dimensions.
        let (m, k, n) = (9, 11, 7);
        let x_data: Vec<u8> = (0..m * k).map(|i| ((i * 37 + 11) % 251) as u8).collect();
        let w_data: Vec<i8> = (0..k * n)
            .map(|i| (((i * 53) % 255) as i16 - 127) as i8)
            .collect();
        let x = x_mat(x_data, m, k);
        let w = w_mat(w_data, k, n);
        let array = OutputStationaryArray::new(SystolicConfig::new(4, 4));
        let out = array.matmul(&x, &w).unwrap();
        assert_eq!(out.output, reference(&x, &w));
        assert_eq!(out.stats.tiles, 3 * 2);
    }

    #[test]
    fn cycle_count_matches_plan() {
        let x = x_mat(vec![1; 8 * 10], 8, 10);
        let w = w_mat(vec![1; 10 * 8], 10, 8);
        let cfg = SystolicConfig::new(4, 4);
        let array = OutputStationaryArray::new(cfg);
        let out = array.matmul(&x, &w).unwrap();
        let plan = TilingPlan::new(8, 10, 8, 4, 4);
        assert_eq!(out.stats.cycles, plan.total_cycles());
    }

    #[test]
    fn utilization_reflects_sparsity() {
        // Half the activations are zero -> utilization around 0.5.
        let (m, k, n) = (8, 32, 8);
        let x_data: Vec<u8> = (0..m * k)
            .map(|i| if i % 2 == 0 { 0 } else { 100 })
            .collect();
        let w_data: Vec<i8> = vec![7; k * n];
        let x = x_mat(x_data, m, k);
        let w = w_mat(w_data, k, n);
        let array = OutputStationaryArray::new(SystolicConfig::new(8, 8));
        let out = array.matmul(&x, &w).unwrap();
        assert!((out.stats.utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn dense_inputs_fully_utilize() {
        let x = x_mat(vec![9; 4 * 6], 4, 6);
        let w = w_mat(vec![3; 6 * 4], 6, 4);
        let array = OutputStationaryArray::new(SystolicConfig::new(4, 4));
        let out = array.matmul(&x, &w).unwrap();
        assert!((out.stats.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(out.stats.mac_ops, 4 * 6 * 4);
    }

    #[test]
    fn estimate_matches_cycle_level_stats() {
        let (m, k, n) = (10, 14, 9);
        let x_data: Vec<u8> = (0..m * k).map(|i| ((i * 29) % 200) as u8).collect();
        let w_data: Vec<i8> = (0..k * n)
            .map(|i| {
                if i % 5 == 0 {
                    0
                } else {
                    ((i % 250) as i16 - 120) as i8
                }
            })
            .collect();
        let x = x_mat(x_data, m, k);
        let w = w_mat(w_data, k, n);
        let cfg = SystolicConfig::new(4, 4);
        let array = OutputStationaryArray::new(cfg);
        let exact = array.matmul(&x, &w).unwrap();
        let est = array.estimate(&x, &w).unwrap();
        assert_eq!(est.cycles, exact.stats.cycles);
        assert_eq!(est.pe_busy_cycles, exact.stats.pe_busy_cycles);
        assert_eq!(est.mac_ops, exact.stats.mac_ops);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let x = x_mat(vec![1; 4], 2, 2);
        let w = w_mat(vec![1; 3], 3, 1);
        let array = OutputStationaryArray::new(SystolicConfig::new(2, 2));
        assert!(array.matmul(&x, &w).is_err());
        assert!(array.estimate(&x, &w).is_err());
    }

    #[test]
    fn config_helpers() {
        let cfg = SystolicConfig::paper_16x16();
        assert_eq!(cfg.pe_count(), 256);
        assert_eq!(SystolicConfig::default(), cfg);
    }

    #[test]
    #[should_panic(expected = "array dimensions must be positive")]
    fn zero_config_panics() {
        SystolicConfig::new(0, 1);
    }
}
