//! Tiling of matrix multiplications onto a fixed-size PE grid.
//!
//! A matrix multiplication `X (M×K) · W (K×N)` executed on an `R×C`
//! output-stationary array is tiled into `ceil(M/R) × ceil(N/C)` output
//! tiles; each tile streams the full reduction dimension `K` through the
//! array. Data enters the grid skewed, so each tile costs
//! `K + R + C - 2` cycles before its outputs drain.

use serde::{Deserialize, Serialize};

/// One output tile of the matmul: a row range of `X` and a column range of
/// `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// First output row (inclusive).
    pub row_start: usize,
    /// One past the last output row.
    pub row_end: usize,
    /// First output column (inclusive).
    pub col_start: usize,
    /// One past the last output column.
    pub col_end: usize,
}

impl Tile {
    /// Number of output rows in the tile.
    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Number of output columns in the tile.
    pub fn cols(&self) -> usize {
        self.col_end - self.col_start
    }
}

/// A tiling plan for executing an `M×K · K×N` matmul on an `R×C` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingPlan {
    /// Output rows of the full matmul.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns of the full matmul.
    pub n: usize,
    /// Array rows.
    pub array_rows: usize,
    /// Array columns.
    pub array_cols: usize,
}

impl TilingPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics when the array has zero rows or columns.
    pub fn new(m: usize, k: usize, n: usize, array_rows: usize, array_cols: usize) -> Self {
        assert!(array_rows > 0 && array_cols > 0, "array must be non-empty");
        TilingPlan {
            m,
            k,
            n,
            array_rows,
            array_cols,
        }
    }

    /// Number of output tiles.
    pub fn tile_count(&self) -> usize {
        self.row_tiles() * self.col_tiles()
    }

    /// Number of row tiles.
    pub fn row_tiles(&self) -> usize {
        self.m.div_ceil(self.array_rows)
    }

    /// Number of column tiles.
    pub fn col_tiles(&self) -> usize {
        self.n.div_ceil(self.array_cols)
    }

    /// Iterates over the output tiles in row-major tile order.
    pub fn tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        let plan = *self;
        (0..plan.row_tiles()).flat_map(move |rt| {
            (0..plan.col_tiles()).map(move |ct| {
                let row_start = rt * plan.array_rows;
                let col_start = ct * plan.array_cols;
                Tile {
                    row_start,
                    row_end: (row_start + plan.array_rows).min(plan.m),
                    col_start,
                    col_end: (col_start + plan.array_cols).min(plan.n),
                }
            })
        })
    }

    /// Cycles needed by one tile: `K` streaming cycles plus the skew-in /
    /// drain-out latency of the array diagonals.
    pub fn cycles_per_tile(&self) -> u64 {
        (self.k + self.array_rows + self.array_cols).saturating_sub(2) as u64
    }

    /// Total cycles of the full matmul on the baseline single-threaded array.
    pub fn total_cycles(&self) -> u64 {
        self.tile_count() as u64 * self.cycles_per_tile()
    }

    /// Total effectual PE-cycle slots offered by the array over the matmul
    /// (tiles × K × array size); the denominator of array utilization.
    pub fn total_mac_slots(&self) -> u64 {
        self.tile_count() as u64 * self.k as u64 * (self.array_rows * self.array_cols) as u64
    }

    /// Total MAC operations demanded by the matmul (`M·K·N`).
    pub fn total_macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Fraction of PE slots holding real work (edge tiles waste slots when
    /// `M` or `N` is not a multiple of the array size).
    pub fn occupancy(&self) -> f64 {
        let slots = self.total_mac_slots();
        if slots == 0 {
            0.0
        } else {
            self.total_macs() as f64 / slots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling() {
        let plan = TilingPlan::new(32, 100, 48, 16, 16);
        assert_eq!(plan.row_tiles(), 2);
        assert_eq!(plan.col_tiles(), 3);
        assert_eq!(plan.tile_count(), 6);
        assert_eq!(plan.cycles_per_tile(), 100 + 16 + 16 - 2);
        assert_eq!(plan.total_cycles(), 6 * 130);
        assert!((plan.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ragged_tiling_covers_everything() {
        let plan = TilingPlan::new(20, 7, 18, 16, 16);
        assert_eq!(plan.tile_count(), 4);
        let tiles: Vec<Tile> = plan.tiles().collect();
        assert_eq!(tiles.len(), 4);
        // Union of tiles covers the full output exactly once.
        let mut covered = vec![vec![0u32; 18]; 20];
        for t in &tiles {
            for row in covered.iter_mut().take(t.row_end).skip(t.row_start) {
                for cell in row.iter_mut().take(t.col_end).skip(t.col_start) {
                    *cell += 1;
                }
            }
        }
        assert!(covered.iter().flatten().all(|&v| v == 1));
        assert!(plan.occupancy() < 1.0);
    }

    #[test]
    fn tile_dimensions_are_clamped() {
        let plan = TilingPlan::new(5, 3, 5, 4, 4);
        let tiles: Vec<Tile> = plan.tiles().collect();
        assert_eq!(tiles[0].rows(), 4);
        assert_eq!(tiles[3].rows(), 1);
        assert_eq!(tiles[3].cols(), 1);
    }

    #[test]
    fn total_macs_is_mkn() {
        let plan = TilingPlan::new(3, 4, 5, 16, 16);
        assert_eq!(plan.total_macs(), 60);
    }

    #[test]
    #[should_panic(expected = "array must be non-empty")]
    fn zero_array_panics() {
        TilingPlan::new(1, 1, 1, 0, 16);
    }
}
