//! # nbsmt-systolic
//!
//! Cycle-level output-stationary systolic array (OS-SA) simulator.
//!
//! This is the baseline accelerator substrate of the paper: a grid of
//! processing elements, each receiving one activation and one weight per
//! cycle, multiplying them and accumulating the result locally (output
//! stationary). Matrices larger than the grid are tiled; data enters skewed
//! so that operands with the same reduction index meet at the right PE.
//!
//! * [`pe`] — the conventional single-threaded PE,
//! * [`schedule`] — tiling plans and cycle-count formulas,
//! * [`mod@array`] — the cycle-level array simulation plus a fast estimator that
//!   produces identical statistics for large layers.
//!
//! ```
//! use nbsmt_systolic::array::{OutputStationaryArray, SystolicConfig};
//! use nbsmt_tensor::tensor::Matrix;
//!
//! # fn main() -> Result<(), nbsmt_tensor::error::TensorError> {
//! let x = Matrix::from_vec(vec![1u8, 2, 3, 4], 2, 2)?;
//! let w = Matrix::from_vec(vec![5i8, 6, 7, 8], 2, 2)?;
//! let mut array = OutputStationaryArray::new(SystolicConfig::new(4, 4));
//! let out = array.matmul(&x, &w)?;
//! assert_eq!(*out.output.at(0, 0), 1 * 5 + 2 * 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod pe;
pub mod schedule;

pub use array::{OutputStationaryArray, SimOutput, SimStats, SystolicConfig};
pub use pe::ProcessingElement;
pub use schedule::{Tile, TilingPlan};
