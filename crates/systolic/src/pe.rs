//! The conventional output-stationary processing element (PE).
//!
//! Each PE receives one activation and one weight per cycle, multiplies them,
//! accumulates the product into its local partial-sum register, and forwards
//! both inputs downstream (Fig. 5a of the paper). The PE also tracks how many
//! cycles its MAC unit was actually needed (both operands non-zero), which is
//! the utilization definition used by the paper's power testbenches.

use serde::{Deserialize, Serialize};

/// A single output-stationary PE with an 8b×8b MAC and a 32-bit accumulator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessingElement {
    psum: i64,
    busy_cycles: u64,
    active_cycles: u64,
    mac_ops: u64,
}

impl ProcessingElement {
    /// Creates a PE with a cleared accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the accumulator and statistics for the next tile.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Executes one cycle with the given activation/weight pair.
    ///
    /// Returns the product accumulated this cycle.
    pub fn step(&mut self, x: u8, w: i8) -> i64 {
        self.active_cycles += 1;
        let product = x as i64 * w as i64;
        if x != 0 && w != 0 {
            self.busy_cycles += 1;
            self.mac_ops += 1;
        }
        self.psum += product;
        product
    }

    /// The accumulated partial sum.
    pub fn psum(&self) -> i64 {
        self.psum
    }

    /// Cycles in which the PE received operands (whether or not they were
    /// zero-valued).
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Cycles in which the MAC unit was genuinely needed (both operands
    /// non-zero).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of effectual MAC operations performed.
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Utilization of this PE: busy cycles over active cycles.
    pub fn utilization(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.active_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_products() {
        let mut pe = ProcessingElement::new();
        pe.step(2, 3);
        pe.step(4, -5);
        assert_eq!(pe.psum(), 6 - 20);
        assert_eq!(pe.mac_ops(), 2);
    }

    #[test]
    fn zero_operands_do_not_count_as_busy() {
        let mut pe = ProcessingElement::new();
        pe.step(0, 7);
        pe.step(7, 0);
        pe.step(3, 3);
        assert_eq!(pe.active_cycles(), 3);
        assert_eq!(pe.busy_cycles(), 1);
        assert!((pe.utilization() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pe.psum(), 9);
    }

    #[test]
    fn reset_clears_state() {
        let mut pe = ProcessingElement::new();
        pe.step(10, 10);
        pe.reset();
        assert_eq!(pe.psum(), 0);
        assert_eq!(pe.active_cycles(), 0);
        assert_eq!(pe.utilization(), 0.0);
    }

    #[test]
    fn full_range_products_do_not_overflow() {
        let mut pe = ProcessingElement::new();
        for _ in 0..1_000_000 {
            pe.step(255, -128);
        }
        assert_eq!(pe.psum(), 255_i64 * -128 * 1_000_000);
    }
}
