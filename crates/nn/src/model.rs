//! Sequential model container and forward execution.

use serde::{Deserialize, Serialize};

use nbsmt_tensor::tensor::Tensor;

use crate::error::NnError;
use crate::layers::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2, Relu};

/// A layer of a sequential model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// ReLU activation.
    Relu(Relu),
    /// 2×2 max pooling.
    MaxPool2(MaxPool2),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPool),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Flatten to `[N, F]`.
    Flatten(Flatten),
}

impl Layer {
    /// Short human-readable name of the layer kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::Relu(_) => "relu",
            Layer::MaxPool2(_) => "maxpool2",
            Layer::GlobalAvgPool(_) => "global_avg_pool",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::Flatten(_) => "flatten",
        }
    }

    /// Whether the layer holds MAC-heavy parameters (conv or linear).
    pub fn is_compute_layer(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Linear(_))
    }
}

/// A sequential neural network.
///
/// The model owns its layers and executes them in order. It is deliberately
/// simple — the reproduction only needs small trainable CNNs; the large
/// ImageNet models of the paper are represented as layer-shape inventories in
/// `nbsmt-workloads` rather than executable graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    layers: Vec<Layer>,
    /// Human-readable model name.
    pub name: String,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            layers: Vec::new(),
            name: name.into(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer and the pruner).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of compute (conv/linear) layers.
    pub fn compute_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_compute_layer()).count()
    }

    /// Runs a forward pass and returns the final output (`[N, classes]` for
    /// classifiers).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = forward_layer(layer, &x)?;
        }
        Ok(x)
    }

    /// Runs a forward pass, returning the input of every layer alongside the
    /// final output. Used by the quantized execution engine to calibrate
    /// per-layer activation ranges and to hand each compute layer's input to
    /// the NB-SMT emulation.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_collect(
        &self,
        input: &Tensor<f32>,
    ) -> Result<(Vec<Tensor<f32>>, Tensor<f32>), NnError> {
        let mut x = input.clone();
        let mut inputs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            inputs.push(x.clone());
            x = forward_layer(layer, &x)?;
        }
        Ok((inputs, x))
    }

    /// Predicts the class of every sample in a `[N, classes]` logit tensor.
    pub fn argmax(logits: &Tensor<f32>) -> Vec<usize> {
        let dims = logits.shape().dims();
        let (n, c) = (dims[0], dims[1]);
        let s = logits.as_slice();
        (0..n)
            .map(|i| {
                let row = &s[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(idx, _)| idx)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Classification accuracy of the model on a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn accuracy(&self, input: &Tensor<f32>, labels: &[usize]) -> Result<f64, NnError> {
        let logits = self.forward(input)?;
        let preds = Self::argmax(&logits);
        if labels.is_empty() {
            return Ok(0.0);
        }
        let correct = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// Total conv + linear MAC operations for one input of spatial size
    /// `h × w` with `channels` input channels.
    ///
    /// # Errors
    ///
    /// Returns an error if layer shapes do not chain correctly.
    pub fn mac_ops(&self, channels: usize, h: usize, w: usize) -> Result<u64, NnError> {
        let mut total = 0u64;
        let (mut _c, mut ch, mut cw) = (channels, h, w);
        for layer in &self.layers {
            match layer {
                Layer::Conv2d(conv) => {
                    total += conv.mac_ops(ch, cw);
                    ch = conv.params.output_size(ch);
                    cw = conv.params.output_size(cw);
                    _c = conv.params.out_channels;
                }
                Layer::Linear(lin) => {
                    total += lin.mac_ops();
                }
                Layer::MaxPool2(_) => {
                    ch /= 2;
                    cw /= 2;
                }
                Layer::GlobalAvgPool(_) => {
                    ch = 1;
                    cw = 1;
                }
                _ => {}
            }
        }
        Ok(total)
    }
}

/// Applies one layer's forward pass.
pub(crate) fn forward_layer(layer: &Layer, x: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    match layer {
        Layer::Conv2d(l) => l.forward(x),
        Layer::Linear(l) => l.forward(x),
        Layer::Relu(l) => Ok(l.forward(x)),
        Layer::MaxPool2(l) => Ok(l.forward(x)?.0),
        Layer::GlobalAvgPool(l) => l.forward(x),
        Layer::BatchNorm2d(l) => l.forward(x),
        Layer::Flatten(l) => l.forward(x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_tensor::ops::Conv2dParams;
    use nbsmt_tensor::random::TensorSynthesizer;

    fn tiny_model() -> Model {
        let mut synth = TensorSynthesizer::new(7);
        let mut m = Model::new("tiny");
        m.push(Layer::Conv2d(Conv2d::new(
            Conv2dParams::new(1, 4, 3, 1, 1),
            &mut synth,
        )))
        .push(Layer::Relu(Relu))
        .push(Layer::MaxPool2(MaxPool2))
        .push(Layer::Flatten(Flatten))
        .push(Layer::Linear(Linear::new(4 * 4 * 4, 3, &mut synth)));
        m
    }

    #[test]
    fn forward_produces_logits() {
        let m = tiny_model();
        let input = Tensor::<f32>::full(&[2, 1, 8, 8], 0.5);
        let out = m.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 3]);
        assert_eq!(m.len(), 5);
        assert_eq!(m.compute_layer_count(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn forward_collect_returns_layer_inputs() {
        let m = tiny_model();
        let input = Tensor::<f32>::full(&[1, 1, 8, 8], 1.0);
        let (inputs, out) = m.forward_collect(&input).unwrap();
        assert_eq!(inputs.len(), 5);
        assert_eq!(inputs[0].shape().dims(), &[1, 1, 8, 8]);
        assert_eq!(inputs[3].shape().dims(), &[1, 4, 4, 4]);
        assert_eq!(out.shape().dims(), &[1, 3]);
    }

    #[test]
    fn argmax_and_accuracy() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.0, 2.0, 1.0, -1.0], &[2, 3]).unwrap();
        assert_eq!(Model::argmax(&logits), vec![1, 0]);

        let m = tiny_model();
        let input = Tensor::<f32>::full(&[2, 1, 8, 8], 0.5);
        let acc = m.accuracy(&input, &[0, 0]).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(m.accuracy(&input, &[]).unwrap(), 0.0);
    }

    #[test]
    fn mac_ops_counts_conv_and_linear() {
        let m = tiny_model();
        // conv: 8*8 output positions * 4 filters * 9 * 1 channel = 2304
        // linear: 64 * 3 = 192
        assert_eq!(m.mac_ops(1, 8, 8).unwrap(), 2304 + 192);
    }

    #[test]
    fn layer_kind_labels() {
        let m = tiny_model();
        let kinds: Vec<&str> = m.layers().iter().map(|l| l.kind()).collect();
        assert_eq!(
            kinds,
            vec!["conv2d", "relu", "maxpool2", "flatten", "linear"]
        );
    }

    #[test]
    fn shape_errors_propagate() {
        let m = tiny_model();
        let bad = Tensor::<f32>::zeros(&[2, 3, 8, 8]);
        assert!(m.forward(&bad).is_err());
    }
}
