//! Quantized model execution with a pluggable GEMM engine.
//!
//! The paper simulates SySMT by mapping every convolution to a matrix
//! multiplication and replacing that multiplication with the NB-SMT
//! emulation. This module mirrors that flow: a trained floating-point
//! [`Model`] is calibrated (per-layer activation ranges, per-kernel weight
//! scales, batch-norm recalibration) and then executed layer by layer with
//! the conv/linear GEMMs delegated to a [`GemmEngine`]. The engine is the
//! integration point for `nbsmt-core`: the reference engine reproduces the
//! error-free 8-bit baseline, while an NB-SMT engine injects exactly the
//! error the hardware would.

use nbsmt_quant::observer::MinMaxObserver;
use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_quant::quantize::{
    quantize_activations, quantize_weights, quantized_matmul_with, reduce_activation_matrix,
    reduce_weight_matrix,
};
use nbsmt_quant::scheme::{OperatingPoint, QuantScheme};
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::ops::{self, Conv2dParams};
use nbsmt_tensor::tensor::{Matrix, Tensor};

use crate::error::NnError;
use crate::layers::{Conv2d, Linear};
use crate::model::{forward_layer, Layer, Model};

/// A matrix-multiplication engine used to execute quantized compute layers.
///
/// Implementations receive the execution context of the run (worker pool +
/// GEMM backend — engines no longer own their loop nests), the quantized
/// activation matrix, and the quantized weight matrix of one layer, and
/// return the dequantized output matrix. The `layer_index` identifies the
/// compute layer (0-based over compute layers only), which lets engines
/// apply per-layer thread counts.
pub trait GemmEngine {
    /// Executes one layer's GEMM on the given execution context.
    ///
    /// # Errors
    ///
    /// Returns an error when dimensions mismatch or the engine fails.
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError>;
}

/// The error-free 8-bit reference engine (the conventional systolic array).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceEngine;

impl GemmEngine for ReferenceEngine {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        _layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        Ok(quantized_matmul_with(ctx, x, w)?)
    }
}

/// An engine that statically reduces activations and/or weights to 4 bits
/// before the error-free multiplication — the whole-model robustness points
/// of Fig. 7 (A4W8, A8W4, A4W4).
#[derive(Debug, Clone, Copy)]
pub struct ReducedPrecisionEngine {
    /// The operating point to emulate.
    pub point: OperatingPoint,
}

impl GemmEngine for ReducedPrecisionEngine {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        _layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        let x = reduce_activation_matrix(x, self.point.activation_bits);
        let w = reduce_weight_matrix(w, self.point.weight_bits);
        Ok(quantized_matmul_with(ctx, &x, &w)?)
    }
}

/// Calibration data for one compute layer.
#[derive(Debug, Clone, PartialEq)]
struct LayerCalibration {
    /// Averaged (min, max) of the layer's input activations.
    input_range: (f32, f32),
}

/// A quantized view of a trained model, ready to execute with any
/// [`GemmEngine`].
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    model: Model,
    calibrations: Vec<LayerCalibration>,
    activation_scheme: QuantScheme,
    weight_scheme: QuantScheme,
}

impl QuantizedModel {
    /// Calibrates a trained model on a batch of representative inputs: the
    /// paper's "quick statistics gathering run" (averaged min/max per layer,
    /// batch-norm recalibration happens on the float model beforehand).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors; fails on models without compute
    /// layers.
    pub fn calibrate(model: &Model, calibration_inputs: &[Tensor<f32>]) -> Result<Self, NnError> {
        if model.compute_layer_count() == 0 {
            return Err(NnError::InvalidConfig(
                "model has no conv/linear layers to quantize".into(),
            ));
        }
        if calibration_inputs.is_empty() {
            return Err(NnError::InvalidConfig("no calibration inputs".into()));
        }
        let mut observers: Vec<MinMaxObserver> =
            vec![MinMaxObserver::new(); model.compute_layer_count()];
        for input in calibration_inputs {
            let (layer_inputs, _) = model.forward_collect(input)?;
            let mut compute_idx = 0usize;
            for (layer, layer_input) in model.layers().iter().zip(layer_inputs.iter()) {
                if layer.is_compute_layer() {
                    observers[compute_idx].observe(layer_input.as_slice());
                    compute_idx += 1;
                }
            }
        }
        let calibrations = observers
            .iter()
            .map(|o| LayerCalibration {
                input_range: o.averaged_range(),
            })
            .collect();
        Ok(QuantizedModel {
            model: model.clone(),
            calibrations,
            activation_scheme: QuantScheme::activation_a8(),
            weight_scheme: QuantScheme::weight_w8(),
        })
    }

    /// The underlying floating-point model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Number of quantized compute layers.
    pub fn compute_layer_count(&self) -> usize {
        self.calibrations.len()
    }

    /// Quantizes the weights of compute layer `index` (0-based over compute
    /// layers) into the GEMM layout, returning `(weights, conv_geometry)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the index is out of range.
    pub fn quantized_weights(
        &self,
        index: usize,
    ) -> Result<(QuantWeightMatrix, Option<Conv2dParams>), NnError> {
        let mut compute_idx = 0usize;
        for layer in self.model.layers() {
            if !layer.is_compute_layer() {
                continue;
            }
            if compute_idx == index {
                return match layer {
                    Layer::Conv2d(conv) => {
                        let wmat = ops::filters_to_matrix(&conv.weight, &conv.params, 0)?;
                        let w = quantize_weights(&wmat.try_into()?, &self.weight_scheme);
                        Ok((w, Some(conv.params)))
                    }
                    Layer::Linear(lin) => {
                        let w =
                            quantize_weights(&lin.weight.clone().try_into()?, &self.weight_scheme);
                        Ok((w, None))
                    }
                    _ => unreachable!("is_compute_layer guarantees conv or linear"),
                };
            }
            compute_idx += 1;
        }
        Err(NnError::InvalidConfig(format!(
            "compute layer index {index} out of range"
        )))
    }

    /// Executes the quantized model on a batch of inputs with the given GEMM
    /// engine, returning the output logits.
    ///
    /// Non-compute layers (ReLU, pooling, batch norm, flatten) run in floating
    /// point between the quantized GEMMs, exactly as the paper's PyTorch
    /// simulation does.
    ///
    /// # Errors
    ///
    /// Propagates layer and engine errors.
    pub fn forward_with<E: GemmEngine>(
        &self,
        input: &Tensor<f32>,
        engine: &mut E,
    ) -> Result<Tensor<f32>, NnError> {
        self.forward_with_ctx(&ExecContext::sequential(), input, engine)
    }

    /// [`Self::forward_with`] on an explicit execution context: every
    /// layer's GEMM is handed to the engine together with `ctx`, so the
    /// backend and worker pool are decided once per run rather than per
    /// engine. Results are identical for every context configuration.
    ///
    /// # Errors
    ///
    /// Propagates layer and engine errors.
    pub fn forward_with_ctx<E: GemmEngine>(
        &self,
        ctx: &ExecContext,
        input: &Tensor<f32>,
        engine: &mut E,
    ) -> Result<Tensor<f32>, NnError> {
        let mut x = input.clone();
        let mut compute_idx = 0usize;
        for layer in self.model.layers() {
            match layer {
                Layer::Conv2d(conv) => {
                    x = self.run_conv(ctx, conv, &x, compute_idx, engine)?;
                    compute_idx += 1;
                }
                Layer::Linear(lin) => {
                    x = self.run_linear(ctx, lin, &x, compute_idx, engine)?;
                    compute_idx += 1;
                }
                other => {
                    x = forward_layer(other, &x)?;
                }
            }
        }
        Ok(x)
    }

    /// Classification accuracy of the quantized model under the given engine.
    ///
    /// # Errors
    ///
    /// Propagates layer and engine errors.
    pub fn accuracy_with<E: GemmEngine>(
        &self,
        images: &Tensor<f32>,
        labels: &[usize],
        engine: &mut E,
    ) -> Result<f64, NnError> {
        self.accuracy_with_ctx(&ExecContext::sequential(), images, labels, engine)
    }

    /// [`Self::accuracy_with`] on an explicit execution context.
    ///
    /// # Errors
    ///
    /// Propagates layer and engine errors.
    pub fn accuracy_with_ctx<E: GemmEngine>(
        &self,
        ctx: &ExecContext,
        images: &Tensor<f32>,
        labels: &[usize],
        engine: &mut E,
    ) -> Result<f64, NnError> {
        let logits = self.forward_with_ctx(ctx, images, engine)?;
        let preds = Model::argmax(&logits);
        if labels.is_empty() {
            return Ok(0.0);
        }
        Ok(preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64)
    }

    /// Collects the quantized `(X, W)` GEMM operands of every compute layer
    /// for one input batch. This is the layer-trace interface used by the
    /// per-layer MSE and utilization experiments (Figs. 8 and 9).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn layer_traces(
        &self,
        input: &Tensor<f32>,
    ) -> Result<Vec<(QuantMatrix, QuantWeightMatrix)>, NnError> {
        let mut traces = Vec::new();
        let mut x = input.clone();
        let mut compute_idx = 0usize;
        for layer in self.model.layers() {
            match layer {
                Layer::Conv2d(conv) => {
                    let (qx, qw) = self.conv_operands(conv, &x, compute_idx)?;
                    traces.push((qx, qw));
                    x = conv.forward(&x)?;
                    compute_idx += 1;
                }
                Layer::Linear(lin) => {
                    let (qx, qw) = self.linear_operands(lin, &x, compute_idx)?;
                    traces.push((qx, qw));
                    x = lin.forward(&x)?;
                    compute_idx += 1;
                }
                other => {
                    x = forward_layer(other, &x)?;
                }
            }
        }
        Ok(traces)
    }

    fn conv_operands(
        &self,
        conv: &Conv2d,
        input: &Tensor<f32>,
        compute_idx: usize,
    ) -> Result<(QuantMatrix, QuantWeightMatrix), NnError> {
        let cols = ops::im2col(input, &conv.params, 0)?;
        let range = self.calibrations[compute_idx].input_range;
        let qx = quantize_activations(&cols.try_into()?, &self.activation_scheme, Some(range));
        let wmat = ops::filters_to_matrix(&conv.weight, &conv.params, 0)?;
        let qw = quantize_weights(&wmat.try_into()?, &self.weight_scheme);
        Ok((qx, qw))
    }

    fn linear_operands(
        &self,
        lin: &Linear,
        input: &Tensor<f32>,
        compute_idx: usize,
    ) -> Result<(QuantMatrix, QuantWeightMatrix), NnError> {
        let range = self.calibrations[compute_idx].input_range;
        let qx = quantize_activations(
            &input.clone().try_into()?,
            &self.activation_scheme,
            Some(range),
        );
        let qw = quantize_weights(&lin.weight.clone().try_into()?, &self.weight_scheme);
        Ok((qx, qw))
    }

    fn run_conv<E: GemmEngine>(
        &self,
        ctx: &ExecContext,
        conv: &Conv2d,
        input: &Tensor<f32>,
        compute_idx: usize,
        engine: &mut E,
    ) -> Result<Tensor<f32>, NnError> {
        if conv.params.groups != 1 {
            // Depthwise/grouped convolutions are executed in float; the paper
            // likewise runs MobileNet's depthwise convolutions at one thread.
            return conv.forward(input);
        }
        let dims = input.shape().dims();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let oh = conv.params.output_size(h);
        let ow = conv.params.output_size(w);
        let (qx, qw) = self.conv_operands(conv, input, compute_idx)?;
        let gemm = engine.gemm(ctx, compute_idx, &qx, &qw)?;
        let mut gemm_t: Tensor<f32> = gemm.into();
        // Add bias per output channel.
        {
            let oc = conv.params.out_channels;
            let s = gemm_t.as_mut_slice();
            for r in 0..n * oh * ow {
                for c in 0..oc {
                    s[r * oc + c] += conv.bias[c];
                }
            }
        }
        Ok(ops::col2im(&gemm_t, n, conv.params.out_channels, oh, ow)?)
    }

    fn run_linear<E: GemmEngine>(
        &self,
        ctx: &ExecContext,
        lin: &Linear,
        input: &Tensor<f32>,
        compute_idx: usize,
        engine: &mut E,
    ) -> Result<Tensor<f32>, NnError> {
        let (qx, qw) = self.linear_operands(lin, input, compute_idx)?;
        let gemm = engine.gemm(ctx, compute_idx, &qx, &qw)?;
        let mut out: Tensor<f32> = gemm.into();
        let s = out.as_mut_slice();
        let n = input.shape().dim(0);
        for r in 0..n {
            for c in 0..lin.out_features {
                s[r * lin.out_features + c] += lin.bias[c];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, MaxPool2, Relu};
    use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};

    fn small_model(seed: u64) -> Model {
        let mut synth = TensorSynthesizer::new(seed);
        let mut m = Model::new("quant-test");
        m.push(Layer::Conv2d(Conv2d::new(
            Conv2dParams::new(1, 4, 3, 1, 1),
            &mut synth,
        )))
        .push(Layer::Relu(Relu))
        .push(Layer::MaxPool2(MaxPool2))
        .push(Layer::Flatten(Flatten))
        .push(Layer::Linear(Linear::new(4 * 4 * 4, 3, &mut synth)));
        m
    }

    fn inputs(seed: u64, n: usize) -> Tensor<f32> {
        let mut synth = TensorSynthesizer::new(seed);
        synth.tensor(&SynthesisConfig::activation(1.0, 0.3), &[n, 1, 8, 8])
    }

    #[test]
    fn calibration_requires_compute_layers_and_inputs() {
        let m = small_model(1);
        assert!(QuantizedModel::calibrate(&m, &[]).is_err());
        let empty = Model::new("empty");
        assert!(QuantizedModel::calibrate(&empty, &[inputs(2, 1)]).is_err());
        let q = QuantizedModel::calibrate(&m, &[inputs(2, 4)]).unwrap();
        assert_eq!(q.compute_layer_count(), 2);
    }

    #[test]
    fn reference_engine_tracks_float_model_closely() {
        let m = small_model(3);
        let calib = inputs(4, 8);
        let q = QuantizedModel::calibrate(&m, &[calib]).unwrap();
        let test = inputs(5, 6);
        let float_out = m.forward(&test).unwrap();
        let quant_out = q.forward_with(&test, &mut ReferenceEngine).unwrap();
        assert_eq!(float_out.shape().dims(), quant_out.shape().dims());
        // 8-bit quantization error should be small relative to the logits:
        // bounded worst case, and small on average.
        let mut max_rel = 0.0_f32;
        let mut mean_rel = 0.0_f32;
        for (a, b) in quant_out.as_slice().iter().zip(float_out.as_slice()) {
            let rel = (a - b).abs() / (b.abs() + 1.0);
            max_rel = max_rel.max(rel);
            mean_rel += rel;
        }
        mean_rel /= quant_out.numel() as f32;
        assert!(max_rel < 0.5, "max relative deviation {max_rel}");
        assert!(mean_rel < 0.1, "mean relative deviation {mean_rel}");
    }

    #[test]
    fn argmax_agreement_between_float_and_quantized() {
        let m = small_model(7);
        let q = QuantizedModel::calibrate(&m, &[inputs(8, 8)]).unwrap();
        let test = inputs(9, 16);
        let float_preds = Model::argmax(&m.forward(&test).unwrap());
        let quant_preds = Model::argmax(&q.forward_with(&test, &mut ReferenceEngine).unwrap());
        let agree = float_preds
            .iter()
            .zip(quant_preds.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree as f64 / float_preds.len() as f64 >= 0.8,
            "only {agree}/{} predictions agree",
            float_preds.len()
        );
    }

    #[test]
    fn reduced_precision_engine_degrades_gracefully() {
        let m = small_model(11);
        let q = QuantizedModel::calibrate(&m, &[inputs(12, 8)]).unwrap();
        let test = inputs(13, 8);
        let baseline = q.forward_with(&test, &mut ReferenceEngine).unwrap();
        let mut a4 = ReducedPrecisionEngine {
            point: OperatingPoint::A4W8,
        };
        let reduced = q.forward_with(&test, &mut a4).unwrap();
        // Outputs differ (precision was reduced) but stay in the same ballpark.
        let mut total_dev = 0.0_f64;
        for (a, b) in reduced.as_slice().iter().zip(baseline.as_slice()) {
            total_dev += (a - b).abs() as f64;
        }
        assert!(total_dev > 0.0, "A4W8 must differ from A8W8");
        let mean_dev = total_dev / baseline.numel() as f64;
        let mean_mag = baseline
            .as_slice()
            .iter()
            .map(|v| v.abs() as f64)
            .sum::<f64>()
            / baseline.numel() as f64;
        assert!(mean_dev < mean_mag, "A4W8 deviation should stay bounded");
    }

    #[test]
    fn a4w4_is_noisier_than_a4w8() {
        let m = small_model(17);
        let q = QuantizedModel::calibrate(&m, &[inputs(18, 8)]).unwrap();
        let test = inputs(19, 8);
        let baseline = q.forward_with(&test, &mut ReferenceEngine).unwrap();
        let dev = |point: OperatingPoint| {
            let mut engine = ReducedPrecisionEngine { point };
            let out = q.forward_with(&test, &mut engine).unwrap();
            out.as_slice()
                .iter()
                .zip(baseline.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
        };
        let a4w8 = dev(OperatingPoint::A4W8);
        let a4w4 = dev(OperatingPoint::A4W4);
        assert!(
            a4w4 >= a4w8,
            "A4W4 ({a4w4}) should be at least as noisy as A4W8 ({a4w8})"
        );
    }

    #[test]
    fn layer_traces_expose_every_compute_layer() {
        let m = small_model(23);
        let q = QuantizedModel::calibrate(&m, &[inputs(24, 4)]).unwrap();
        let traces = q.layer_traces(&inputs(25, 2)).unwrap();
        assert_eq!(traces.len(), 2);
        // Conv trace: rows = N*OH*OW = 2*8*8, cols = C*K*K = 9.
        assert_eq!(traces[0].0.rows(), 2 * 8 * 8);
        assert_eq!(traces[0].0.cols(), 9);
        assert_eq!(traces[0].1.rows(), 9);
        assert_eq!(traces[0].1.cols(), 4);
        // Linear trace: rows = N, cols = 64.
        assert_eq!(traces[1].0.rows(), 2);
        assert_eq!(traces[1].0.cols(), 64);
    }

    #[test]
    fn quantized_weights_accessor() {
        let m = small_model(29);
        let q = QuantizedModel::calibrate(&m, &[inputs(30, 4)]).unwrap();
        let (w0, conv_params) = q.quantized_weights(0).unwrap();
        assert_eq!(w0.cols(), 4);
        assert!(conv_params.is_some());
        let (w1, none) = q.quantized_weights(1).unwrap();
        assert_eq!(w1.cols(), 3);
        assert!(none.is_none());
        assert!(q.quantized_weights(2).is_err());
    }

    #[test]
    fn accuracy_with_engine_runs() {
        let m = small_model(31);
        let q = QuantizedModel::calibrate(&m, &[inputs(32, 4)]).unwrap();
        let test = inputs(33, 5);
        let acc = q
            .accuracy_with(&test, &[0, 1, 2, 0, 1], &mut ReferenceEngine)
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(
            q.accuracy_with(&test, &[], &mut ReferenceEngine).unwrap(),
            0.0
        );
    }
}
