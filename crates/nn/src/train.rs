//! Training: softmax cross-entropy loss, backpropagation through the
//! sequential model, and a minibatch SGD trainer.
//!
//! The paper's pruning experiments (Fig. 10) iteratively prune and *retrain*
//! the model; the synthetic accuracy experiments also need a model trained
//! from scratch. This module provides exactly that amount of training
//! machinery for the sequential models of [`crate::model::Model`].

use serde::{Deserialize, Serialize};

use nbsmt_tensor::tensor::Tensor;

use crate::error::NnError;
use crate::model::{Layer, Model};

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(mean_loss, grad)` where `grad` has the same shape as `logits`.
///
/// # Errors
///
/// Returns an error when a label is out of range or the batch is empty.
pub fn cross_entropy(
    logits: &Tensor<f32>,
    labels: &[usize],
) -> Result<(f32, Tensor<f32>), NnError> {
    let dims = logits.shape().dims();
    let (n, c) = (dims[0], dims[1]);
    if n == 0 || n != labels.len() {
        return Err(NnError::InvalidConfig(format!(
            "batch of {n} logits with {} labels",
            labels.len()
        )));
    }
    let s = logits.as_slice();
    let mut grad = vec![0.0_f32; n * c];
    let mut loss = 0.0_f32;
    for i in 0..n {
        if labels[i] >= c {
            return Err(NnError::InvalidConfig(format!(
                "label {} out of range for {c} classes",
                labels[i]
            )));
        }
        let row = &s[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
        loss -= probs[labels[i]].max(1e-12).ln();
        for j in 0..c {
            grad[i * c + j] = (probs[j] - if j == labels[i] { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok((loss / n as f32, Tensor::from_vec(grad, &[n, c])?))
}

/// Gradients of every parameterized layer, in layer order.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// `(layer_index, weight_grad, bias_grad)` for conv and linear layers.
    pub per_layer: Vec<(usize, Tensor<f32>, Vec<f32>)>,
}

/// Runs a forward + backward pass over one minibatch and returns the loss
/// and parameter gradients.
///
/// # Errors
///
/// Propagates layer shape errors; returns an error for layers that do not
/// support a backward pass (grouped convolutions, batch norm).
pub fn backward(
    model: &Model,
    input: &Tensor<f32>,
    labels: &[usize],
) -> Result<(f32, Gradients), NnError> {
    // Forward pass, saving per-layer inputs and pooling argmaxes.
    let mut x = input.clone();
    let mut saved_inputs: Vec<Tensor<f32>> = Vec::with_capacity(model.len());
    let mut saved_argmax: Vec<Option<Vec<usize>>> = Vec::with_capacity(model.len());
    for layer in model.layers() {
        saved_inputs.push(x.clone());
        match layer {
            Layer::Conv2d(l) => {
                x = l.forward(&x)?;
                saved_argmax.push(None);
            }
            Layer::Linear(l) => {
                x = l.forward(&x)?;
                saved_argmax.push(None);
            }
            Layer::Relu(l) => {
                x = l.forward(&x);
                saved_argmax.push(None);
            }
            Layer::MaxPool2(l) => {
                let (out, argmax) = l.forward(&x)?;
                x = out;
                saved_argmax.push(Some(argmax));
            }
            Layer::GlobalAvgPool(l) => {
                x = l.forward(&x)?;
                saved_argmax.push(None);
            }
            Layer::Flatten(l) => {
                x = l.forward(&x)?;
                saved_argmax.push(None);
            }
            Layer::BatchNorm2d(_) => {
                return Err(NnError::InvalidConfig(
                    "training through batch norm is not supported; use plain conv models".into(),
                ))
            }
        }
    }

    let (loss, mut grad) = cross_entropy(&x, labels)?;

    // Backward pass.
    let mut grads = Gradients {
        per_layer: Vec::new(),
    };
    for (idx, layer) in model.layers().iter().enumerate().rev() {
        let layer_input = &saved_inputs[idx];
        match layer {
            Layer::Conv2d(l) => {
                let mut gw = Tensor::<f32>::zeros(l.weight.shape().dims());
                let mut gb = vec![0.0_f32; l.bias.len()];
                grad = l.backward(layer_input, &grad, &mut gw, &mut gb)?;
                grads.per_layer.push((idx, gw, gb));
            }
            Layer::Linear(l) => {
                let mut gw = Tensor::<f32>::zeros(l.weight.shape().dims());
                let mut gb = vec![0.0_f32; l.bias.len()];
                grad = l.backward(layer_input, &grad, &mut gw, &mut gb)?;
                grads.per_layer.push((idx, gw, gb));
            }
            Layer::Relu(l) => {
                grad = l.backward(layer_input, &grad);
            }
            Layer::MaxPool2(l) => {
                let argmax = saved_argmax[idx].as_ref().expect("argmax saved in forward");
                grad = l.backward(layer_input.shape().dims(), argmax, &grad);
            }
            Layer::GlobalAvgPool(l) => {
                grad = l.backward(layer_input.shape().dims(), &grad);
            }
            Layer::Flatten(l) => {
                grad = l.backward(layer_input.shape().dims(), &grad)?;
            }
            Layer::BatchNorm2d(_) => unreachable!("rejected in the forward pass"),
        }
    }
    grads.per_layer.reverse();
    Ok((loss, grads))
}

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.05,
            batch_size: 16,
            epochs: 5,
        }
    }
}

/// Applies one SGD update to the model given gradients from [`backward`].
pub fn apply_gradients(model: &mut Model, grads: &Gradients, learning_rate: f32) {
    for (idx, gw, gb) in &grads.per_layer {
        match &mut model.layers_mut()[*idx] {
            Layer::Conv2d(l) => {
                for (w, g) in l.weight.as_mut_slice().iter_mut().zip(gw.as_slice()) {
                    *w -= learning_rate * g;
                }
                for (b, g) in l.bias.iter_mut().zip(gb.iter()) {
                    *b -= learning_rate * g;
                }
            }
            Layer::Linear(l) => {
                for (w, g) in l.weight.as_mut_slice().iter_mut().zip(gw.as_slice()) {
                    *w -= learning_rate * g;
                }
                for (b, g) in l.bias.iter_mut().zip(gb.iter()) {
                    *b -= learning_rate * g;
                }
            }
            _ => {}
        }
    }
}

/// A simple in-memory labeled dataset: a `[N, C, H, W]` image tensor plus one
/// label per image.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Images.
    pub images: Tensor<f32>,
    /// Class labels, one per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts the minibatch covering samples `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the dataset size.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor<f32>, Vec<usize>) {
        let dims = self.images.shape().dims();
        let sample = dims[1] * dims[2] * dims[3];
        assert!(start + len <= self.len(), "batch out of range");
        let data = self.images.as_slice()[start * sample..(start + len) * sample].to_vec();
        let images = Tensor::from_vec(data, &[len, dims[1], dims[2], dims[3]])
            .expect("batch slice matches shape");
        (images, self.labels[start..start + len].to_vec())
    }

    /// Extracts sample `index` as a single-image `[1, C, H, W]` tensor plus
    /// its label — the request-construction hook used by the serving layer,
    /// where every queue entry is one sample.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn sample(&self, index: usize) -> (Tensor<f32>, usize) {
        let (image, labels) = self.batch(index, 1);
        (image, labels[0])
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
}

/// Trains the model with minibatch SGD.
///
/// `post_step` is called after every parameter update; the pruning schedule
/// uses it to re-apply pruning masks so pruned weights stay at zero.
///
/// # Errors
///
/// Propagates layer and configuration errors.
pub fn train<F>(
    model: &mut Model,
    data: &Dataset,
    config: &SgdConfig,
    mut post_step: F,
) -> Result<Vec<EpochRecord>, NnError>
where
    F: FnMut(&mut Model),
{
    if data.is_empty() {
        return Err(NnError::InvalidConfig("empty training set".into()));
    }
    let mut records = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut total_loss = 0.0_f32;
        let mut batches = 0usize;
        let mut start = 0usize;
        while start < data.len() {
            let len = config.batch_size.min(data.len() - start);
            let (images, labels) = data.batch(start, len);
            let (loss, grads) = backward(model, &images, &labels)?;
            apply_gradients(model, &grads, config.learning_rate);
            post_step(model);
            total_loss += loss;
            batches += 1;
            start += len;
        }
        records.push(EpochRecord {
            epoch,
            loss: total_loss / batches.max(1) as f32,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2, Relu};
    use nbsmt_tensor::ops::Conv2dParams;
    use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer, ValueDistribution};

    fn toy_model(seed: u64) -> Model {
        let mut synth = TensorSynthesizer::new(seed);
        let mut m = Model::new("toy");
        m.push(Layer::Conv2d(Conv2d::new(
            Conv2dParams::new(1, 4, 3, 1, 1),
            &mut synth,
        )))
        .push(Layer::Relu(Relu))
        .push(Layer::MaxPool2(MaxPool2))
        .push(Layer::Flatten(Flatten))
        .push(Layer::Linear(Linear::new(4 * 4 * 4, 2, &mut synth)));
        m
    }

    /// Builds a trivially separable two-class dataset: class 0 images are
    /// bright in the top half, class 1 in the bottom half.
    fn toy_dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut synth = TensorSynthesizer::new(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class * 2 {
            let class = i % 2;
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if class == 0 { y < 4 } else { y >= 4 };
                    let noise = (synth.uniform() as f32 - 0.5) * 0.2;
                    let base = if bright { 1.0 } else { 0.0 };
                    let _ = x;
                    data.push(base + noise);
                }
            }
            labels.push(class);
        }
        Dataset {
            images: Tensor::from_vec(data, &[n_per_class * 2, 1, 8, 8]).unwrap(),
            labels,
        }
    }

    #[test]
    fn cross_entropy_basics() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let (loss, grad) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 0.01, "confident correct predictions give low loss");
        assert_eq!(grad.shape().dims(), &[2, 2]);

        let (wrong_loss, _) = cross_entropy(&logits, &[1, 0]).unwrap();
        assert!(wrong_loss > 1.0);

        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.2], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut p = logits.clone();
            p.as_mut_slice()[idx] += eps;
            let mut m = logits.clone();
            m.as_mut_slice()[idx] -= eps;
            let (lp, _) = cross_entropy(&p, &labels).unwrap();
            let (lm, _) = cross_entropy(&m, &labels).unwrap();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[idx]).abs() < 1e-3,
                "idx {idx}: {num} vs {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn backward_produces_gradients_for_every_compute_layer() {
        let model = toy_model(3);
        let data = toy_dataset(4, 5);
        let (images, labels) = data.batch(0, 8);
        let (loss, grads) = backward(&model, &images, &labels).unwrap();
        assert!(loss.is_finite());
        assert_eq!(grads.per_layer.len(), 2);
        // Gradients must not all be zero.
        let any_nonzero = grads
            .per_layer
            .iter()
            .any(|(_, gw, _)| gw.as_slice().iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut model = toy_model(11);
        let data = toy_dataset(16, 13);
        let config = SgdConfig {
            learning_rate: 0.1,
            batch_size: 8,
            epochs: 8,
        };
        let records = train(&mut model, &data, &config, |_| {}).unwrap();
        assert_eq!(records.len(), 8);
        assert!(
            records.last().unwrap().loss < records.first().unwrap().loss,
            "loss should decrease: {records:?}"
        );
        let (images, labels) = data.batch(0, data.len());
        let acc = model.accuracy(&images, &labels).unwrap();
        assert!(
            acc > 0.9,
            "accuracy {acc} too low on a separable toy problem"
        );
    }

    #[test]
    fn post_step_hook_runs_after_every_update() {
        let mut model = toy_model(17);
        let data = toy_dataset(8, 19);
        let mut calls = 0usize;
        train(
            &mut model,
            &data,
            &SgdConfig {
                learning_rate: 0.05,
                batch_size: 4,
                epochs: 2,
            },
            |_| calls += 1,
        )
        .unwrap();
        assert_eq!(calls, 2 * (16 / 4));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = toy_model(1);
        let data = Dataset {
            images: Tensor::<f32>::zeros(&[0, 1, 8, 8]),
            labels: vec![],
        };
        assert!(train(&mut model, &data, &SgdConfig::default(), |_| {}).is_err());
    }

    #[test]
    fn dataset_batching() {
        let data = toy_dataset(4, 23);
        assert_eq!(data.len(), 8);
        let (images, labels) = data.batch(2, 3);
        assert_eq!(images.shape().dims(), &[3, 1, 8, 8]);
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn apply_gradients_moves_weights_down_gradient() {
        let mut model = toy_model(29);
        let before = match &model.layers()[4] {
            Layer::Linear(l) => l.weight.as_slice()[0],
            _ => unreachable!(),
        };
        let gw = Tensor::<f32>::full(&[64, 2], 1.0);
        let grads = Gradients {
            per_layer: vec![(4, gw, vec![1.0, 1.0])],
        };
        apply_gradients(&mut model, &grads, 0.5);
        let after = match &model.layers()[4] {
            Layer::Linear(l) => l.weight.as_slice()[0],
            _ => unreachable!(),
        };
        assert!((before - after - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gaussian_synthesis_helper_used_in_tests_is_reasonable() {
        // Smoke check that the training data generator's noise helper stays
        // in range (guards against accidental misuse of the synthesizer).
        let mut synth = TensorSynthesizer::new(1);
        let t = synth.tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian {
                    mean: 0.0,
                    std: 1.0,
                },
                sparsity: 0.0,
                relu: false,
            },
            &[16],
        );
        assert_eq!(t.numel(), 16);
    }
}
