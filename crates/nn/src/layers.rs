//! Layers: convolution, linear, activation, pooling, normalization.
//!
//! Every layer provides a forward pass on 4-D activation tensors
//! (`[N, C, H, W]`) or flattened feature tensors (`[N, F]`), and the layers
//! with parameters also provide a backward pass so the small synthetic models
//! can be trained from scratch (the paper's pruning experiments retrain the
//! model after every pruning increment).

use serde::{Deserialize, Serialize};

use nbsmt_tensor::ops::{self, Conv2dParams};
use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer, ValueDistribution};
use nbsmt_tensor::tensor::Tensor;

use crate::error::NnError;

/// A 2-D convolution layer (dense or depthwise via groups).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Convolution geometry.
    pub params: Conv2dParams,
    /// Filter weights `[OC, C/groups, K, K]`.
    pub weight: Tensor<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-style random initialization.
    pub fn new(params: Conv2dParams, synth: &mut TensorSynthesizer) -> Self {
        let fan_in = (params.in_channels / params.groups * params.kernel * params.kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = synth.tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian { mean: 0.0, std },
                sparsity: 0.0,
                relu: false,
            },
            &[
                params.out_channels,
                params.in_channels / params.groups,
                params.kernel,
                params.kernel,
            ],
        );
        Conv2d {
            params,
            weight,
            bias: vec![0.0; params.out_channels],
        }
    }

    /// Number of MAC operations for an input of spatial size `h × w`.
    pub fn mac_ops(&self, h: usize, w: usize) -> u64 {
        self.params.mac_ops(h, w)
    }

    /// Forward pass over a `[N, C, H, W]` input.
    ///
    /// # Errors
    ///
    /// Returns an error when the input rank or channel count does not match.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::ShapeMismatch {
                layer: "conv2d".into(),
                detail: format!("expected rank-4 input, got {dims:?}"),
            });
        }
        let (n, _c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let oh = self.params.output_size(h);
        let ow = self.params.output_size(w);
        let groups = self.params.groups;
        let ocg = self.params.out_channels / groups;
        let mut out = Tensor::<f32>::zeros(&[n, self.params.out_channels, oh, ow]);
        for g in 0..groups {
            let cols = ops::im2col(input, &self.params, g)?;
            let wmat = ops::filters_to_matrix(&self.weight, &self.params, g)?;
            let gemm = ops::matmul(&cols, &wmat)?;
            let folded = ops::col2im(&gemm, n, ocg, oh, ow)?;
            // Copy the group's output channels into place and add bias.
            let src = folded.as_slice();
            let dst = out.as_mut_slice();
            for img in 0..n {
                for o in 0..ocg {
                    let oc = g * ocg + o;
                    let b = self.bias[oc];
                    for p in 0..oh * ow {
                        dst[((img * self.params.out_channels + oc) * oh * ow) + p] =
                            src[((img * ocg + o) * oh * ow) + p] + b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass (dense, groups = 1 only): given the upstream gradient
    /// `[N, OC, OH, OW]` and the saved input, computes the input gradient and
    /// accumulates weight/bias gradients.
    ///
    /// # Errors
    ///
    /// Returns an error for grouped convolutions (the trainable synthetic
    /// models only use dense convolutions) or mismatched shapes.
    pub fn backward(
        &self,
        input: &Tensor<f32>,
        grad_out: &Tensor<f32>,
        grad_weight: &mut Tensor<f32>,
        grad_bias: &mut [f32],
    ) -> Result<Tensor<f32>, NnError> {
        if self.params.groups != 1 {
            return Err(NnError::InvalidConfig(
                "backward pass supports dense convolutions only".into(),
            ));
        }
        let in_dims = input.shape().dims();
        let (n, c, h, w) = (in_dims[0], in_dims[1], in_dims[2], in_dims[3]);
        let oh = self.params.output_size(h);
        let ow = self.params.output_size(w);
        let oc = self.params.out_channels;
        let k = self.params.kernel;

        // grad_out reshaped to the GEMM layout [N*OH*OW, OC].
        let go = grad_out.as_slice();
        let mut go_mat = vec![0.0_f32; n * oh * ow * oc];
        for img in 0..n {
            for o in 0..oc {
                for p in 0..oh * ow {
                    go_mat[(img * oh * ow + p) * oc + o] = go[(img * oc + o) * oh * ow + p];
                }
            }
        }
        let go_mat = Tensor::from_vec(go_mat, &[n * oh * ow, oc])?;

        // Weight gradient: cols^T (K_cols × rows) x go_mat (rows × OC).
        let cols = ops::im2col(input, &self.params, 0)?;
        let cols_t = ops::transpose(&cols)?;
        let gw = ops::matmul(&cols_t, &go_mat)?; // [C*K*K, OC]
        {
            let gw_s = gw.as_slice();
            let gwt = grad_weight.as_mut_slice();
            for o in 0..oc {
                for ci in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let row = (ci * k + ky) * k + kx;
                            gwt[((o * c + ci) * k + ky) * k + kx] += gw_s[row * oc + o];
                        }
                    }
                }
            }
        }
        // Bias gradient: sum of grad_out over N, OH, OW per channel.
        for img in 0..n {
            for o in 0..oc {
                for p in 0..oh * ow {
                    grad_bias[o] += go[(img * oc + o) * oh * ow + p];
                }
            }
        }

        // Input gradient: go_mat (rows × OC) x Wmat^T (OC × C*K*K), scattered
        // back through the im2col mapping.
        let wmat = ops::filters_to_matrix(&self.weight, &self.params, 0)?;
        let wmat_t = ops::transpose(&wmat)?;
        let gcols = ops::matmul(&go_mat, &wmat_t)?; // [N*OH*OW, C*K*K]
        let gcols_s = gcols.as_slice();
        let mut gin = Tensor::<f32>::zeros(&[n, c, h, w]);
        let gin_s = gin.as_mut_slice();
        let pad = self.params.padding;
        let stride = self.params.stride;
        let cols_per_row = c * k * k;
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (img * oh + oy) * ow + ox;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = oy * stride + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox * stride + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                let col = (ci * k + ky) * k + kx;
                                gin_s[((img * c + ci) * h + (iy - pad)) * w + (ix - pad)] +=
                                    gcols_s[row * cols_per_row + col];
                            }
                        }
                    }
                }
            }
        }
        Ok(gin)
    }
}

/// A fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Weights `[in_features, out_features]` (GEMM layout).
    pub weight: Tensor<f32>,
    /// Per-output bias.
    pub bias: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer with random initialization.
    pub fn new(in_features: usize, out_features: usize, synth: &mut TensorSynthesizer) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        let weight = synth.tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian { mean: 0.0, std },
                sparsity: 0.0,
                relu: false,
            },
            &[in_features, out_features],
        );
        Linear {
            in_features,
            out_features,
            weight,
            bias: vec![0.0; out_features],
        }
    }

    /// MAC operations per input sample.
    pub fn mac_ops(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    /// Forward pass over a `[N, in_features]` input.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature dimension does not match.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 2 || dims[1] != self.in_features {
            return Err(NnError::ShapeMismatch {
                layer: "linear".into(),
                detail: format!("expected [N, {}], got {dims:?}", self.in_features),
            });
        }
        let mut out = ops::matmul(input, &self.weight)?;
        let o = out.as_mut_slice();
        for r in 0..dims[0] {
            for c in 0..self.out_features {
                o[r * self.out_features + c] += self.bias[c];
            }
        }
        Ok(out)
    }

    /// Backward pass: returns the input gradient and accumulates parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes do not match.
    pub fn backward(
        &self,
        input: &Tensor<f32>,
        grad_out: &Tensor<f32>,
        grad_weight: &mut Tensor<f32>,
        grad_bias: &mut [f32],
    ) -> Result<Tensor<f32>, NnError> {
        let input_t = ops::transpose(input)?;
        let gw = ops::matmul(&input_t, grad_out)?;
        for (acc, g) in grad_weight.as_mut_slice().iter_mut().zip(gw.as_slice()) {
            *acc += *g;
        }
        let go = grad_out.as_slice();
        let n = grad_out.shape().dim(0);
        for r in 0..n {
            for c in 0..self.out_features {
                grad_bias[c] += go[r * self.out_features + c];
            }
        }
        let weight_t = ops::transpose(&self.weight)?;
        Ok(ops::matmul(grad_out, &weight_t)?)
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relu;

impl Relu {
    /// Forward pass: clamps negative values to zero.
    pub fn forward(&self, input: &Tensor<f32>) -> Tensor<f32> {
        input.map(|&v| if v > 0.0 { v } else { 0.0 })
    }

    /// Backward pass: passes gradients where the input was positive.
    pub fn backward(&self, input: &Tensor<f32>, grad_out: &Tensor<f32>) -> Tensor<f32> {
        let mut g = grad_out.clone();
        for (gv, iv) in g.as_mut_slice().iter_mut().zip(input.as_slice()) {
            if *iv <= 0.0 {
                *gv = 0.0;
            }
        }
        g
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2;

impl MaxPool2 {
    /// Forward pass, returning the pooled tensor and the argmax indices used
    /// by the backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 inputs.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<(Tensor<f32>, Vec<usize>), NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::ShapeMismatch {
                layer: "maxpool2".into(),
                detail: format!("expected rank-4 input, got {dims:?}"),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = (h / 2, w / 2);
        let src = input.as_slice();
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oidx = ((img * c + ch) * oh + oy) * ow + ox;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let iidx = ((img * c + ch) * h + iy) * w + ix;
                                if src[iidx] > out[oidx] {
                                    out[oidx] = src[iidx];
                                    argmax[oidx] = iidx;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, argmax))
    }

    /// Backward pass: routes each gradient to the position that won the max.
    pub fn backward(
        &self,
        input_shape: &[usize],
        argmax: &[usize],
        grad_out: &Tensor<f32>,
    ) -> Tensor<f32> {
        let mut gin = Tensor::<f32>::zeros(input_shape);
        let g = gin.as_mut_slice();
        for (go, &idx) in grad_out.as_slice().iter().zip(argmax.iter()) {
            g[idx] += *go;
        }
        gin
    }
}

/// Global average pooling over the spatial dimensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Forward pass: `[N, C, H, W]` → `[N, C]`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 inputs.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::ShapeMismatch {
                layer: "global_avg_pool".into(),
                detail: format!("expected rank-4 input, got {dims:?}"),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let src = input.as_slice();
        let mut out = vec![0.0_f32; n * c];
        let hw = (h * w) as f32;
        for img in 0..n {
            for ch in 0..c {
                let mut acc = 0.0;
                for p in 0..h * w {
                    acc += src[(img * c + ch) * h * w + p];
                }
                out[img * c + ch] = acc / hw;
            }
        }
        Ok(Tensor::from_vec(out, &[n, c])?)
    }

    /// Backward pass: spreads each gradient uniformly over the spatial
    /// positions.
    pub fn backward(&self, input_shape: &[usize], grad_out: &Tensor<f32>) -> Tensor<f32> {
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let mut gin = Tensor::<f32>::zeros(input_shape);
        let g = gin.as_mut_slice();
        let go = grad_out.as_slice();
        let hw = (h * w) as f32;
        for img in 0..n {
            for ch in 0..c {
                let v = go[img * c + ch] / hw;
                for p in 0..h * w {
                    g[(img * c + ch) * h * w + p] = v;
                }
            }
        }
        gin
    }
}

/// Batch normalization over channels (inference-style, with running
/// statistics that can be recalibrated from data as the paper does before
/// quantization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Number of channels.
    pub channels: usize,
    /// Learned scale per channel.
    pub gamma: Vec<f32>,
    /// Learned shift per channel.
    pub beta: Vec<f32>,
    /// Running mean per channel.
    pub running_mean: Vec<f32>,
    /// Running variance per channel.
    pub running_var: Vec<f32>,
    /// Numerical stability constant.
    pub eps: f32,
}

impl BatchNorm2d {
    /// Creates an identity batch-norm layer (unit scale, zero shift).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            eps: 1e-5,
        }
    }

    /// Forward pass using the running statistics.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 inputs or channel mismatches.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::ShapeMismatch {
                layer: "batchnorm2d".into(),
                detail: format!("expected [N, {}, H, W], got {dims:?}", self.channels),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let src = input.as_slice();
        let mut out = vec![0.0_f32; src.len()];
        for img in 0..n {
            for ch in 0..c {
                let scale = self.gamma[ch] / (self.running_var[ch] + self.eps).sqrt();
                let shift = self.beta[ch] - self.running_mean[ch] * scale;
                for p in 0..h * w {
                    let idx = (img * c + ch) * h * w + p;
                    out[idx] = src[idx] * scale + shift;
                }
            }
        }
        Ok(Tensor::from_vec(out, dims)?)
    }

    /// Recalibrates the running mean and variance from a batch of data, the
    /// "batch-norm recalibration" step the paper performs during its quick
    /// statistics-gathering phase.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 inputs or channel mismatches.
    pub fn recalibrate(&mut self, input: &Tensor<f32>) -> Result<(), NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::ShapeMismatch {
                layer: "batchnorm2d".into(),
                detail: format!("expected [N, {}, H, W], got {dims:?}", self.channels),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let src = input.as_slice();
        let count = (n * h * w) as f32;
        for ch in 0..c {
            let mut mean = 0.0f32;
            for img in 0..n {
                for p in 0..h * w {
                    mean += src[(img * c + ch) * h * w + p];
                }
            }
            mean /= count;
            let mut var = 0.0f32;
            for img in 0..n {
                for p in 0..h * w {
                    let d = src[(img * c + ch) * h * w + p] - mean;
                    var += d * d;
                }
            }
            var /= count;
            self.running_mean[ch] = mean;
            self.running_var[ch] = var;
        }
        Ok(())
    }
}

/// Flattens a `[N, C, H, W]` tensor into `[N, C*H*W]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flatten;

impl Flatten {
    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns an error for inputs of rank < 2.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let dims = input.shape().dims();
        if dims.len() < 2 {
            return Err(NnError::ShapeMismatch {
                layer: "flatten".into(),
                detail: format!("expected rank >= 2, got {dims:?}"),
            });
        }
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        Ok(input.clone().reshape(&[n, rest])?)
    }

    /// Backward pass: reshapes the gradient back to the saved input shape.
    ///
    /// # Errors
    ///
    /// Returns an error when the element counts differ.
    pub fn backward(
        &self,
        input_shape: &[usize],
        grad_out: &Tensor<f32>,
    ) -> Result<Tensor<f32>, NnError> {
        Ok(grad_out.clone().reshape(input_shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth() -> TensorSynthesizer {
        TensorSynthesizer::new(1234)
    }

    #[test]
    fn conv_forward_shape_and_bias() {
        let mut s = synth();
        let mut conv = Conv2d::new(Conv2dParams::new(2, 4, 3, 1, 1), &mut s);
        conv.bias = vec![1.0, 2.0, 3.0, 4.0];
        let input = Tensor::<f32>::zeros(&[2, 2, 8, 8]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 8, 8]);
        // Zero input: output equals the bias per channel.
        assert!((out.get(&[0, 2, 3, 3]).unwrap() - 3.0).abs() < 1e-6);
        assert!((out.get(&[1, 0, 0, 0]).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conv_rejects_bad_input_rank() {
        let mut s = synth();
        let conv = Conv2d::new(Conv2dParams::new(2, 4, 3, 1, 1), &mut s);
        let input = Tensor::<f32>::zeros(&[2, 8, 8]);
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn conv_gradients_match_numerical_estimate() {
        let mut s = synth();
        let mut conv = Conv2d::new(Conv2dParams::new(1, 2, 3, 1, 1), &mut s);
        conv.bias = vec![0.1, -0.2];
        let input = s.tensor(
            &SynthesisConfig {
                distribution: ValueDistribution::Gaussian {
                    mean: 0.0,
                    std: 1.0,
                },
                sparsity: 0.0,
                relu: false,
            },
            &[1, 1, 4, 4],
        );
        // Loss = sum(output); grad_out = ones.
        let out = conv.forward(&input).unwrap();
        let grad_out = Tensor::full(out.shape().dims(), 1.0f32);
        let mut gw = Tensor::<f32>::zeros(conv.weight.shape().dims());
        let mut gb = vec![0.0f32; 2];
        let gin = conv.backward(&input, &grad_out, &mut gw, &mut gb).unwrap();

        // Numerical gradient for a few weight entries.
        let eps = 1e-3;
        for &idx in &[0usize, 5, 10, 17] {
            let mut plus = conv.clone();
            plus.weight.as_mut_slice()[idx] += eps;
            let mut minus = conv.clone();
            minus.weight.as_mut_slice()[idx] -= eps;
            let lp = plus.forward(&input).unwrap().sum();
            let lm = minus.forward(&input).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "weight grad mismatch at {idx}: numerical {num} vs analytic {ana}"
            );
        }
        // Numerical gradient for a few input entries.
        for &idx in &[0usize, 7, 15] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let lp = conv.forward(&plus).unwrap().sum();
            let lm = conv.forward(&minus).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gin.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "input grad mismatch at {idx}: numerical {num} vs analytic {ana}"
            );
        }
        // Bias gradient equals the number of output positions.
        assert!((gb[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn linear_forward_and_gradients() {
        let mut s = synth();
        let mut lin = Linear::new(3, 2, &mut s);
        lin.bias = vec![0.5, -0.5];
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = lin.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2]);

        let grad_out = Tensor::full(&[2, 2], 1.0f32);
        let mut gw = Tensor::<f32>::zeros(&[3, 2]);
        let mut gb = vec![0.0f32; 2];
        let gin = lin.backward(&input, &grad_out, &mut gw, &mut gb).unwrap();
        assert_eq!(gin.shape().dims(), &[2, 3]);
        // dL/db = sum over batch of ones = 2 per output.
        assert!((gb[0] - 2.0).abs() < 1e-6);
        // dL/dW[i][j] = sum over batch of input[:, i].
        assert!((gw.as_slice()[0] - (1.0 + -1.0)).abs() < 1e-6);
        assert!((gw.as_slice()[2] - (2.0 + 0.0)).abs() < 1e-6);
        // dL/dx = W * ones = row sums of W.
        let w = lin.weight.as_slice();
        assert!((gin.as_slice()[0] - (w[0] + w[1])).abs() < 1e-5);
        // Shape mismatch is rejected.
        assert!(lin.forward(&Tensor::<f32>::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn relu_forward_backward() {
        let r = Relu;
        let input = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let out = r.forward(&input);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0]);
        let grad = r.backward(&input, &Tensor::full(&[3], 1.0f32));
        assert_eq!(grad.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_forward_and_backward_route_gradients() {
        let p = MaxPool2;
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, argmax) = p.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        let grad = p.backward(&[1, 1, 4, 4], &argmax, &Tensor::full(&[1, 1, 2, 2], 1.0f32));
        // Gradient lands only on the max positions.
        assert_eq!(grad.as_slice().iter().filter(|&&v| v == 1.0).count(), 4);
        assert_eq!(grad.get(&[0, 0, 1, 1]).unwrap(), &1.0);
        assert!(p.forward(&Tensor::<f32>::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn global_avg_pool_forward_backward() {
        let p = GlobalAvgPool;
        let input = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let out = p.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2]);
        assert!((out.as_slice()[0] - 2.5).abs() < 1e-6);
        assert!((out.as_slice()[1] - 6.5).abs() < 1e-6);
        let grad = p.backward(
            &[1, 2, 2, 2],
            &Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap(),
        );
        assert!(grad.as_slice()[..4].iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!(grad.as_slice()[4..].iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn batchnorm_identity_and_recalibration() {
        let mut bn = BatchNorm2d::new(2);
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        // Identity parameters and unit variance: output ~ input.
        let out = bn.forward(&input).unwrap();
        for (a, b) in out.as_slice().iter().zip(input.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
        // After recalibration, each channel is normalized to zero mean.
        bn.recalibrate(&input).unwrap();
        let out = bn.forward(&input).unwrap();
        let ch0_mean: f32 = out.as_slice()[..4].iter().sum::<f32>() / 4.0;
        let ch1_mean: f32 = out.as_slice()[4..].iter().sum::<f32>() / 4.0;
        assert!(ch0_mean.abs() < 1e-4);
        assert!(ch1_mean.abs() < 1e-4);
        assert!(bn.forward(&Tensor::<f32>::zeros(&[1, 3, 2, 2])).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let f = Flatten;
        let input = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 1, 2]).unwrap();
        let out = f.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 6]);
        let back = f.backward(&[2, 3, 1, 2], &out).unwrap();
        assert_eq!(back.as_slice(), input.as_slice());
        assert!(f.forward(&Tensor::<f32>::zeros(&[3])).is_err());
    }

    #[test]
    fn depthwise_conv_forward() {
        let mut s = synth();
        let conv = Conv2d::new(Conv2dParams::depthwise(3, 3, 1, 1), &mut s);
        let input = s.tensor(&SynthesisConfig::activation(1.0, 0.0), &[1, 3, 6, 6]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 3, 6, 6]);
        // Backward is unsupported for grouped convolutions.
        let mut gw = Tensor::<f32>::zeros(conv.weight.shape().dims());
        let mut gb = vec![0.0; 3];
        assert!(conv.backward(&input, &out, &mut gw, &mut gb).is_err());
    }
}
