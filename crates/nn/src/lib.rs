//! # nbsmt-nn
//!
//! A small but complete CNN inference and training framework for the NB-SMT /
//! SySMT reproduction.
//!
//! The paper runs its accuracy experiments on PyTorch models whose
//! convolutions are lowered to matrix multiplications; we substitute a
//! from-scratch framework that provides the same pipeline end to end:
//!
//! * [`layers`] — convolution (dense and depthwise), linear, ReLU, max /
//!   global-average pooling, batch normalization (with recalibration), and
//!   flattening, each with a forward pass and (for trainable layers) a
//!   backward pass,
//! * [`model`] — sequential model container, forward execution, accuracy,
//! * [`train`] — softmax cross-entropy, backpropagation, minibatch SGD (used
//!   by the pruning retraining loop),
//! * [`quantized`] — calibration and quantized execution with a pluggable
//!   GEMM engine ([`quantized::GemmEngine`]), which is where the NB-SMT
//!   emulation from `nbsmt-core` plugs in.
//!
//! ```
//! use nbsmt_nn::layers::Relu;
//! use nbsmt_tensor::tensor::Tensor;
//!
//! let relu = Relu;
//! let t = Tensor::from_vec(vec![-1.0_f32, 2.0], &[2]).unwrap();
//! assert_eq!(relu.forward(&t).as_slice(), &[0.0, 2.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod layers;
pub mod model;
pub mod quantized;
pub mod train;

pub use error::NnError;
pub use model::{Layer, Model};
pub use quantized::{GemmEngine, QuantizedModel, ReducedPrecisionEngine, ReferenceEngine};
pub use train::{Dataset, SgdConfig};
