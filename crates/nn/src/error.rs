//! Error type for the neural-network framework.

use std::error::Error;
use std::fmt;

use nbsmt_tensor::error::TensorError;

/// Error returned by model construction, inference, and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input of an unexpected shape.
    ShapeMismatch {
        /// The layer that rejected its input.
        layer: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The model configuration is inconsistent (e.g. empty model, label out
    /// of range).
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch in {layer}: {detail}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::InvalidArgument("bad".into()));
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());

        let e = NnError::ShapeMismatch {
            layer: "conv1".into(),
            detail: "expected 3 channels".into(),
        };
        assert!(e.to_string().contains("conv1"));
        assert!(e.source().is_none());

        let e = NnError::InvalidConfig("empty model".into());
        assert!(e.to_string().contains("empty model"));
    }
}
