//! Structural model zoo: layer-shape inventories of the CNNs the paper
//! evaluates (Table I) plus MobileNet-v1 (the MLPerf section).
//!
//! The pretrained ImageNet models themselves are not available offline, so
//! each model is represented by the exact sequence of its compute layers —
//! convolution geometry, GEMM dimensions, and MAC counts — which is all the
//! utilization, energy, and speedup experiments need. Value-dependent
//! experiments attach calibrated synthetic tensors to these layers (see
//! [`crate::calib`]).

use serde::{Deserialize, Serialize};

/// The kind of compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Dense convolution.
    Conv,
    /// Depthwise convolution (one filter per channel).
    Depthwise,
    /// Pointwise (1×1) convolution.
    Pointwise,
    /// Fully connected layer.
    FullyConnected,
}

/// One compute layer of a zoo model, described by its GEMM dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// GEMM rows per image (`OH × OW` for convolutions, 1 for FC).
    pub m: usize,
    /// GEMM reduction dimension (`Cin/groups × K × K`).
    pub k: usize,
    /// GEMM columns (`Cout/groups`).
    pub n: usize,
    /// Number of groups (1 for dense convolutions).
    pub groups: usize,
}

impl LayerSpec {
    /// MAC operations of the layer for one input image.
    pub fn mac_ops(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64 * self.groups as u64
    }

    /// Creates a dense convolution layer spec from its geometry.
    pub fn conv(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        in_size: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let out_size = (in_size + 2 * padding - kernel) / stride + 1;
        LayerSpec {
            name: name.into(),
            kind: if kernel == 1 {
                LayerKind::Pointwise
            } else {
                LayerKind::Conv
            },
            m: out_size * out_size,
            k: in_ch * kernel * kernel,
            n: out_ch,
            groups: 1,
        }
    }

    /// Creates a depthwise convolution layer spec.
    pub fn depthwise(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        in_size: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let out_size = (in_size + 2 * padding - kernel) / stride + 1;
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Depthwise,
            m: out_size * out_size,
            k: kernel * kernel,
            n: 1,
            groups: channels,
        }
    }

    /// Creates a fully connected layer spec.
    pub fn fc(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            m: 1,
            k: in_features,
            n: out_features,
            groups: 1,
        }
    }
}

/// A zoo model: a named sequence of compute layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (as used in the paper's tables).
    pub name: String,
    /// Compute layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total convolution MAC operations per image.
    pub fn conv_mac_ops(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind != LayerKind::FullyConnected)
            .map(|l| l.mac_ops())
            .sum()
    }

    /// Total fully connected MAC operations per image.
    pub fn fc_mac_ops(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind == LayerKind::FullyConnected)
            .map(|l| l.mac_ops())
            .sum()
    }

    /// Total MAC operations per image.
    pub fn total_mac_ops(&self) -> u64 {
        self.conv_mac_ops() + self.fc_mac_ops()
    }

    /// The layers NB-SMT executes (the paper leaves the first convolution and
    /// the fully connected layers intact).
    pub fn nbsmt_layers(&self) -> Vec<&LayerSpec> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(i, l)| *i != 0 && l.kind != LayerKind::FullyConnected)
            .map(|(_, l)| l)
            .collect()
    }
}

/// AlexNet (the one-weird-trick variant used by torchvision).
pub fn alexnet() -> ModelSpec {
    let layers = vec![
        LayerSpec::conv("conv1", 3, 64, 11, 224, 4, 2),
        LayerSpec::conv("conv2", 64, 192, 5, 27, 1, 2),
        LayerSpec::conv("conv3", 192, 384, 3, 13, 1, 1),
        LayerSpec::conv("conv4", 384, 256, 3, 13, 1, 1),
        LayerSpec::conv("conv5", 256, 256, 3, 13, 1, 1),
        LayerSpec::fc("fc6", 256 * 6 * 6, 4096),
        LayerSpec::fc("fc7", 4096, 4096),
        LayerSpec::fc("fc8", 4096, 1000),
    ];
    ModelSpec {
        name: "AlexNet".into(),
        layers,
    }
}

/// ResNet-18.
pub fn resnet18() -> ModelSpec {
    let mut layers = vec![LayerSpec::conv("conv1", 3, 64, 7, 224, 2, 3)];
    let stages: [(usize, usize, usize); 4] = [
        // (channels, blocks, input spatial size of the stage)
        (64, 2, 56),
        (128, 2, 56),
        (256, 2, 28),
        (512, 2, 14),
    ];
    let mut in_ch = 64;
    for (s, &(ch, blocks, in_size)) in stages.iter().enumerate() {
        let stride = if s == 0 { 1 } else { 2 };
        let out_size = in_size / stride;
        for b in 0..blocks {
            let (block_in, block_stride, block_in_size) = if b == 0 {
                (in_ch, stride, in_size)
            } else {
                (ch, 1, out_size)
            };
            layers.push(LayerSpec::conv(
                format!("layer{}_{}_conv1", s + 1, b),
                block_in,
                ch,
                3,
                block_in_size,
                block_stride,
                1,
            ));
            layers.push(LayerSpec::conv(
                format!("layer{}_{}_conv2", s + 1, b),
                ch,
                ch,
                3,
                out_size,
                1,
                1,
            ));
            if b == 0 && (block_in != ch || block_stride != 1) {
                layers.push(LayerSpec::conv(
                    format!("layer{}_{}_downsample", s + 1, b),
                    block_in,
                    ch,
                    1,
                    block_in_size,
                    block_stride,
                    0,
                ));
            }
        }
        in_ch = ch;
    }
    layers.push(LayerSpec::fc("fc", 512, 1000));
    ModelSpec {
        name: "ResNet-18".into(),
        layers,
    }
}

/// ResNet-50 (bottleneck blocks).
pub fn resnet50() -> ModelSpec {
    let mut layers = vec![LayerSpec::conv("conv1", 3, 64, 7, 224, 2, 3)];
    let stages: [(usize, usize, usize); 4] =
        [(64, 3, 56), (128, 4, 56), (256, 6, 28), (512, 14, 14)];
    // Note: stage block counts for ResNet-50 are [3, 4, 6, 3]; the tuple above
    // encodes (width, blocks, input size) and the last stage is fixed below.
    let block_counts = [3usize, 4, 6, 3];
    let mut in_ch = 64;
    for (s, &(width, _, in_size)) in stages.iter().enumerate() {
        let blocks = block_counts[s];
        let stride = if s == 0 { 1 } else { 2 };
        let out_size = in_size / stride;
        let out_ch = width * 4;
        for b in 0..blocks {
            let (block_in, block_stride, block_in_size) = if b == 0 {
                (in_ch, stride, in_size)
            } else {
                (out_ch, 1, out_size)
            };
            layers.push(LayerSpec::conv(
                format!("layer{}_{}_conv1", s + 1, b),
                block_in,
                width,
                1,
                block_in_size,
                1,
                0,
            ));
            layers.push(LayerSpec::conv(
                format!("layer{}_{}_conv2", s + 1, b),
                width,
                width,
                3,
                block_in_size,
                block_stride,
                1,
            ));
            layers.push(LayerSpec::conv(
                format!("layer{}_{}_conv3", s + 1, b),
                width,
                out_ch,
                1,
                out_size,
                1,
                0,
            ));
            if b == 0 {
                layers.push(LayerSpec::conv(
                    format!("layer{}_{}_downsample", s + 1, b),
                    block_in,
                    out_ch,
                    1,
                    block_in_size,
                    block_stride,
                    0,
                ));
            }
        }
        in_ch = out_ch;
    }
    layers.push(LayerSpec::fc("fc", 2048, 1000));
    ModelSpec {
        name: "ResNet-50".into(),
        layers,
    }
}

/// GoogLeNet (Inception v1). Branch channel configurations follow the
/// original paper's table.
pub fn googlenet() -> ModelSpec {
    // (name, in_ch, size, [1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj])
    let inception: [(&str, usize, usize, [usize; 6]); 9] = [
        ("3a", 192, 28, [64, 96, 128, 16, 32, 32]),
        ("3b", 256, 28, [128, 128, 192, 32, 96, 64]),
        ("4a", 480, 14, [192, 96, 208, 16, 48, 64]),
        ("4b", 512, 14, [160, 112, 224, 24, 64, 64]),
        ("4c", 512, 14, [128, 128, 256, 24, 64, 64]),
        ("4d", 512, 14, [112, 144, 288, 32, 64, 64]),
        ("4e", 528, 14, [256, 160, 320, 32, 128, 128]),
        ("5a", 832, 7, [256, 160, 320, 32, 128, 128]),
        ("5b", 832, 7, [384, 192, 384, 48, 128, 128]),
    ];
    let mut layers = vec![
        LayerSpec::conv("conv1", 3, 64, 7, 224, 2, 3),
        LayerSpec::conv("conv2_reduce", 64, 64, 1, 56, 1, 0),
        LayerSpec::conv("conv2", 64, 192, 3, 56, 1, 1),
    ];
    for (name, in_ch, size, cfg) in inception {
        let [b1, b3r, b3, b5r, b5, pp] = cfg;
        layers.push(LayerSpec::conv(
            format!("inception{name}_1x1"),
            in_ch,
            b1,
            1,
            size,
            1,
            0,
        ));
        layers.push(LayerSpec::conv(
            format!("inception{name}_3x3_reduce"),
            in_ch,
            b3r,
            1,
            size,
            1,
            0,
        ));
        layers.push(LayerSpec::conv(
            format!("inception{name}_3x3"),
            b3r,
            b3,
            3,
            size,
            1,
            1,
        ));
        layers.push(LayerSpec::conv(
            format!("inception{name}_5x5_reduce"),
            in_ch,
            b5r,
            1,
            size,
            1,
            0,
        ));
        layers.push(LayerSpec::conv(
            format!("inception{name}_5x5"),
            b5r,
            b5,
            3,
            size,
            1,
            1,
        ));
        layers.push(LayerSpec::conv(
            format!("inception{name}_pool_proj"),
            in_ch,
            pp,
            1,
            size,
            1,
            0,
        ));
    }
    layers.push(LayerSpec::fc("fc", 1024, 1000));
    ModelSpec {
        name: "GoogLeNet".into(),
        layers,
    }
}

/// DenseNet-121 (growth rate 32, blocks of 6/12/24/16 layers with 1×1
/// bottlenecks and 1×1 transition convolutions).
pub fn densenet121() -> ModelSpec {
    let growth = 32usize;
    let mut layers = vec![LayerSpec::conv("conv0", 3, 64, 7, 224, 2, 3)];
    let block_sizes = [6usize, 12, 24, 16];
    let mut channels = 64usize;
    let mut size = 56usize;
    for (b, &block_len) in block_sizes.iter().enumerate() {
        for l in 0..block_len {
            layers.push(LayerSpec::conv(
                format!("dense{}_{}_bottleneck", b + 1, l),
                channels,
                4 * growth,
                1,
                size,
                1,
                0,
            ));
            layers.push(LayerSpec::conv(
                format!("dense{}_{}_conv", b + 1, l),
                4 * growth,
                growth,
                3,
                size,
                1,
                1,
            ));
            channels += growth;
        }
        if b < block_sizes.len() - 1 {
            layers.push(LayerSpec::conv(
                format!("transition{}", b + 1),
                channels,
                channels / 2,
                1,
                size,
                1,
                0,
            ));
            channels /= 2;
            size /= 2;
        }
    }
    layers.push(LayerSpec::fc("fc", channels, 1000));
    ModelSpec {
        name: "DenseNet-121".into(),
        layers,
    }
}

/// MobileNet-v1 (depthwise-separable blocks), used by the MLPerf experiment.
pub fn mobilenet_v1() -> ModelSpec {
    let mut layers = vec![LayerSpec::conv("conv1", 3, 32, 3, 224, 2, 1)];
    // (in_ch, out_ch, stride, input size)
    let blocks: [(usize, usize, usize, usize); 13] = [
        (32, 64, 1, 112),
        (64, 128, 2, 112),
        (128, 128, 1, 56),
        (128, 256, 2, 56),
        (256, 256, 1, 28),
        (256, 512, 2, 28),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ];
    for (i, &(in_ch, out_ch, stride, size)) in blocks.iter().enumerate() {
        layers.push(LayerSpec::depthwise(
            format!("dw{}", i + 1),
            in_ch,
            3,
            size,
            stride,
            1,
        ));
        let out_size = size / stride;
        layers.push(LayerSpec::conv(
            format!("pw{}", i + 1),
            in_ch,
            out_ch,
            1,
            out_size,
            1,
            0,
        ));
    }
    layers.push(LayerSpec::fc("fc", 1024, 1000));
    ModelSpec {
        name: "MobileNet-v1".into(),
        layers,
    }
}

/// The five CNNs of Table I, in the paper's order.
pub fn table1_models() -> Vec<ModelSpec> {
    vec![
        alexnet(),
        resnet18(),
        resnet50(),
        googlenet(),
        densenet121(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn giga(macs: u64) -> f64 {
        macs as f64 / 1e9
    }

    #[test]
    fn layer_spec_mac_counting() {
        let l = LayerSpec::conv("c", 3, 64, 3, 32, 1, 1);
        assert_eq!(l.mac_ops(), 32 * 32 * 3 * 9 * 64);
        let d = LayerSpec::depthwise("d", 32, 3, 16, 1, 1);
        assert_eq!(d.mac_ops(), 16 * 16 * 9 * 32);
        let f = LayerSpec::fc("f", 100, 10);
        assert_eq!(f.mac_ops(), 1000);
        assert_eq!(f.kind, LayerKind::FullyConnected);
        assert_eq!(
            LayerSpec::conv("p", 8, 8, 1, 4, 1, 0).kind,
            LayerKind::Pointwise
        );
    }

    /// Table I reports the per-image MAC counts of the five models; the
    /// structural zoo must land close to those numbers.
    #[test]
    fn table1_mac_counts_match_paper() {
        let cases: [(ModelSpec, f64, f64); 5] = [
            (alexnet(), 0.6, 0.059 * 1000.0),
            (resnet18(), 1.8, 0.5),
            (resnet50(), 4.1, 2.0),
            (googlenet(), 1.5, 1.0),
            (densenet121(), 2.7, 1.0),
        ];
        for (model, conv_g, fc_m) in cases {
            let conv = giga(model.conv_mac_ops());
            assert!(
                (conv - conv_g).abs() / conv_g < 0.25,
                "{}: conv MACs {conv:.2}G vs paper {conv_g}G",
                model.name
            );
            let fc = model.fc_mac_ops() as f64 / 1e6;
            assert!(
                (fc - fc_m).abs() / fc_m < 0.30,
                "{}: FC MACs {fc:.1}M vs paper {fc_m}M",
                model.name
            );
        }
    }

    #[test]
    fn resnet18_structure() {
        let m = resnet18();
        // conv1 + 4 stages * (2 blocks * 2 convs) + 3 downsample convs + fc
        assert_eq!(m.layers.len(), 1 + 16 + 3 + 1);
        assert_eq!(m.layers.last().unwrap().kind, LayerKind::FullyConnected);
        // NB-SMT layers exclude the first conv and the FC layer.
        assert_eq!(m.nbsmt_layers().len(), m.layers.len() - 2);
    }

    #[test]
    fn googlenet_has_nine_inception_modules() {
        let m = googlenet();
        let inception_layers = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("inception"))
            .count();
        assert_eq!(inception_layers, 9 * 6);
    }

    #[test]
    fn densenet_has_58_dense_convs_plus_transitions() {
        let m = densenet121();
        let dense = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("dense"))
            .count();
        assert_eq!(dense, 2 * (6 + 12 + 24 + 16));
        let transitions = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("transition"))
            .count();
        assert_eq!(transitions, 3);
        // Final feature count of DenseNet-121 is 1024.
        assert_eq!(m.layers.last().unwrap().k, 1024);
    }

    #[test]
    fn mobilenet_alternates_depthwise_and_pointwise() {
        let m = mobilenet_v1();
        let dw = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Depthwise)
            .count();
        let pw = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Pointwise)
            .count();
        assert_eq!(dw, 13);
        assert_eq!(pw, 13);
        // Pointwise convolutions dominate the MACs (they run at 2T in the
        // MLPerf experiment).
        let dw_macs: u64 = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Depthwise)
            .map(|l| l.mac_ops())
            .sum();
        let pw_macs: u64 = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Pointwise)
            .map(|l| l.mac_ops())
            .sum();
        assert!(pw_macs > 10 * dw_macs);
    }

    #[test]
    fn table1_returns_five_models() {
        let models = table1_models();
        assert_eq!(models.len(), 5);
        assert_eq!(models[0].name, "AlexNet");
        assert_eq!(models[4].name, "DenseNet-121");
    }
}
