//! # nbsmt-workloads
//!
//! Workloads for the NB-SMT / SySMT reproduction.
//!
//! * [`zoo`] — structural inventories (layer shapes, GEMM dimensions, MAC
//!   counts) of the CNNs the paper evaluates: AlexNet, ResNet-18, ResNet-50,
//!   GoogLeNet, DenseNet-121, and MobileNet-v1,
//! * [`calib`] — calibrated synthetic quantized tensors for those layers
//!   (bell-shaped values, post-ReLU sparsity, pruning), used by the
//!   utilization, MSE, and energy experiments,
//! * [`synthnet`] — SynthNet, a small CNN trained from scratch on a
//!   procedural dataset, used by the accuracy-shaped experiments
//!   (see ARCHITECTURE.md, substitution 1).
//!
//! ```
//! use nbsmt_workloads::zoo::resnet18;
//!
//! let model = resnet18();
//! // Table I: ResNet-18 performs about 1.8 G convolution MACs per image.
//! assert!((model.conv_mac_ops() as f64 / 1e9 - 1.8).abs() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod synthnet;
pub mod zoo;

pub use calib::{synthesize_layer, synthesize_model, SynthesisOptions, SynthesizedLayer};
pub use synthnet::{
    build_synthnet, generate_dataset, train_synthnet, SynthTaskConfig, TrainedSynthNet,
};
pub use zoo::{table1_models, LayerKind, LayerSpec, ModelSpec};
