//! SynthNet: a small CNN trained from scratch on a procedural dataset.
//!
//! The paper's accuracy experiments (Tables III–V, Figs. 7 and 10) measure
//! end-to-end classification accuracy on ImageNet-pretrained models.
//! Pretrained checkpoints are not available offline, so the accuracy-shaped
//! experiments run on SynthNet: a compact CNN trained on a synthetic
//! image-classification task whose classes are procedurally generated
//! spatial patterns with additive noise. Absolute accuracies differ from
//! ImageNet, but the *relative* behaviour under NB-SMT (2T ≈ baseline, 4T
//! worse, reordering and pruning help, per-layer slowdowns recover accuracy)
//! is what the experiments reproduce. See ARCHITECTURE.md, substitution 1.

use serde::{Deserialize, Serialize};

use nbsmt_nn::layers::{Conv2d, Flatten, Linear, MaxPool2, Relu};
use nbsmt_nn::model::{Layer, Model};
use nbsmt_nn::train::{train, Dataset, EpochRecord, SgdConfig};
use nbsmt_nn::NnError;
use nbsmt_tensor::ops::Conv2dParams;
use nbsmt_tensor::random::TensorSynthesizer;
use nbsmt_tensor::tensor::Tensor;

/// Configuration of the synthetic classification task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthTaskConfig {
    /// Number of classes.
    pub classes: usize,
    /// Square image size.
    pub image_size: usize,
    /// Standard deviation of the additive noise.
    pub noise: f32,
}

impl Default for SynthTaskConfig {
    fn default() -> Self {
        SynthTaskConfig {
            classes: 8,
            image_size: 16,
            noise: 0.25,
        }
    }
}

/// Generates a labeled synthetic dataset.
///
/// Each class is a distinct spatial pattern (an oriented grating whose
/// frequency and orientation depend on the class index) plus Gaussian noise,
/// so the task is learnable by a small CNN but not trivially linearly
/// separable at high noise.
pub fn generate_dataset(config: &SynthTaskConfig, samples_per_class: usize, seed: u64) -> Dataset {
    let mut synth = TensorSynthesizer::new(seed);
    let size = config.image_size;
    let n = config.classes * samples_per_class;
    let mut data = Vec::with_capacity(n * size * size);
    let mut labels = Vec::with_capacity(n);
    for s in 0..n {
        let class = s % config.classes;
        // Class-dependent oriented grating.
        let angle = std::f32::consts::PI * class as f32 / config.classes as f32;
        let freq = 1.0 + (class % 4) as f32;
        let (cos_a, sin_a) = (angle.cos(), angle.sin());
        // Random phase per sample keeps the task non-trivial.
        let phase = synth.uniform() as f32 * std::f32::consts::TAU;
        for y in 0..size {
            for x in 0..size {
                let u = x as f32 / size as f32;
                let v = y as f32 / size as f32;
                let t = (u * cos_a + v * sin_a) * freq * std::f32::consts::TAU + phase;
                let noise = (synth.uniform() as f32 - 0.5) * 2.0 * config.noise;
                data.push(0.5 + 0.5 * t.sin() + noise);
            }
        }
        labels.push(class);
    }
    Dataset {
        images: Tensor::from_vec(data, &[n, 1, size, size]).expect("matching dims"),
        labels,
    }
}

/// Builds the (untrained) SynthNet model: three convolutional stages followed
/// by a classifier, all NB-SMT-executable (dense convolutions and a linear
/// layer).
pub fn build_synthnet(config: &SynthTaskConfig, seed: u64) -> Model {
    let mut synth = TensorSynthesizer::new(seed);
    let s = config.image_size;
    let mut m = Model::new("SynthNet");
    m.push(Layer::Conv2d(Conv2d::new(
        Conv2dParams::new(1, 8, 3, 1, 1),
        &mut synth,
    )))
    .push(Layer::Relu(Relu))
    .push(Layer::MaxPool2(MaxPool2))
    .push(Layer::Conv2d(Conv2d::new(
        Conv2dParams::new(8, 16, 3, 1, 1),
        &mut synth,
    )))
    .push(Layer::Relu(Relu))
    .push(Layer::MaxPool2(MaxPool2))
    .push(Layer::Conv2d(Conv2d::new(
        Conv2dParams::new(16, 32, 3, 1, 1),
        &mut synth,
    )))
    .push(Layer::Relu(Relu))
    .push(Layer::Flatten(Flatten))
    .push(Layer::Linear(Linear::new(
        32 * (s / 4) * (s / 4),
        config.classes,
        &mut synth,
    )));
    m
}

/// A trained SynthNet together with its train/test splits.
#[derive(Debug, Clone)]
pub struct TrainedSynthNet {
    /// The trained model.
    pub model: Model,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Per-epoch training records.
    pub history: Vec<EpochRecord>,
    /// The task configuration.
    pub task: SynthTaskConfig,
}

impl TrainedSynthNet {
    /// FP32 accuracy of the trained model on the held-out split.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn test_accuracy(&self) -> Result<f64, NnError> {
        let (images, labels) = self.test.batch(0, self.test.len());
        self.model.accuracy(&images, &labels)
    }

    /// Per-sample input dimensions `(channels, height, width)` of this
    /// network's requests.
    pub fn input_dims(&self) -> [usize; 3] {
        [1, self.task.image_size, self.task.image_size]
    }

    /// A calibration batch of `samples` per class drawn from the task with
    /// `seed` — the quantization-calibration hook for session construction
    /// (the paper's "quick statistics gathering run").
    pub fn calibration_inputs(&self, samples_per_class: usize, seed: u64) -> Tensor<f32> {
        let calib = generate_dataset(&self.task, samples_per_class, seed);
        let (images, _) = calib.batch(0, calib.len());
        images
    }

    /// `n` single-sample request tensors (each `[1, C, H, W]`) with their
    /// ground-truth labels, drawn from a fresh seeded dataset — the
    /// request-pool hook the serving load generator feeds from.
    pub fn sample_requests(&self, n: usize, seed: u64) -> (Vec<Tensor<f32>>, Vec<usize>) {
        let per_class = n.div_ceil(self.task.classes).max(1);
        let pool = generate_dataset(&self.task, per_class, seed);
        let take = n.min(pool.len());
        let mut inputs = Vec::with_capacity(take);
        let mut labels = Vec::with_capacity(take);
        for i in 0..take {
            let (image, label) = pool.sample(i);
            inputs.push(image);
            labels.push(label);
        }
        (inputs, labels)
    }
}

/// Trains SynthNet end to end. `train_per_class` / `test_per_class` control
/// the dataset size; the defaults in [`quick_synthnet`] keep this fast enough
/// for unit tests while the benchmark harness uses larger splits.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_synthnet(
    task: &SynthTaskConfig,
    train_per_class: usize,
    test_per_class: usize,
    epochs: usize,
    seed: u64,
) -> Result<TrainedSynthNet, NnError> {
    let train_set = generate_dataset(task, train_per_class, seed);
    let test_set = generate_dataset(task, test_per_class, seed.wrapping_add(1));
    let mut model = build_synthnet(task, seed.wrapping_add(2));
    let config = SgdConfig {
        learning_rate: 0.08,
        batch_size: 16,
        epochs,
    };
    let history = train(&mut model, &train_set, &config, |_| {})?;
    Ok(TrainedSynthNet {
        model,
        train: train_set,
        test: test_set,
        history,
        task: *task,
    }
    .normalize())
}

impl TrainedSynthNet {
    fn normalize(self) -> Self {
        self
    }
}

/// Trains a small SynthNet suitable for unit tests (seconds, ≥80 % accuracy).
///
/// # Errors
///
/// Propagates training errors.
pub fn quick_synthnet(seed: u64) -> Result<TrainedSynthNet, NnError> {
    let task = SynthTaskConfig {
        classes: 4,
        image_size: 12,
        noise: 0.2,
    };
    train_synthnet(&task, 24, 12, 6, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_generation_shapes_and_labels() {
        let cfg = SynthTaskConfig::default();
        let data = generate_dataset(&cfg, 3, 42);
        assert_eq!(data.len(), 24);
        assert_eq!(data.images.shape().dims(), &[24, 1, 16, 16]);
        // All classes appear.
        for c in 0..cfg.classes {
            assert!(data.labels.contains(&c));
        }
        // Deterministic.
        let again = generate_dataset(&cfg, 3, 42);
        assert_eq!(data.images.as_slice(), again.images.as_slice());
        // Different seeds differ.
        let other = generate_dataset(&cfg, 3, 43);
        assert_ne!(data.images.as_slice(), other.images.as_slice());
    }

    #[test]
    fn synthnet_forward_shape() {
        let cfg = SynthTaskConfig::default();
        let model = build_synthnet(&cfg, 7);
        let data = generate_dataset(&cfg, 1, 3);
        let (images, _) = data.batch(0, data.len());
        let out = model.forward(&images).unwrap();
        assert_eq!(out.shape().dims(), &[cfg.classes, cfg.classes]);
        assert_eq!(model.compute_layer_count(), 4);
    }

    #[test]
    fn training_reaches_usable_accuracy() {
        let trained = quick_synthnet(123).unwrap();
        let acc = trained.test_accuracy().unwrap();
        assert!(
            acc >= 0.7,
            "SynthNet should learn the synthetic task, got accuracy {acc}"
        );
        // Loss decreased during training.
        let first = trained.history.first().unwrap().loss;
        let last = trained.history.last().unwrap().loss;
        assert!(last < first);
    }
}
