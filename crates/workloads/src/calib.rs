//! Calibrated synthetic tensors for the structural model zoo.
//!
//! The value-dependent experiments (MAC utilization, per-layer MSE,
//! utilization gain, energy) need activation and weight matrices whose
//! statistics resemble the paper's ImageNet-derived tensors: bell-shaped
//! values, 40–75 % post-ReLU activation sparsity, a substantial fraction of
//! values that fit in 4 bits, and (optionally) pruned weights. This module
//! assigns a deterministic per-layer statistical profile to every layer of a
//! zoo model and synthesizes quantized GEMM operands from it.

use serde::{Deserialize, Serialize};

use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_quant::scheme::QuantScheme;
use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer, ValueDistribution};
use nbsmt_tensor::tensor::Matrix;

use crate::zoo::{LayerKind, LayerSpec, ModelSpec};

/// Statistical profile of one layer's activations and weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Fraction of zero-valued activations (post-ReLU sparsity).
    pub activation_sparsity: f64,
    /// Standard deviation of the activation distribution before ReLU,
    /// relative to the quantization range (controls how many values fit in
    /// 4 bits).
    pub activation_std: f32,
    /// Laplace scale of the weights relative to the quantization range.
    pub weight_scale: f32,
    /// Fraction of pruned (zero) weights.
    pub weight_sparsity: f64,
}

impl Default for LayerProfile {
    fn default() -> Self {
        LayerProfile {
            activation_sparsity: 0.5,
            activation_std: 0.35,
            weight_scale: 0.12,
            weight_sparsity: 0.0,
        }
    }
}

/// Deterministically derives a per-layer profile from the model name and the
/// layer index. Early layers are denser (lower sparsity); deeper layers are
/// sparser, matching the commonly reported trend and giving each model the
/// ≈60 % average idle fraction of Fig. 1.
pub fn profile_for_layer(model: &ModelSpec, layer_index: usize) -> LayerProfile {
    let n = model.layers.len().max(2) as f64;
    let depth = layer_index as f64 / (n - 1.0);
    // Hash the model name for a stable per-model offset in [0, 0.1).
    let name_offset = (model
        .name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
        % 100) as f64
        / 1000.0;
    // The forced sparsity combines with the ReLU clamp (which zeroes about
    // half of the remaining values), so a forced fraction of 0.1–0.45 yields
    // the 50–75 % post-ReLU zero fractions reported for ImageNet CNNs.
    let activation_sparsity = (0.1 + 0.35 * depth + name_offset).clamp(0.0, 0.9);
    // Deeper layers also tend to have smaller dynamic range usage.
    let activation_std = 0.3 - 0.1 * depth as f32;
    LayerProfile {
        activation_sparsity,
        activation_std,
        weight_scale: 0.08,
        weight_sparsity: 0.0,
    }
}

/// Options controlling how synthetic layer operands are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisOptions {
    /// Cap on the number of GEMM rows (output pixels) generated per layer —
    /// large ImageNet layers have tens of thousands of rows; the statistics
    /// converge long before that.
    pub max_rows: usize,
    /// Cap on the number of GEMM columns (output channels) generated.
    pub max_cols: usize,
    /// Fraction of weights pruned (overrides the per-layer profile when
    /// `Some`), used by the pruning sweeps.
    pub weight_sparsity_override: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            max_rows: 128,
            max_cols: 64,
            weight_sparsity_override: None,
            seed: 0x5EED,
        }
    }
}

/// A synthesized quantized layer: the GEMM operands plus the profile they
/// were generated from.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedLayer {
    /// Layer name (from the zoo spec).
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// MAC operations of the *full* layer (not the subsampled operands).
    pub mac_ops: u64,
    /// Quantized activation matrix (possibly subsampled rows).
    pub activations: QuantMatrix,
    /// Quantized weight matrix (possibly subsampled columns).
    pub weights: QuantWeightMatrix,
    /// The statistical profile used.
    pub profile: LayerProfile,
}

/// Synthesizes quantized GEMM operands for one layer of a zoo model.
pub fn synthesize_layer(
    model: &ModelSpec,
    layer_index: usize,
    spec: &LayerSpec,
    options: &SynthesisOptions,
) -> SynthesizedLayer {
    let mut profile = profile_for_layer(model, layer_index);
    if let Some(ws) = options.weight_sparsity_override {
        profile.weight_sparsity = ws;
    }
    let rows = spec.m.clamp(1, options.max_rows);
    let cols = spec.n.clamp(1, options.max_cols);
    let k = spec.k.max(1);
    // Per-layer deterministic seed.
    let seed = options
        .seed
        .wrapping_mul(1_000_003)
        .wrapping_add(layer_index as u64);
    let mut synth = TensorSynthesizer::new(seed);

    let act = synth.tensor(
        &SynthesisConfig {
            distribution: ValueDistribution::Gaussian {
                mean: 0.0,
                std: profile.activation_std,
            },
            sparsity: profile.activation_sparsity,
            relu: true,
        },
        &[rows, k],
    );
    let wgt = synth.tensor(
        &SynthesisConfig {
            distribution: ValueDistribution::Laplace {
                loc: 0.0,
                scale: profile.weight_scale,
            },
            sparsity: profile.weight_sparsity,
            relu: false,
        },
        &[k, cols],
    );
    let activations = quantize_activations(
        &Matrix::from_vec(act.into_vec(), rows, k).expect("matching dims"),
        &QuantScheme::activation_a8(),
        // Calibrated range wider than the sample so that most values use only
        // part of the 8-bit range (producing realistic 4-bit fractions).
        Some((0.0, 1.0)),
    );
    let weights = quantize_weights(
        &Matrix::from_vec(wgt.into_vec(), k, cols).expect("matching dims"),
        &QuantScheme::weight_w8(),
    );
    SynthesizedLayer {
        name: spec.name.clone(),
        kind: spec.kind,
        mac_ops: spec.mac_ops(),
        activations,
        weights,
        profile,
    }
}

/// Synthesizes every NB-SMT-executed layer of a model (the paper leaves the
/// first convolution and the fully connected layers intact).
pub fn synthesize_model(model: &ModelSpec, options: &SynthesisOptions) -> Vec<SynthesizedLayer> {
    model
        .layers
        .iter()
        .enumerate()
        .filter(|(i, l)| *i != 0 && l.kind != LayerKind::FullyConnected)
        .map(|(i, l)| synthesize_layer(model, i, l, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{googlenet, resnet18};

    #[test]
    fn profiles_increase_sparsity_with_depth() {
        let model = resnet18();
        let first = profile_for_layer(&model, 1);
        let last = profile_for_layer(&model, model.layers.len() - 1);
        assert!(last.activation_sparsity > first.activation_sparsity);
        assert!(first.activation_sparsity >= 0.1);
        assert!(last.activation_sparsity <= 0.9);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let model = resnet18();
        let spec = &model.layers[3];
        let opts = SynthesisOptions::default();
        let a = synthesize_layer(&model, 3, spec, &opts);
        let b = synthesize_layer(&model, 3, spec, &opts);
        assert_eq!(a.activations, b.activations);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn synthesized_statistics_match_profile() {
        let model = googlenet();
        let idx = 10;
        let spec = &model.layers[idx];
        let layer = synthesize_layer(&model, idx, spec, &SynthesisOptions::default());
        let measured = layer.activations.sparsity();
        // ReLU on a zero-mean Gaussian adds ~half of the non-forced values,
        // so the measured sparsity must exceed the profile's forced sparsity.
        assert!(
            measured > layer.profile.activation_sparsity,
            "measured {measured} vs profile {}",
            layer.profile.activation_sparsity
        );
        // A meaningful fraction of the non-zero activations fit in 4 bits.
        assert!(layer.activations.narrow_fraction() > 0.02);
        // Weights are bell-shaped: most fit comfortably within 8 bits and a
        // large share within 4.
        assert!(layer.weights.narrow_fraction() > 0.2);
    }

    #[test]
    fn weight_sparsity_override_applies() {
        let model = resnet18();
        let spec = &model.layers[5];
        let opts = SynthesisOptions {
            weight_sparsity_override: Some(0.6),
            ..SynthesisOptions::default()
        };
        let layer = synthesize_layer(&model, 5, spec, &opts);
        assert!((layer.weights.sparsity() - 0.6).abs() < 0.05);
    }

    #[test]
    fn synthesize_model_skips_first_conv_and_fc() {
        let model = resnet18();
        let layers = synthesize_model(&model, &SynthesisOptions::default());
        assert_eq!(layers.len(), model.nbsmt_layers().len());
        assert!(layers.iter().all(|l| l.kind != LayerKind::FullyConnected));
        assert!(layers.iter().all(|l| l.activations.rows() <= 128));
        assert!(layers.iter().all(|l| l.weights.cols() <= 64));
        // Full-layer MAC counts are preserved from the spec.
        assert!(layers.iter().all(|l| l.mac_ops > 0));
    }
}
