//! Energy model (Eq. 6 of the paper).
//!
//! The energy of layer `l` is `E_l = (MAC_l / Throughput) · P_l`, where
//! `MAC_l` is the number of MAC operations in the layer, `Throughput` is the
//! design's peak MAC rate, and `P_l` is the power drawn at the layer's
//! utilization. The model energy is the sum over all layers, and the paper
//! reports the energy *saving* of SySMT relative to the conventional array.

use serde::{Deserialize, Serialize};

use crate::power::power_model;
use crate::table2::{design_parameters, DesignPoint};

/// Per-layer input to the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergyInput {
    /// MAC operations of the layer.
    pub mac_ops: u64,
    /// Array utilization while executing the layer on the design being
    /// evaluated.
    pub utilization: f64,
    /// Number of threads the layer runs with on the SySMT design (1, 2, or
    /// 4); the effective throughput of a layer running slower than the
    /// design's maximum thread count scales down proportionally.
    pub threads: usize,
}

/// Energy model for one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    point: DesignPoint,
}

impl EnergyModel {
    /// Creates an energy model for a design point.
    pub fn new(point: DesignPoint) -> Self {
        EnergyModel { point }
    }

    /// The design point being modeled.
    pub fn point(&self) -> DesignPoint {
        self.point
    }

    /// Energy of one layer in millijoules (Eq. 6).
    ///
    /// The layer's effective throughput is the design's peak throughput
    /// scaled by `threads / design_threads` (a 4T design running a layer at
    /// 2 threads streams it at half rate).
    pub fn layer_energy_mj(&self, layer: &LayerEnergyInput) -> f64 {
        let params = design_parameters(self.point);
        let design_threads = self.point.threads();
        let thread_fraction = layer.threads.clamp(1, design_threads) as f64 / design_threads as f64;
        let throughput_macs_per_s = params.throughput_gmacs * 1e9 * thread_fraction;
        let seconds = layer.mac_ops as f64 / throughput_macs_per_s;
        let power_w = power_model(self.point).power_mw(layer.utilization) / 1e3;
        seconds * power_w * 1e3
    }

    /// Total energy of a model (sum over layers), in millijoules.
    pub fn model_energy_mj(&self, layers: &[LayerEnergyInput]) -> f64 {
        layers.iter().map(|l| self.layer_energy_mj(l)).sum()
    }
}

/// Energy comparison of a SySMT design against the baseline array for the
/// same model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyComparison {
    /// Baseline array energy in mJ.
    pub baseline_mj: f64,
    /// SySMT energy in mJ.
    pub sysmt_mj: f64,
}

impl EnergyComparison {
    /// Fractional energy saving of SySMT over the baseline (0.33 = 33 %).
    pub fn saving(&self) -> f64 {
        if self.baseline_mj == 0.0 {
            0.0
        } else {
            1.0 - self.sysmt_mj / self.baseline_mj
        }
    }
}

/// Computes the energy comparison between the baseline array and a SySMT
/// design for a model described by per-layer MAC counts and utilizations.
///
/// `baseline_layers` carries each layer's utilization on the conventional
/// array (threads is ignored and treated as 1); `sysmt_layers` carries the
/// utilization and per-layer thread count on the SySMT design. Both slices
/// must describe the same layers in the same order.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn compare_energy(
    sysmt_point: DesignPoint,
    baseline_layers: &[LayerEnergyInput],
    sysmt_layers: &[LayerEnergyInput],
) -> EnergyComparison {
    assert_eq!(
        baseline_layers.len(),
        sysmt_layers.len(),
        "layer lists must match"
    );
    let baseline_model = EnergyModel::new(DesignPoint::Baseline);
    let sysmt_model = EnergyModel::new(sysmt_point);
    let baseline_mj = baseline_layers
        .iter()
        .map(|l| baseline_model.layer_energy_mj(&LayerEnergyInput { threads: 1, ..*l }))
        .sum();
    let sysmt_mj = sysmt_model.model_energy_mj(sysmt_layers);
    EnergyComparison {
        baseline_mj,
        sysmt_mj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_energy_follows_eq6() {
        let model = EnergyModel::new(DesignPoint::Baseline);
        let layer = LayerEnergyInput {
            mac_ops: 256_000_000,
            utilization: 0.4,
            threads: 1,
        };
        // 256e6 MACs / 256 GMACS = 1 ms; at 277 mW that is 0.277 mJ.
        let e = model.layer_energy_mj(&layer);
        assert!((e - 0.277).abs() < 1e-6, "energy {e}");
    }

    #[test]
    fn two_thread_energy_saving_matches_paper_shape() {
        // A layer with 40% baseline utilization runs at ~80% utilization on a
        // 2T SySMT in half the time; the paper reports ~33% average saving.
        let baseline = vec![LayerEnergyInput {
            mac_ops: 1_000_000_000,
            utilization: 0.4,
            threads: 1,
        }];
        let sysmt = vec![LayerEnergyInput {
            mac_ops: 1_000_000_000,
            utilization: 0.8,
            threads: 2,
        }];
        let cmp = compare_energy(DesignPoint::Sysmt2T, &baseline, &sysmt);
        let saving = cmp.saving();
        assert!(
            saving > 0.15 && saving < 0.45,
            "2T energy saving {saving} out of the expected band"
        );
    }

    #[test]
    fn slowed_layers_consume_more_energy_on_sysmt() {
        let layer_fast = LayerEnergyInput {
            mac_ops: 500_000_000,
            utilization: 0.7,
            threads: 4,
        };
        let layer_slow = LayerEnergyInput {
            threads: 2,
            ..layer_fast
        };
        let model = EnergyModel::new(DesignPoint::Sysmt4T);
        assert!(model.layer_energy_mj(&layer_slow) > model.layer_energy_mj(&layer_fast));
    }

    #[test]
    fn model_energy_sums_layers() {
        let model = EnergyModel::new(DesignPoint::Baseline);
        let layers = vec![
            LayerEnergyInput {
                mac_ops: 100_000_000,
                utilization: 0.5,
                threads: 1,
            },
            LayerEnergyInput {
                mac_ops: 200_000_000,
                utilization: 0.3,
                threads: 1,
            },
        ];
        let total = model.model_energy_mj(&layers);
        let sum: f64 = layers.iter().map(|l| model.layer_energy_mj(l)).sum();
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    fn saving_handles_zero_baseline() {
        let cmp = EnergyComparison {
            baseline_mj: 0.0,
            sysmt_mj: 1.0,
        };
        assert_eq!(cmp.saving(), 0.0);
    }

    #[test]
    #[should_panic(expected = "layer lists must match")]
    fn compare_energy_rejects_mismatched_layers() {
        compare_energy(
            DesignPoint::Sysmt2T,
            &[],
            &[LayerEnergyInput {
                mac_ops: 1,
                utilization: 0.5,
                threads: 2,
            }],
        );
    }
}
