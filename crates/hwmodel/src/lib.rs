//! # nbsmt-hw
//!
//! Analytic area, power, and energy model for the SySMT evaluation,
//! calibrated to the paper's published 45 nm synthesis results (Table II).
//!
//! * [`table2`] — the design parameters of the baseline 16×16 systolic array
//!   and the 2T / 4T SySMT cores (area, throughput, power at 80 %
//!   utilization),
//! * [`power`] — a utilization-dependent linear power model fitted to the
//!   published operating points, plus the synthetic utilization testbench,
//! * [`energy`] — the Eq. 6 per-layer energy model and baseline-vs-SySMT
//!   comparisons.
//!
//! ```
//! use nbsmt_hw::energy::{EnergyModel, LayerEnergyInput};
//! use nbsmt_hw::table2::DesignPoint;
//!
//! let model = EnergyModel::new(DesignPoint::Baseline);
//! let layer = LayerEnergyInput { mac_ops: 256_000_000, utilization: 0.4, threads: 1 };
//! // 1 ms at 277 mW ≈ 0.277 mJ.
//! assert!((model.layer_energy_mj(&layer) - 0.277).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod power;
pub mod table2;

pub use energy::{compare_energy, EnergyComparison, EnergyModel, LayerEnergyInput};
pub use power::{power_model, utilization_sweep, PowerModel};
pub use table2::{design_parameters, DesignParameters, DesignPoint};
