//! Design parameters of the evaluated cores (Table II of the paper).
//!
//! The paper synthesizes a 16×16 output-stationary systolic array and its
//! 2-threaded and 4-threaded SySMT variants at 45 nm / 500 MHz with Synopsys
//! Design Compiler and extracts area and power with Cadence Innovus. Those
//! tools are not available offline, so this module carries the published
//! Table II numbers as the calibration points of an analytic model
//! (see ARCHITECTURE.md, substitution 2); everything derived from them (power vs
//! utilization, per-layer energy, energy savings) is computed by this crate
//! rather than copied.

use serde::{Deserialize, Serialize};

/// The three evaluated design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// The conventional 16×16 output-stationary systolic array.
    Baseline,
    /// The 2-threaded SySMT.
    Sysmt2T,
    /// The 4-threaded SySMT.
    Sysmt4T,
}

impl DesignPoint {
    /// Number of threads per PE.
    pub fn threads(self) -> usize {
        match self {
            DesignPoint::Baseline => 1,
            DesignPoint::Sysmt2T => 2,
            DesignPoint::Sysmt4T => 4,
        }
    }

    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            DesignPoint::Baseline => "SA",
            DesignPoint::Sysmt2T => "2T SySMT",
            DesignPoint::Sysmt4T => "4T SySMT",
        }
    }

    /// All design points in Table II order.
    pub fn all() -> [DesignPoint; 3] {
        [
            DesignPoint::Baseline,
            DesignPoint::Sysmt2T,
            DesignPoint::Sysmt4T,
        ]
    }
}

/// Physical design parameters of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignParameters {
    /// Array dimension (16 for the paper's evaluation).
    pub array_size: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Peak throughput in GMAC/s (scaled by the thread count for SySMT).
    pub throughput_gmacs: f64,
    /// Power at 80 % utilization, in mW (the Table II operating point).
    pub power_mw_at_80: f64,
    /// Total core area in mm².
    pub total_area_mm2: f64,
    /// Single PE area in µm² (registers, control, MAC).
    pub pe_area_um2: f64,
    /// MAC unit area in µm² (two-stage pipeline including registers).
    pub mac_area_um2: f64,
}

/// Returns the Table II design parameters for a design point.
pub fn design_parameters(point: DesignPoint) -> DesignParameters {
    match point {
        DesignPoint::Baseline => DesignParameters {
            array_size: 16,
            frequency_mhz: 500.0,
            throughput_gmacs: 256.0,
            power_mw_at_80: 320.0,
            total_area_mm2: 0.220,
            pe_area_um2: 853.0,
            mac_area_um2: 591.0,
        },
        DesignPoint::Sysmt2T => DesignParameters {
            array_size: 16,
            frequency_mhz: 500.0,
            throughput_gmacs: 512.0,
            power_mw_at_80: 429.0,
            total_area_mm2: 0.317,
            pe_area_um2: 1233.0,
            mac_area_um2: 786.0,
        },
        DesignPoint::Sysmt4T => DesignParameters {
            array_size: 16,
            frequency_mhz: 500.0,
            throughput_gmacs: 1024.0,
            power_mw_at_80: 723.0,
            total_area_mm2: 0.545,
            pe_area_um2: 2122.0,
            mac_area_um2: 1102.0,
        },
    }
}

impl DesignParameters {
    /// Area overhead of this design relative to the baseline array.
    pub fn area_ratio_vs_baseline(&self) -> f64 {
        self.total_area_mm2 / design_parameters(DesignPoint::Baseline).total_area_mm2
    }

    /// Number of PEs in the array.
    pub fn pe_count(&self) -> usize {
        self.array_size * self.array_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_and_labels() {
        assert_eq!(DesignPoint::Baseline.threads(), 1);
        assert_eq!(DesignPoint::Sysmt2T.threads(), 2);
        assert_eq!(DesignPoint::Sysmt4T.threads(), 4);
        assert_eq!(DesignPoint::Sysmt2T.label(), "2T SySMT");
        assert_eq!(DesignPoint::all().len(), 3);
    }

    #[test]
    fn throughput_scales_with_threads() {
        let base = design_parameters(DesignPoint::Baseline);
        for point in DesignPoint::all() {
            let p = design_parameters(point);
            assert!(
                (p.throughput_gmacs - base.throughput_gmacs * point.threads() as f64).abs() < 1e-9
            );
            assert_eq!(p.pe_count(), 256);
        }
    }

    #[test]
    fn area_ratios_match_paper_headline() {
        // Paper abstract: 2T SySMT consumes 1.4x the area, 4T about 2.5x.
        let r2 = design_parameters(DesignPoint::Sysmt2T).area_ratio_vs_baseline();
        let r4 = design_parameters(DesignPoint::Sysmt4T).area_ratio_vs_baseline();
        assert!((r2 - 1.44).abs() < 0.05, "2T area ratio {r2}");
        assert!((r4 - 2.48).abs() < 0.05, "4T area ratio {r4}");
    }

    #[test]
    fn per_pe_area_is_consistent_with_total() {
        // 256 PEs at the quoted per-PE area account for most of (and never
        // exceed) the total core area.
        for point in DesignPoint::all() {
            let p = design_parameters(point);
            let pe_total_mm2 = p.pe_area_um2 * p.pe_count() as f64 / 1e6;
            assert!(pe_total_mm2 <= p.total_area_mm2 * 1.05);
            assert!(pe_total_mm2 >= p.total_area_mm2 * 0.5);
            assert!(p.mac_area_um2 < p.pe_area_um2);
        }
    }
}
