//! Utilization-dependent power model and the synthetic utilization
//! testbench.
//!
//! The paper estimates power with testbenches that zero out activations at a
//! probability corresponding to a target utilization (a PE is "utilized" when
//! both operands of at least one thread are non-zero). Two published
//! operating points anchor the baseline model — 277 mW at 40 % utilization
//! and 320 mW at 80 % — giving a linear static + dynamic decomposition. The
//! SySMT variants keep the static share proportional to their area and fit
//! the dynamic share to their 80 % operating point.

use serde::{Deserialize, Serialize};

use crate::table2::{design_parameters, DesignPoint};

/// A linear power model `P(u) = static + dynamic · u` in milliwatts, with
/// `u` the array utilization in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (utilization-independent) power in mW.
    pub static_mw: f64,
    /// Dynamic power at 100 % utilization in mW.
    pub dynamic_mw: f64,
}

impl PowerModel {
    /// Power at the given utilization (clamped to `[0, 1]`).
    pub fn power_mw(&self, utilization: f64) -> f64 {
        self.static_mw + self.dynamic_mw * utilization.clamp(0.0, 1.0)
    }
}

/// The baseline array's two published calibration points:
/// (utilization, power in mW).
pub const BASELINE_CALIBRATION: [(f64, f64); 2] = [(0.4, 277.0), (0.8, 320.0)];

/// Builds the power model of a design point.
///
/// The baseline model is fitted to its two published points; the SySMT
/// models scale the static share by their area ratio and fit the dynamic
/// share so that the published 80 %-utilization power is met exactly.
pub fn power_model(point: DesignPoint) -> PowerModel {
    let [(u0, p0), (u1, p1)] = BASELINE_CALIBRATION;
    let base_dynamic = (p1 - p0) / (u1 - u0);
    let base_static = p0 - base_dynamic * u0;
    match point {
        DesignPoint::Baseline => PowerModel {
            static_mw: base_static,
            dynamic_mw: base_dynamic,
        },
        other => {
            let params = design_parameters(other);
            let static_mw = base_static * params.area_ratio_vs_baseline();
            let dynamic_mw = (params.power_mw_at_80 - static_mw) / 0.8;
            PowerModel {
                static_mw,
                dynamic_mw,
            }
        }
    }
}

/// One row of the synthetic utilization testbench: the target utilization
/// and the power each design draws at that point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbenchRow {
    /// Target array utilization.
    pub utilization: f64,
    /// Baseline array power in mW.
    pub baseline_mw: f64,
    /// 2T SySMT power in mW.
    pub sysmt2_mw: f64,
    /// 4T SySMT power in mW.
    pub sysmt4_mw: f64,
}

/// Sweeps utilization from 0 to 100 % in `steps` increments, reproducing the
/// synthetic power testbench of §V-A.
pub fn utilization_sweep(steps: usize) -> Vec<TestbenchRow> {
    let baseline = power_model(DesignPoint::Baseline);
    let t2 = power_model(DesignPoint::Sysmt2T);
    let t4 = power_model(DesignPoint::Sysmt4T);
    (0..=steps)
        .map(|i| {
            let u = i as f64 / steps.max(1) as f64;
            TestbenchRow {
                utilization: u,
                baseline_mw: baseline.power_mw(u),
                sysmt2_mw: t2.power_mw(u),
                sysmt4_mw: t4.power_mw(u),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_model_reproduces_published_points() {
        let m = power_model(DesignPoint::Baseline);
        assert!((m.power_mw(0.4) - 277.0).abs() < 1e-9);
        assert!((m.power_mw(0.8) - 320.0).abs() < 1e-9);
    }

    #[test]
    fn sysmt_models_hit_their_80_percent_points() {
        for (point, expected) in [(DesignPoint::Sysmt2T, 429.0), (DesignPoint::Sysmt4T, 723.0)] {
            let m = power_model(point);
            assert!((m.power_mw(0.8) - expected).abs() < 1e-9, "{point:?}");
            assert!(m.static_mw > 0.0 && m.dynamic_mw > 0.0);
        }
    }

    #[test]
    fn paper_headline_power_ratio_holds() {
        // §V-A: doubling utilization from 40% (SA) to 80% (2T) increases
        // power by about 1.5x (429 / 277).
        let sa = power_model(DesignPoint::Baseline).power_mw(0.4);
        let t2 = power_model(DesignPoint::Sysmt2T).power_mw(0.8);
        let ratio = t2 / sa;
        assert!((ratio - 1.55).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn power_is_monotonic_in_utilization() {
        for point in DesignPoint::all() {
            let m = power_model(point);
            let mut prev = 0.0;
            for i in 0..=10 {
                let p = m.power_mw(i as f64 / 10.0);
                assert!(p >= prev);
                prev = p;
            }
        }
    }

    #[test]
    fn utilization_is_clamped() {
        let m = power_model(DesignPoint::Baseline);
        assert_eq!(m.power_mw(-1.0), m.power_mw(0.0));
        assert_eq!(m.power_mw(2.0), m.power_mw(1.0));
    }

    #[test]
    fn sweep_produces_requested_rows() {
        let rows = utilization_sweep(10);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].utilization, 0.0);
        assert_eq!(rows[10].utilization, 1.0);
        // SySMT designs draw more power than the baseline at equal
        // utilization (they have more hardware).
        for r in &rows {
            assert!(r.sysmt2_mw >= r.baseline_mw);
            assert!(r.sysmt4_mw >= r.sysmt2_mw);
        }
    }
}
