//! # nbsmt-quant
//!
//! Quantization substrate for the NB-SMT / SySMT reproduction.
//!
//! The paper quantizes its CNNs with simple 8-bit uniform min-max
//! quantization — symmetric unsigned per-layer scales for activations and
//! symmetric signed per-kernel scales for weights — and then relies on
//! on-the-fly 4-bit precision reduction inside the SySMT processing elements
//! when threads collide. This crate provides all of those pieces:
//!
//! * [`scheme`] — bit widths, signedness, granularity, operating points
//!   (A8W8 / A4W8 / A8W4 / A4W4),
//! * [`observer`] — averaging min/max calibration observers,
//! * [`quantize`] — quantize / dequantize / integer matmul / whole-matrix
//!   further reduction (Fig. 7),
//! * [`qtensor`] — quantized activation & weight containers,
//! * [`reduce`] — the bit-level nibble rounding/truncation primitives used by
//!   the PEs (§III-C),
//! * [`aciq`] — the analytic-clipping comparator quantizer standing in for
//!   ACIQ/LBQ in Table IV (see ARCHITECTURE.md, substitution 3).
//!
//! ```
//! use nbsmt_quant::reduce::{reduce_unsigned, NibbleSelect};
//!
//! // 46 does not fit in 4 bits: it is rounded to 3*16=48 and truncated.
//! let r = reduce_unsigned(46);
//! assert_eq!(r.nibble, 3);
//! assert_eq!(r.select, NibbleSelect::Msb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aciq;
pub mod observer;
pub mod qtensor;
pub mod quantize;
pub mod reduce;
pub mod scheme;

pub use qtensor::{QuantMatrix, QuantTensor, QuantWeightMatrix};
pub use scheme::{BitWidth, OperatingPoint, QuantScheme};
