//! On-the-fly precision reduction primitives.
//!
//! These are the bit-level helpers used by the SySMT PE (§III-C, §IV-C): a
//! thread whose operands need more than 4 bits is "squeezed" by rounding the
//! 8-bit value to the nearest multiple of 16 and keeping its 4-bit MSBs; a
//! thread whose operands already fit in 4 bits can keep its LSBs and incurs no
//! error.

use serde::{Deserialize, Serialize};

/// Which nibble of the original 8-bit value a reduced operand carries, and
/// therefore whether the multiplier output must be shifted left by 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NibbleSelect {
    /// The operand kept its 4 LSBs (value was already narrow): no shift.
    Lsb,
    /// The operand was rounded and truncated to its 4 MSBs: the product must
    /// be shifted left by 4.
    Msb,
}

impl NibbleSelect {
    /// Post-multiplication shift amount implied by the selection.
    pub fn shift(self) -> u32 {
        match self {
            NibbleSelect::Lsb => 0,
            NibbleSelect::Msb => 4,
        }
    }
}

/// Returns `true` when an unsigned 8-bit activation is already representable
/// by its 4-bit LSBs (its 4 MSBs are zero).
pub fn fits_nibble_unsigned(v: u8) -> bool {
    v < 16
}

/// Returns `true` when a signed 8-bit weight is already representable by a
/// signed 4-bit nibble (`-8 ..= 7`).
pub fn fits_nibble_signed(v: i8) -> bool {
    (-8..=7).contains(&v)
}

/// Rounds an unsigned 8-bit value to the nearest multiple of 16 and returns
/// the resulting 4-bit MSB nibble (clamped to 15).
///
/// This is the paper's on-the-fly quantization: "before reducing the 8-bit
/// value to 4 bits, we round the number to the nearest integer that is a
/// whole multiple of 16".
pub fn round_to_nibble_unsigned(v: u8) -> u8 {
    let rounded = ((v as u32 + 8) / 16).min(15);
    rounded as u8
}

/// Rounds a signed 8-bit value to the nearest multiple of 16 and returns the
/// resulting signed 4-bit nibble (clamped to `-8 ..= 7`).
pub fn round_to_nibble_signed(v: i8) -> i8 {
    let x = v as f32 / 16.0;
    let rounded = x.round().clamp(-8.0, 7.0);
    rounded as i8
}

/// Extracts the 4-bit LSBs of an unsigned value (no rounding, no error when
/// the value already fits in 4 bits).
pub fn lsb_unsigned(v: u8) -> u8 {
    v & 0x0F
}

/// Extracts the signed value of a signed 8-bit weight that fits in a nibble.
///
/// For weights that fit in `-8 ..= 7` this is the identity; wider weights
/// are truncated to their low nibble interpreted as two's complement, which
/// matches what the hardware datapath would produce if fed un-reduced.
pub fn lsb_signed(v: i8) -> i8 {
    let nibble = (v as u8) & 0x0F;
    // Sign-extend the 4-bit two's complement nibble.
    if nibble & 0x8 != 0 {
        (nibble as i8) | !0x0F
    } else {
        nibble as i8
    }
}

/// A reduced unsigned operand: the nibble value plus which nibble it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedUnsigned {
    /// 4-bit value (0..=15).
    pub nibble: u8,
    /// Whether a post-multiplication shift is required.
    pub select: NibbleSelect,
}

/// A reduced signed operand: the nibble value plus which nibble it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedSigned {
    /// Signed 4-bit value (−8..=7).
    pub nibble: i8,
    /// Whether a post-multiplication shift is required.
    pub select: NibbleSelect,
}

/// Reduces an unsigned activation to 4 bits, preferring the error-free LSB
/// path when the value already fits.
pub fn reduce_unsigned(v: u8) -> ReducedUnsigned {
    if fits_nibble_unsigned(v) {
        ReducedUnsigned {
            nibble: lsb_unsigned(v),
            select: NibbleSelect::Lsb,
        }
    } else {
        ReducedUnsigned {
            nibble: round_to_nibble_unsigned(v),
            select: NibbleSelect::Msb,
        }
    }
}

/// Reduces a signed weight to 4 bits, preferring the error-free LSB path when
/// the value already fits.
pub fn reduce_signed(v: i8) -> ReducedSigned {
    if fits_nibble_signed(v) {
        ReducedSigned {
            nibble: v,
            select: NibbleSelect::Lsb,
        }
    } else {
        ReducedSigned {
            nibble: round_to_nibble_signed(v),
            select: NibbleSelect::Msb,
        }
    }
}

/// Reconstructs the approximate 8-bit unsigned value a reduced operand stands
/// for (nibble shifted back into place). Used in tests and error analysis.
pub fn reconstruct_unsigned(r: ReducedUnsigned) -> u8 {
    match r.select {
        NibbleSelect::Lsb => r.nibble,
        NibbleSelect::Msb => r.nibble.saturating_mul(16),
    }
}

/// Reconstructs the approximate signed value a reduced operand stands for.
pub fn reconstruct_signed(r: ReducedSigned) -> i16 {
    match r.select {
        NibbleSelect::Lsb => r.nibble as i16,
        NibbleSelect::Msb => r.nibble as i16 * 16,
    }
}

/// Worst-case absolute error introduced by reducing an unsigned value.
pub fn reduction_error_unsigned(v: u8) -> u32 {
    let r = reduce_unsigned(v);
    (v as i32 - reconstruct_unsigned(r) as i32).unsigned_abs()
}

/// Worst-case absolute error introduced by reducing a signed value.
pub fn reduction_error_signed(v: i8) -> u32 {
    let r = reduce_signed(v);
    (v as i32 - reconstruct_signed(r) as i32).unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_fit_checks() {
        assert!(fits_nibble_unsigned(0));
        assert!(fits_nibble_unsigned(15));
        assert!(!fits_nibble_unsigned(16));
        assert!(fits_nibble_signed(7));
        assert!(fits_nibble_signed(-8));
        assert!(!fits_nibble_signed(8));
        assert!(!fits_nibble_signed(-9));
    }

    #[test]
    fn paper_example_fig2a() {
        // Fig. 2a: X values 46 and 178 are rounded+truncated to 3 and 11.
        assert_eq!(round_to_nibble_unsigned(46), 3);
        assert_eq!(round_to_nibble_unsigned(178), 11);
    }

    #[test]
    fn rounding_unsigned_properties() {
        assert_eq!(round_to_nibble_unsigned(0), 0);
        assert_eq!(round_to_nibble_unsigned(7), 0);
        assert_eq!(round_to_nibble_unsigned(8), 1);
        assert_eq!(round_to_nibble_unsigned(255), 15);
        assert_eq!(round_to_nibble_unsigned(248), 15);
        for v in 0..=255u8 {
            let n = round_to_nibble_unsigned(v);
            assert!(n <= 15);
            // Rounding error is at most 8 except when clamped at the top.
            if v < 248 {
                assert!((v as i32 - n as i32 * 16).abs() <= 8, "v={v} n={n}");
            }
        }
    }

    #[test]
    fn rounding_signed_properties() {
        assert_eq!(round_to_nibble_signed(0), 0);
        assert_eq!(round_to_nibble_signed(127), 7);
        assert_eq!(round_to_nibble_signed(-128), -8);
        assert_eq!(round_to_nibble_signed(100), 6);
        for v in i8::MIN..=i8::MAX {
            let n = round_to_nibble_signed(v);
            assert!((-8..=7).contains(&n));
            if (-120..=112).contains(&v) {
                assert!((v as i32 - n as i32 * 16).abs() <= 8, "v={v} n={n}");
            }
        }
    }

    #[test]
    fn lsb_extraction() {
        assert_eq!(lsb_unsigned(0x17), 0x7);
        assert_eq!(lsb_unsigned(0x0F), 0x0F);
        assert_eq!(lsb_signed(7), 7);
        assert_eq!(lsb_signed(-8), -8);
        assert_eq!(lsb_signed(-1), -1);
        // A wide weight truncates (with wraparound) — only used when the PE
        // logic has already decided no error-free path exists.
        assert_eq!(lsb_signed(0x17), 7);
    }

    #[test]
    fn reduce_prefers_error_free_path() {
        let r = reduce_unsigned(9);
        assert_eq!(r.select, NibbleSelect::Lsb);
        assert_eq!(r.nibble, 9);
        assert_eq!(reduction_error_unsigned(9), 0);

        let r = reduce_unsigned(46);
        assert_eq!(r.select, NibbleSelect::Msb);
        assert_eq!(r.nibble, 3);

        let r = reduce_signed(-5);
        assert_eq!(r.select, NibbleSelect::Lsb);
        assert_eq!(reduction_error_signed(-5), 0);

        let r = reduce_signed(100);
        assert_eq!(r.select, NibbleSelect::Msb);
        assert_eq!(r.nibble, 6);
    }

    #[test]
    fn reduction_error_is_bounded() {
        for v in 0..=255u8 {
            assert!(reduction_error_unsigned(v) <= 15, "v={v}");
        }
        for v in i8::MIN..=i8::MAX {
            assert!(reduction_error_signed(v) <= 16, "v={v}");
        }
    }

    #[test]
    fn nibble_select_shift() {
        assert_eq!(NibbleSelect::Lsb.shift(), 0);
        assert_eq!(NibbleSelect::Msb.shift(), 4);
    }
}
