//! Quantization schemes: symmetric unsigned activations, symmetric signed
//! weights, per-tensor or per-channel (per-kernel) scales.
//!
//! This mirrors the paper's setup (§V-A): "models are quantized with a simple
//! 8-bit uniform min-max quantization, using symmetric unsigned quantization
//! for activations and symmetric signed quantization for weights. Activations
//! are quantized per layer, whereas weights are quantized per kernel."

use serde::{Deserialize, Serialize};

/// Number of bits carried by the quantized representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitWidth {
    /// Full 8-bit representation (the baseline A8W8 operating point).
    Eight,
    /// Reduced 4-bit representation (the worst-case NB-SMT collision point).
    Four,
}

impl BitWidth {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            BitWidth::Eight => 8,
            BitWidth::Four => 4,
        }
    }

    /// Maximum magnitude representable for an unsigned value of this width.
    pub fn unsigned_max(self) -> u8 {
        match self {
            BitWidth::Eight => u8::MAX,
            BitWidth::Four => 15,
        }
    }

    /// Maximum magnitude representable for a signed value of this width.
    pub fn signed_max(self) -> i8 {
        match self {
            BitWidth::Eight => i8::MAX,
            BitWidth::Four => 7,
        }
    }
}

/// Whether the quantized integers are unsigned (activations after ReLU) or
/// signed (weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signedness {
    /// Unsigned range `[0, 2^bits - 1]`.
    Unsigned,
    /// Signed two's complement range `[-2^(bits-1), 2^(bits-1) - 1]`.
    Signed,
}

/// Scale granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// One scale for the whole tensor (per layer, used for activations).
    PerTensor,
    /// One scale per output channel / kernel (used for weights).
    PerChannel,
}

/// A complete quantization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantScheme {
    /// Bit width of the integer representation.
    pub bits: BitWidth,
    /// Signedness of the integer representation.
    pub signedness: Signedness,
    /// Scale granularity.
    pub granularity: Granularity,
}

impl QuantScheme {
    /// The paper's activation scheme: 8-bit, unsigned, per layer.
    pub fn activation_a8() -> Self {
        QuantScheme {
            bits: BitWidth::Eight,
            signedness: Signedness::Unsigned,
            granularity: Granularity::PerTensor,
        }
    }

    /// The paper's weight scheme: 8-bit, signed, per kernel.
    pub fn weight_w8() -> Self {
        QuantScheme {
            bits: BitWidth::Eight,
            signedness: Signedness::Signed,
            granularity: Granularity::PerChannel,
        }
    }

    /// 4-bit activation scheme (A4 operating point of Fig. 7).
    pub fn activation_a4() -> Self {
        QuantScheme {
            bits: BitWidth::Four,
            ..Self::activation_a8()
        }
    }

    /// 4-bit weight scheme (W4 operating point of Fig. 7).
    pub fn weight_w4() -> Self {
        QuantScheme {
            bits: BitWidth::Four,
            ..Self::weight_w8()
        }
    }

    /// Highest representable quantized magnitude (as f32), used to map the
    /// observed dynamic range onto the integer grid.
    pub fn q_max(&self) -> f32 {
        match self.signedness {
            Signedness::Unsigned => self.bits.unsigned_max() as f32,
            Signedness::Signed => self.bits.signed_max() as f32,
        }
    }

    /// Computes the scale that maps the real interval implied by
    /// `(min, max)` onto this scheme's integer grid.
    ///
    /// For unsigned schemes the range `[0, max]` is used; for signed symmetric
    /// schemes the range `[-absmax, absmax]` is used. A degenerate (all-zero)
    /// range yields scale 1.0 so that dequantization is well-defined.
    pub fn scale_for_range(&self, min: f32, max: f32) -> f32 {
        let target = match self.signedness {
            Signedness::Unsigned => max.max(0.0),
            Signedness::Signed => min.abs().max(max.abs()),
        };
        if target <= 0.0 || !target.is_finite() {
            1.0
        } else {
            target / self.q_max()
        }
    }
}

/// A named quantization operating point, e.g. `A8W8` or `A4W8`.
///
/// These are the whole-model robustness points of Fig. 7 and the comparison
/// rows of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Activation bit width.
    pub activation_bits: BitWidth,
    /// Weight bit width.
    pub weight_bits: BitWidth,
}

impl OperatingPoint {
    /// A8W8: the 8-bit baseline.
    pub const A8W8: OperatingPoint = OperatingPoint {
        activation_bits: BitWidth::Eight,
        weight_bits: BitWidth::Eight,
    };
    /// A4W8: activations further reduced to 4 bits.
    pub const A4W8: OperatingPoint = OperatingPoint {
        activation_bits: BitWidth::Four,
        weight_bits: BitWidth::Eight,
    };
    /// A8W4: weights further reduced to 4 bits.
    pub const A8W4: OperatingPoint = OperatingPoint {
        activation_bits: BitWidth::Eight,
        weight_bits: BitWidth::Four,
    };
    /// A4W4: both reduced to 4 bits (the 4-thread worst case).
    pub const A4W4: OperatingPoint = OperatingPoint {
        activation_bits: BitWidth::Four,
        weight_bits: BitWidth::Four,
    };

    /// Human-readable label (`"A8W8"`, …).
    pub fn label(&self) -> String {
        format!(
            "A{}W{}",
            self.activation_bits.bits(),
            self.weight_bits.bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_limits() {
        assert_eq!(BitWidth::Eight.bits(), 8);
        assert_eq!(BitWidth::Four.bits(), 4);
        assert_eq!(BitWidth::Eight.unsigned_max(), 255);
        assert_eq!(BitWidth::Four.unsigned_max(), 15);
        assert_eq!(BitWidth::Eight.signed_max(), 127);
        assert_eq!(BitWidth::Four.signed_max(), 7);
    }

    #[test]
    fn paper_schemes() {
        let a = QuantScheme::activation_a8();
        assert_eq!(a.signedness, Signedness::Unsigned);
        assert_eq!(a.granularity, Granularity::PerTensor);
        assert_eq!(a.q_max(), 255.0);

        let w = QuantScheme::weight_w8();
        assert_eq!(w.signedness, Signedness::Signed);
        assert_eq!(w.granularity, Granularity::PerChannel);
        assert_eq!(w.q_max(), 127.0);
    }

    #[test]
    fn scale_for_range_unsigned() {
        let a = QuantScheme::activation_a8();
        let s = a.scale_for_range(0.0, 2.55);
        assert!((s - 0.01).abs() < 1e-6);
        // Negative minimum is ignored for unsigned activations.
        let s = a.scale_for_range(-10.0, 2.55);
        assert!((s - 0.01).abs() < 1e-6);
    }

    #[test]
    fn scale_for_range_signed_symmetric() {
        let w = QuantScheme::weight_w8();
        let s = w.scale_for_range(-1.27, 0.5);
        assert!((s - 0.01).abs() < 1e-6);
        let s = w.scale_for_range(-0.5, 1.27);
        assert!((s - 0.01).abs() < 1e-6);
    }

    #[test]
    fn degenerate_range_gives_unit_scale() {
        let a = QuantScheme::activation_a8();
        assert_eq!(a.scale_for_range(0.0, 0.0), 1.0);
        assert_eq!(a.scale_for_range(0.0, f32::NAN), 1.0);
    }

    #[test]
    fn operating_point_labels() {
        assert_eq!(OperatingPoint::A8W8.label(), "A8W8");
        assert_eq!(OperatingPoint::A4W8.label(), "A4W8");
        assert_eq!(OperatingPoint::A8W4.label(), "A8W4");
        assert_eq!(OperatingPoint::A4W4.label(), "A4W4");
    }
}
