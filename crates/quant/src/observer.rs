//! Range observers used for post-training calibration.
//!
//! Before executing a CNN, the paper runs a "quick statistics gathering run"
//! on a random subset of the training set, averaging the per-layer min/max
//! values (§V-A). [`MinMaxObserver`] implements exactly that averaging
//! observer; [`AbsMaxObserver`] is the per-channel variant used for weights.

use serde::{Deserialize, Serialize};

/// Averaging min/max observer for per-tensor (per-layer) activation ranges.
///
/// Each call to [`MinMaxObserver::observe`] records the batch minimum and
/// maximum; [`MinMaxObserver::averaged_range`] returns the running averages,
/// which is how the paper derives activation scales.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MinMaxObserver {
    sum_min: f64,
    sum_max: f64,
    batches: u64,
}

impl MinMaxObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one batch of values.
    ///
    /// Empty batches are ignored.
    pub fn observe(&mut self, values: &[f32]) {
        if values.is_empty() {
            return;
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in values {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        self.sum_min += lo as f64;
        self.sum_max += hi as f64;
        self.batches += 1;
    }

    /// Number of batches observed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Returns the averaged `(min, max)` range over all observed batches.
    ///
    /// Returns `(0.0, 0.0)` when nothing has been observed.
    pub fn averaged_range(&self) -> (f32, f32) {
        if self.batches == 0 {
            (0.0, 0.0)
        } else {
            (
                (self.sum_min / self.batches as f64) as f32,
                (self.sum_max / self.batches as f64) as f32,
            )
        }
    }
}

/// Per-channel absolute-maximum observer for weight ranges.
///
/// Weights are static, so a single pass suffices; the observer keeps the
/// maximum magnitude seen per output channel (kernel).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AbsMaxObserver {
    per_channel: Vec<f32>,
}

impl AbsMaxObserver {
    /// Creates an observer for `channels` output channels.
    pub fn new(channels: usize) -> Self {
        AbsMaxObserver {
            per_channel: vec![0.0; channels],
        }
    }

    /// Number of channels tracked.
    pub fn channels(&self) -> usize {
        self.per_channel.len()
    }

    /// Observes the weights of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn observe_channel(&mut self, channel: usize, values: &[f32]) {
        assert!(channel < self.per_channel.len(), "channel out of range");
        let m = values.iter().fold(0.0_f32, |acc, &v| acc.max(v.abs()));
        if m > self.per_channel[channel] {
            self.per_channel[channel] = m;
        }
    }

    /// Absolute maximum magnitude for `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn abs_max(&self, channel: usize) -> f32 {
        self.per_channel[channel]
    }

    /// Absolute maxima for all channels.
    pub fn abs_maxes(&self) -> &[f32] {
        &self.per_channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_averages_across_batches() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&[0.0, 1.0, 2.0]);
        obs.observe(&[-1.0, 3.0]);
        let (lo, hi) = obs.averaged_range();
        assert!((lo - (-0.5)).abs() < 1e-6);
        assert!((hi - 2.5).abs() < 1e-6);
        assert_eq!(obs.batches(), 2);
    }

    #[test]
    fn empty_batches_are_ignored() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&[]);
        assert_eq!(obs.batches(), 0);
        assert_eq!(obs.averaged_range(), (0.0, 0.0));
        obs.observe(&[1.0]);
        obs.observe(&[]);
        assert_eq!(obs.batches(), 1);
        assert_eq!(obs.averaged_range(), (1.0, 1.0));
    }

    #[test]
    fn abs_max_tracks_per_channel() {
        let mut obs = AbsMaxObserver::new(2);
        obs.observe_channel(0, &[0.5, -2.0, 1.0]);
        obs.observe_channel(1, &[0.1, 0.2]);
        obs.observe_channel(0, &[-1.5]);
        assert_eq!(obs.abs_max(0), 2.0);
        assert_eq!(obs.abs_max(1), 0.2);
        assert_eq!(obs.abs_maxes(), &[2.0, 0.2]);
        assert_eq!(obs.channels(), 2);
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn abs_max_panics_on_bad_channel() {
        let mut obs = AbsMaxObserver::new(1);
        obs.observe_channel(1, &[1.0]);
    }
}
