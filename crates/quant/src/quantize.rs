//! Quantization and dequantization of floating-point matrices.

use nbsmt_tensor::error::TensorError;
use nbsmt_tensor::exec::{ExecContext, PackedRhs};
use nbsmt_tensor::tensor::Matrix;

use crate::observer::{AbsMaxObserver, MinMaxObserver};
use crate::qtensor::{QuantMatrix, QuantWeightMatrix};
use crate::scheme::{BitWidth, QuantScheme, Signedness};

/// Quantizes an activation matrix using the paper's per-layer unsigned
/// symmetric min-max scheme.
///
/// `range` is the calibrated `(min, max)` pair gathered by a
/// [`MinMaxObserver`]; when `None` the matrix's own range is used
/// (dynamic quantization).
pub fn quantize_activations(
    x: &Matrix<f32>,
    scheme: &QuantScheme,
    range: Option<(f32, f32)>,
) -> QuantMatrix {
    debug_assert_eq!(scheme.signedness, Signedness::Unsigned);
    let (lo, hi) = range.unwrap_or_else(|| {
        let mut obs = MinMaxObserver::new();
        obs.observe(x.as_slice());
        obs.averaged_range()
    });
    let scale = scheme.scale_for_range(lo, hi);
    let q_max = scheme.q_max();
    let data: Vec<u8> = x
        .as_slice()
        .iter()
        .map(|&v| {
            let q = (v / scale).round().clamp(0.0, q_max);
            q as u8
        })
        .collect();
    let values = Matrix::from_vec(data, x.rows(), x.cols())
        .expect("quantized buffer has same dimensions as input");
    // Scale is expressed relative to the 8-bit grid so that integer values of
    // reduced-precision schemes still dequantize correctly.
    QuantMatrix::new(values, scale)
}

/// Quantizes a weight matrix using the paper's per-kernel signed symmetric
/// scheme (one scale per column).
pub fn quantize_weights(w: &Matrix<f32>, scheme: &QuantScheme) -> QuantWeightMatrix {
    debug_assert_eq!(scheme.signedness, Signedness::Signed);
    let cols = w.cols();
    let mut obs = AbsMaxObserver::new(cols);
    for c in 0..cols {
        let col = w.column(c);
        obs.observe_channel(c, &col);
    }
    let q_max = scheme.q_max();
    let scales: Vec<f32> = obs
        .abs_maxes()
        .iter()
        .map(|&m| if m > 0.0 { m / q_max } else { 1.0 })
        .collect();
    let mut data = vec![0i8; w.rows() * cols];
    for r in 0..w.rows() {
        for c in 0..cols {
            let v = *w.at(r, c);
            let q = (v / scales[c]).round().clamp(-q_max, q_max);
            data[r * cols + c] = q as i8;
        }
    }
    let values =
        Matrix::from_vec(data, w.rows(), cols).expect("quantized buffer has same dimensions");
    QuantWeightMatrix::new(values, scales).expect("scales generated per column")
}

/// Dequantizes an activation matrix back to floating point.
pub fn dequantize_activations(q: &QuantMatrix) -> Matrix<f32> {
    let data: Vec<f32> = q
        .values()
        .as_slice()
        .iter()
        .map(|&v| v as f32 * q.scale())
        .collect();
    Matrix::from_vec(data, q.rows(), q.cols()).expect("same dimensions")
}

/// Dequantizes a weight matrix back to floating point.
pub fn dequantize_weights(q: &QuantWeightMatrix) -> Matrix<f32> {
    let cols = q.cols();
    let data: Vec<f32> = q
        .values()
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| v as f32 * q.scale(i % cols))
        .collect();
    Matrix::from_vec(data, q.rows(), cols).expect("same dimensions")
}

/// Computes the dequantized product of a quantized activation matrix and a
/// quantized weight matrix: each integer dot product is scaled by the
/// activation scale and the corresponding kernel scale.
///
/// This is the error-free reference output used to measure the MSE that
/// NB-SMT contributes (Fig. 8).
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the reduction dimensions
/// differ.
pub fn quantized_matmul(
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
) -> Result<Matrix<f32>, TensorError> {
    quantized_matmul_with(&ExecContext::sequential(), x, w)
}

/// [`quantized_matmul`] through the given execution context: the integer
/// GEMM runs on the configured backend/thread pool and the result is
/// identical for every configuration (integer accumulation is exact, and
/// dequantization applies the same per-element scaling).
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the reduction dimensions
/// differ.
pub fn quantized_matmul_with(
    ctx: &ExecContext,
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
) -> Result<Matrix<f32>, TensorError> {
    if x.cols() != w.rows() {
        return Err(TensorError::DimensionMismatch {
            op: "quantized_matmul",
            lhs: vec![x.rows(), x.cols()],
            rhs: vec![w.rows(), w.cols()],
        });
    }
    let (m, k, n) = (x.rows(), x.cols(), w.cols());
    let mut acc = vec![0_i64; m * n];
    ctx.gemm_u8i8(
        m,
        k,
        n,
        x.values().as_slice(),
        w.values().as_slice(),
        &mut acc,
    );
    let out: Vec<f32> = acc
        .iter()
        .enumerate()
        .map(|(i, &v)| v as f32 * x.scale() * w.scale(i % n))
        .collect();
    Matrix::from_vec(out, m, n)
}

/// [`quantized_matmul_with`] against a weight matrix that was packed once
/// with [`PackedRhs::pack`]: the integer GEMM streams the cached panels
/// instead of re-reading (or re-packing) the row-major weights on every
/// call. `w` still supplies the per-kernel dequantization scales and must be
/// the matrix the pack was built from; results are bit-identical to the
/// unpacked entry point under every backend.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the reduction dimensions
/// differ or the pack's dimensions disagree with `w`.
pub fn quantized_matmul_prepacked(
    ctx: &ExecContext,
    x: &QuantMatrix,
    w: &QuantWeightMatrix,
    pack: &PackedRhs<i8>,
) -> Result<Matrix<f32>, TensorError> {
    if x.cols() != w.rows() || pack.k() != w.rows() || pack.n() != w.cols() {
        return Err(TensorError::DimensionMismatch {
            op: "quantized_matmul_prepacked",
            lhs: vec![x.rows(), x.cols()],
            rhs: vec![pack.k(), pack.n()],
        });
    }
    let (m, n) = (x.rows(), w.cols());
    let mut acc = vec![0_i64; m * n];
    ctx.gemm_u8i8_prepacked(m, x.values().as_slice(), pack, &mut acc);
    let out: Vec<f32> = acc
        .iter()
        .enumerate()
        .map(|(i, &v)| v as f32 * x.scale() * w.scale(i % n))
        .collect();
    Matrix::from_vec(out, m, n)
}

/// Further quantizes an already-quantized activation matrix to the requested
/// bit width *without recalibration*, exactly as the SySMT PEs do on the fly:
/// 8-bit values are rounded to the nearest multiple of 16 and truncated to
/// their 4-bit MSBs (the dequantization scale is adjusted by 16).
///
/// Used for the whole-model robustness sweep of Fig. 7.
pub fn reduce_activation_matrix(q: &QuantMatrix, bits: BitWidth) -> QuantMatrix {
    match bits {
        BitWidth::Eight => q.clone(),
        BitWidth::Four => {
            let data: Vec<u8> = q
                .values()
                .as_slice()
                .iter()
                .map(|&v| crate::reduce::round_to_nibble_unsigned(v))
                .collect();
            let values = Matrix::from_vec(data, q.rows(), q.cols()).expect("same dims");
            // Values are now nibbles representing v/16, so the scale grows 16x.
            QuantMatrix::new(values, q.scale() * 16.0)
        }
    }
}

/// Further quantizes an already-quantized weight matrix to the requested bit
/// width without recalibration (signed variant of
/// [`reduce_activation_matrix`]).
pub fn reduce_weight_matrix(q: &QuantWeightMatrix, bits: BitWidth) -> QuantWeightMatrix {
    match bits {
        BitWidth::Eight => q.clone(),
        BitWidth::Four => {
            let data: Vec<i8> = q
                .values()
                .as_slice()
                .iter()
                .map(|&v| crate::reduce::round_to_nibble_signed(v))
                .collect();
            let values = Matrix::from_vec(data, q.rows(), q.cols()).expect("same dims");
            let scales: Vec<f32> = q.scales().iter().map(|&s| s * 16.0).collect();
            QuantWeightMatrix::new(values, scales).expect("scales per column preserved")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::QuantScheme;

    fn mat(data: &[f32], rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_vec(data.to_vec(), rows, cols).unwrap()
    }

    #[test]
    fn activation_quantization_round_trip() {
        let x = mat(&[0.0, 0.5, 1.0, 2.55], 2, 2);
        let q = quantize_activations(&x, &QuantScheme::activation_a8(), None);
        assert_eq!(q.values().as_slice(), &[0, 50, 100, 255]);
        let d = dequantize_activations(&q);
        for (a, b) in d.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn activation_quantization_with_calibrated_range() {
        let x = mat(&[0.0, 1.0, 3.0, 10.0], 2, 2);
        // Calibrated range smaller than data: values clamp to 255.
        let q = quantize_activations(&x, &QuantScheme::activation_a8(), Some((0.0, 5.0)));
        assert_eq!(*q.values().at(1, 1), 255);
    }

    #[test]
    fn weight_quantization_is_per_kernel() {
        // Column 0 has range 0.127, column 1 has range 1.27.
        let w = mat(&[0.127, 1.27, -0.0635, -0.635], 2, 2);
        let q = quantize_weights(&w, &QuantScheme::weight_w8());
        assert_eq!(q.values().as_slice(), &[127, 127, -64, -64]);
        assert!((q.scale(0) - 0.001).abs() < 1e-6);
        assert!((q.scale(1) - 0.01).abs() < 1e-6);
        let d = dequantize_weights(&q);
        for (a, b) in d.as_slice().iter().zip(w.as_slice()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_matmul_approximates_float_matmul() {
        let x = mat(&[0.0, 1.0, 2.0, 0.5, 1.5, 2.5], 2, 3);
        let w = mat(&[0.1, -0.2, 0.3, 0.4, -0.5, 0.6], 3, 2);
        let qx = quantize_activations(&x, &QuantScheme::activation_a8(), None);
        let qw = quantize_weights(&w, &QuantScheme::weight_w8());
        let qy = quantized_matmul(&qx, &qw).unwrap();
        // Float reference.
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for p in 0..3 {
                    acc += x.at(i, p) * w.at(p, j);
                }
                assert!((qy.at(i, j) - acc).abs() < 0.05, "{} vs {acc}", qy.at(i, j));
            }
        }
    }

    #[test]
    fn quantized_matmul_rejects_mismatch() {
        let qx = QuantMatrix::zeros(2, 3, 1.0);
        let qw = QuantWeightMatrix::with_uniform_scale(Matrix::zeros(4, 2), 1.0);
        assert!(quantized_matmul(&qx, &qw).is_err());
    }

    #[test]
    fn quantized_matmul_prepacked_is_bit_identical() {
        let x = mat(&[0.0, 1.0, 2.0, 0.5, 1.5, 2.5], 2, 3);
        let w = mat(&[0.1, -0.2, 0.3, 0.4, -0.5, 0.6], 3, 2);
        let qx = quantize_activations(&x, &QuantScheme::activation_a8(), None);
        let qw = quantize_weights(&w, &QuantScheme::weight_w8());
        let pack = PackedRhs::pack(qw.rows(), qw.cols(), qw.values().as_slice());
        let ctx = ExecContext::sequential();
        let unpacked = quantized_matmul_with(&ctx, &qx, &qw).unwrap();
        let packed = quantized_matmul_prepacked(&ctx, &qx, &qw, &pack).unwrap();
        assert_eq!(unpacked, packed);
        // A pack whose dimensions disagree with the weights is rejected.
        let stale = PackedRhs::pack(2, 2, &[0i8; 4]);
        assert!(quantized_matmul_prepacked(&ctx, &qx, &qw, &stale).is_err());
    }

    #[test]
    fn reduce_activation_matrix_to_4bit() {
        let x = Matrix::from_vec(vec![0u8, 7, 8, 200, 255, 16], 2, 3).unwrap();
        let q = QuantMatrix::new(x, 0.5);
        let r = reduce_activation_matrix(&q, BitWidth::Four);
        assert_eq!(r.scale(), 8.0);
        // 0 -> 0, 7 -> round(7/16)=0, 8 -> 1, 200 -> round(200/16)=13, 255 -> 15 (clamped), 16 -> 1
        assert_eq!(r.values().as_slice(), &[0, 0, 1, 13, 15, 1]);
        // 8-bit request is a no-op.
        let same = reduce_activation_matrix(&q, BitWidth::Eight);
        assert_eq!(&same, &q);
    }

    #[test]
    fn reduce_weight_matrix_to_4bit() {
        let w = Matrix::from_vec(vec![0i8, 7, -8, 100, -128, 127], 3, 2).unwrap();
        let q = QuantWeightMatrix::new(w, vec![0.1, 0.2]).unwrap();
        let r = reduce_weight_matrix(&q, BitWidth::Four);
        assert_eq!(r.scales(), &[0.1 * 16.0, 0.2 * 16.0]);
        // 0->0, 7->0 (round(7/16)=0), -8->-1 (round(-8/16)=-0.5 rounds away from zero), 100->6, -128->-8, 127->7 (clamped)
        assert_eq!(r.values().as_slice(), &[0, 0, -1, 6, -8, 7]);
    }
}
